"""repro — reproduction of "A Geometric Routing Protocol in Disruption
Tolerant Network" (Du, Kranakis, Nayak; ICDCS Workshops 2009).

The library layers as the paper does:

- geometry (:mod:`repro.geometry`): Delaunay machinery built from scratch;
- proximity graphs (:mod:`repro.graphs`): UDG, Gabriel, RNG, the k-local
  Delaunay triangulation graph (LDTG), DSTD trees, connectivity bounds;
- mobility (:mod:`repro.mobility`): random waypoint et al.;
- simulation (:mod:`repro.sim`): event-driven radio/MAC/world substrate;
- the GLR protocol itself (:mod:`repro.core`) and baselines
  (:mod:`repro.baselines`);
- the evaluation harness (:mod:`repro.experiments`, :mod:`repro.analysis`).

Quickstart::

    from repro import Scenario, run_single

    scenario = Scenario(radius=100.0, message_count=200, sim_time=600.0)
    glr = run_single(scenario, "glr")
    epidemic = run_single(scenario, "epidemic")
    print(glr.delivery_ratio, glr.average_latency)
    print(epidemic.delivery_ratio, epidemic.average_latency)
"""

from repro.analysis import mean_confidence_interval, summarize_metrics
from repro.baselines import (
    DirectDeliveryProtocol,
    EpidemicConfig,
    EpidemicProtocol,
    FirstContactProtocol,
    SprayAndWaitConfig,
    SprayAndWaitProtocol,
)
from repro.core import GLRConfig, GLRProtocol, LocationMode, decide_copies
from repro.experiments import (
    PAPER_TABLE1,
    Scenario,
    build_world,
    run_replicates,
    run_single,
)
from repro.geometry import Point, delaunay_triangulation
from repro.graphs import (
    SpatialGraph,
    local_delaunay_graph,
    unit_disk_graph,
)
from repro.mobility import (
    GaussMarkovMobility,
    ManhattanGridMobility,
    MobilityConfig,
    RandomWaypointMobility,
    ReferencePointGroupMobility,
    Region,
    StaticMobility,
    build_mobility,
)
from repro.sim import (
    Message,
    RadioConfig,
    SimulationMetrics,
    Simulator,
    World,
    WorldConfig,
)

__version__ = "1.0.0"

__all__ = [
    "DirectDeliveryProtocol",
    "EpidemicConfig",
    "EpidemicProtocol",
    "FirstContactProtocol",
    "GLRConfig",
    "GLRProtocol",
    "GaussMarkovMobility",
    "LocationMode",
    "ManhattanGridMobility",
    "Message",
    "MobilityConfig",
    "PAPER_TABLE1",
    "Point",
    "RadioConfig",
    "RandomWaypointMobility",
    "ReferencePointGroupMobility",
    "Region",
    "Scenario",
    "SimulationMetrics",
    "Simulator",
    "SpatialGraph",
    "SprayAndWaitConfig",
    "SprayAndWaitProtocol",
    "StaticMobility",
    "World",
    "WorldConfig",
    "build_mobility",
    "build_world",
    "decide_copies",
    "delaunay_triangulation",
    "local_delaunay_graph",
    "mean_confidence_interval",
    "run_replicates",
    "run_single",
    "summarize_metrics",
    "unit_disk_graph",
]
