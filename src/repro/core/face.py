"""Face-routing recovery on the planar LDTG (paper Sections 1, 2.3).

When greedy DSTD forwarding reaches a local minimum — no routing-graph
neighbour is closer to the (believed) destination — and the node is not
isolated, GLR applies face routing "when nodes enter local minimum",
leaning on the LDTG being a planar spanner.

The implementation follows the GFG/GPSR recovery pattern:

- **enter**: remember the distance to the destination at the local
  minimum and take the first edge counter-clockwise from the straight
  line toward the destination (right-hand rule start);
- **step**: continue around the current face with the right-hand rule
  (:func:`repro.graphs.faces.next_edge_on_face`);
- **exit**: the walk ends as soon as the copy reaches a node strictly
  closer to the destination than where it entered face mode, resuming
  greedy forwarding — or gives up after a step budget (mobility will
  have changed the graph by the next check interval anyway).

The face walk happens hop-by-hop across *different nodes*; its state
(previous node, entry distance, step count) travels inside the message
copy header, mirroring how the paper keeps tree flags in the packet.
"""

from __future__ import annotations

import math

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId


def _angle(origin: Point, target: Point) -> float:
    return math.atan2(target.y - origin.y, target.x - origin.x)


def _sweep(base: float, angle: float, clockwise: bool) -> float:
    """Angular distance from ``base`` to ``angle`` in the walk direction.

    Counter-clockwise is the right-hand rule (the paper's single-walk
    recovery); clockwise is its mirror, used by the second walk of a
    2FACE traversal.  A zero sweep means the full turn: the walk must
    actually leave along an edge, not stand on the reference ray.
    """
    if clockwise:
        delta = (base - angle) % (2.0 * math.pi)
    else:
        delta = (angle - base) % (2.0 * math.pi)
    if delta == 0.0:
        delta = 2.0 * math.pi
    return delta


def first_face_hop(
    node_pos: Point,
    dest_pos: Point,
    neighbor_positions: dict[NodeId, Point],
    clockwise: bool = False,
) -> NodeId | None:
    """First edge of a face walk at a local minimum.

    Right-hand rule entry: the first neighbour counter-clockwise from
    the ray ``node -> destination`` (or clockwise — the mirror-image
    left-hand walk — with ``clockwise=True``; 2FACE launches one of
    each).  Returns None when the node has no routing-graph neighbours
    at all (isolated: store-and-forward is the only option).
    """
    if not neighbor_positions:
        return None
    base = _angle(node_pos, dest_pos)
    best: NodeId | None = None
    best_delta = math.inf
    for nbr, pos in neighbor_positions.items():
        delta = _sweep(base, _angle(node_pos, pos), clockwise)
        if delta < best_delta:
            best_delta = delta
            best = nbr
    return best


def next_face_hop(
    node_pos: Point,
    prev_pos: Point,
    neighbor_positions: dict[NodeId, Point],
    prev_id: NodeId,
    clockwise: bool = False,
) -> NodeId | None:
    """Continue a face walk: first neighbour CCW after the reverse edge
    (CW with ``clockwise=True``, continuing a 2FACE mirror walk).

    Args:
        node_pos: current node's position.
        prev_pos: position of the node the copy arrived from.
        neighbor_positions: current node's routing-graph neighbours.
        prev_id: id of the previous node (excluded unless it is the only
            neighbour, in which case the walk doubles back, as the
            right-hand rule requires at a dead end).
        clockwise: walk direction (both directions double back at dead
            ends the same way).
    """
    if not neighbor_positions:
        return None
    base = _angle(node_pos, prev_pos)
    best: NodeId | None = None
    best_delta = math.inf
    for nbr, pos in neighbor_positions.items():
        if nbr == prev_id:
            continue
        delta = _sweep(base, _angle(node_pos, pos), clockwise)
        if delta < best_delta:
            best_delta = delta
            best = nbr
    if best is None and prev_id in neighbor_positions:
        return prev_id
    return best
