"""GLR — Geometric Routing with Controlled Flooding (paper Algorithm 2).

Per-node behaviour, as the paper specifies it:

1. A **source** runs Algorithm 1 (:mod:`repro.core.decision`) to choose
   the copy count, stamps each copy with a tree flag (MaxDSTD always;
   MinDSTD/MidDSTD for multi-copy) and the believed destination
   location, and places the copies in its Store.
2. Every ``check_interval`` seconds (paper default 0.9 s) a node with
   stored messages runs a **routing round**: it collects its beacon-
   fresh neighbourhood, builds its local Delaunay neighbours (LDTG),
   and for every stored copy either
   - hands it directly to the destination when in range,
   - forwards it greedily along the copy's DSTD tree,
   - continues/starts a **face-routing** walk at a local minimum, or
   - keeps it stored ("store state") until topology changes.
3. **Custody transfer** keeps each forwarded copy in the Cache until
   the next hop ACKs; timeouts reschedule the copy from the Store.
4. **Location diffusion** runs continuously: beacons teach neighbours
   each other's timestamped positions, data packets carry the believed
   destination location, and whoever (packet or relay table) is fresher
   updates the other.  A copy stalled against a stale location is
   re-aimed at a random position (paper Section 3.3's fix).

Omissions relative to the paper's prose, both harmless to fidelity:
the "neighbour proactively notifies the holder of fresher destination
locations" direction of diffusion is subsumed by the relay refreshing
the copy when it next forwards it; and full location-table exchange on
contact is skipped — the paper itself disables it ("it is not used in
the experimentation of GLR").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.custody import CustodyManager
from repro.core.decision import decide_copies
from repro.core.face import first_face_hop, next_face_hop
from repro.core.location import (
    LocationMode,
    initial_location_guess,
    is_belief_stale,
    perturbed_location,
)
from repro.geometry.primitives import Point, distance
from repro.graphs.trees import Branch, branch_assignment, dstd_next_hop
from repro.graphs.udg import NodeId
from repro.mobility.base import Region
from repro.sim.messages import (
    Frame,
    FrameKind,
    Message,
    MessageCopy,
    ack_frame,
    data_frame,
)
from repro.sim.neighbors import LocationRecord
from repro.sim.storage import DualStore
from repro.sim.world import Protocol


@dataclass(frozen=True)
class GLRConfig:
    """Tunable parameters of the GLR protocol.

    Attributes:
        check_interval: route re-check period for stored messages
            (paper Section 3.2; default 0.9 s).
        connectivity_threshold: Algorithm 1 confidence above which a
            single copy is used.
        sparse_copies: copy count in sparse networks (paper: 3).
        copies_override: force an exact copy count (experiment control;
            None = let Algorithm 1 decide).
        custody: enable custody transfer (Table 3 compares on/off).
        custody_timeout: seconds a sent copy waits in the Cache for an
            ACK before being rescheduled.
        storage_limit: per-node capacity in messages (Store + Cache);
            None = unlimited (Figure 7 sweeps this).
        location_mode: destination-knowledge situation (Table 2).
        face_routing: enable face recovery at local minima.
        max_face_steps: face-walk step budget before giving up and
            falling back to store-and-forward.
        face_cooldown: seconds a copy must wait after an unsuccessful
            face episode before starting another.  In a disconnected
            cluster a face walk just circumnavigates the component; the
            cooldown stops that from repeating every check interval.
        two_face: launch bi-directional face traversals (2FACE, after
            arXiv cs/0611117): on entering face mode the copy walks the
            face counter-clockwise as usual, and a mirror copy is sent
            the other way around simultaneously.  Whichever direction
            reaches a node closer to the destination first resumes
            greedy there; when the walks meet, the duplicate-merge
            machinery collapses them back to one copy.  Halves the
            worst-case face detour at the cost of one extra in-flight
            copy per recovery.
        progress_margin_fraction: greedy hysteresis as a fraction of the
            radio range — a neighbour must be at least this much closer
            to the destination to receive the message.  Suppresses
            back-and-forth hand-offs between two drifting nodes whose
            relative order to the destination flips every beacon.
        range_guard_fraction: neighbours farther than this fraction of
            the radio range are not used as next hops.  Beacon positions
            are up to one interval stale; a neighbour seen at the range
            edge has often already left it, and every such failed
            hand-off costs a custody timeout.  (The paper works around
            the same staleness by re-acquiring locations during data
            exchange.)
        stale_patience_rounds: routing rounds without progress before
            the stale-location perturbation is considered.
        stale_age: belief age (seconds) beyond which a destination
            location counts as stale.
        use_ldt: route on LDTG neighbours (True, the paper's design) or
            directly on all radio neighbours (False; ablation).
    """

    check_interval: float = 0.9
    connectivity_threshold: float = 0.9
    sparse_copies: int = 3
    copies_override: int | None = None
    custody: bool = True
    custody_timeout: float = 5.0
    storage_limit: int | None = None
    location_mode: LocationMode = LocationMode.SOURCE
    face_routing: bool = True
    max_face_steps: int = 8
    face_cooldown: float = 10.0
    two_face: bool = False
    progress_margin_fraction: float = 0.10
    range_guard_fraction: float = 1.0
    stale_patience_rounds: int = 10
    stale_age: float = 60.0
    use_ldt: bool = True
    failed_hop_exclusion: float = 25.0

    def __post_init__(self) -> None:
        if self.check_interval <= 0:
            raise ValueError("check interval must be positive")
        if not 0.0 < self.connectivity_threshold <= 1.0:
            raise ValueError("connectivity threshold must be in (0, 1]")
        if self.sparse_copies < 1:
            raise ValueError("sparse_copies must be >= 1")
        if self.copies_override is not None and self.copies_override < 1:
            raise ValueError("copies_override must be >= 1")
        if self.custody_timeout <= 0:
            raise ValueError("custody timeout must be positive")
        if self.storage_limit is not None and self.storage_limit < 1:
            raise ValueError("storage limit must be >= 1")
        if self.max_face_steps < 1:
            raise ValueError("max_face_steps must be >= 1")
        if self.face_cooldown < 0:
            raise ValueError("face_cooldown must be non-negative")
        if not 0.0 <= self.progress_margin_fraction < 1.0:
            raise ValueError("progress_margin_fraction must be in [0, 1)")
        if not 0.0 < self.range_guard_fraction <= 1.0:
            raise ValueError("range_guard_fraction must be in (0, 1]")
        if self.failed_hop_exclusion < 0:
            raise ValueError("failed_hop_exclusion must be non-negative")
        if self.stale_patience_rounds < 1:
            raise ValueError("stale_patience_rounds must be >= 1")
        if self.stale_age <= 0:
            raise ValueError("stale_age must be positive")


class _CopyState:
    """Mutable per-copy routing state held alongside the stored copy."""

    __slots__ = ("copy", "fail_rounds", "fail_signature", "last_next_hop",
                 "hop_failures")

    def __init__(self, copy: MessageCopy):
        self.copy = copy
        self.fail_rounds = 0
        # Neighbourhood signature at the last failed attempt.  While it
        # is unchanged, re-attempting is pointless (paper 3.2: resend
        # when "relative location with respect to the neighboring nodes
        # changes and new path emerges").
        self.fail_signature: object = None
        # The neighbour the copy was last handed to (custody pending).
        self.last_next_hop: NodeId | None = None
        # Neighbours whose hand-off recently timed out, with the timeout
        # time.  Excluded from candidate selection for a while — the
        # paper's rescheduling "may or may not choose the same next hop
        # this time", and retrying a hop that just failed (peer moved
        # away, or peer already relayed this copy) only burns airtime.
        self.hop_failures: dict[NodeId, float] = {}


class GLRProtocol(Protocol):
    """One node's GLR instance (see module docstring)."""

    name = "glr"

    def __init__(self, config: GLRConfig | None = None):
        super().__init__()
        self.config = config if config is not None else GLRConfig()
        self.dual = DualStore(capacity=self.config.storage_limit)
        self.custody: CustodyManager | None = None
        self._round_task = None
        self._region: Region | None = None
        # Diagnostics exposed for tests and the ablation benches.
        self.rounds_run = 0
        self.rounds_skipped = 0
        self.greedy_forwards = 0
        self.direct_deliveries = 0
        self.face_entries = 0
        self.face_steps_taken = 0
        self.two_face_launches = 0
        self.store_stalls = 0
        self.location_resets = 0
        self.duplicates_ignored = 0
        self._last_topology_key: object = None
        # Copies accepted recently, by copy id -> acceptance time.  A
        # custody retransmission can arrive after the copy has already
        # been forwarded onward; without this memory the duplicate would
        # be re-accepted and the copy would breed (two live instances of
        # the same copy id ping-ponging traffic).  Entries expire after
        # ``_SEEN_TTL`` so a genuine long-cycle revisit is still allowed.
        self._seen: dict[tuple, float] = {}

    #: Seconds a processed copy id is remembered for duplicate rejection.
    _SEEN_TTL = 60.0
    #: Prune the seen-cache when it grows beyond this many entries.
    _SEEN_PRUNE_SIZE = 2048

    # ------------------------------------------------------------------
    # Protocol lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        assert self.api is not None, "protocol must be attached before start"
        self.custody = CustodyManager(
            schedule=self.api.schedule,
            store=self.dual,
            timeout=self.config.custody_timeout,
            on_returned=self._on_custody_returned,
        )
        jitter = self.config.check_interval * 0.05
        self._round_task = self.api.periodic(
            self.config.check_interval, self._routing_round, jitter=jitter
        )

    def _require_region(self) -> Region:
        # The region rectangle is needed for random location guesses; it
        # is reconstructed from the world's area assuming the paper's
        # known deployment rectangle is available to every node.
        if self._region is None:
            mobility = self.api._world.mobility  # noqa: SLF001 - world wiring
            self._region = mobility.region
        return self._region

    # ------------------------------------------------------------------
    # Message injection (paper: source side of Algorithm 2)
    # ------------------------------------------------------------------

    def on_message_created(self, message: Message) -> None:
        assert self.api is not None
        now = self.api.now()
        copies = self.config.copies_override
        if copies is None:
            decision = decide_copies(
                n_nodes=self.api.n_nodes,
                radius=self.api.config.radio.range_m,
                area=self.api.region_area,
                threshold=self.config.connectivity_threshold,
                sparse_copies=self.config.sparse_copies,
            )
            copies = decision.copies

        location, timestamp = self._initial_location(message.dest, now)
        for branch, rank in branch_assignment(copies):
            copy = MessageCopy(
                message=message,
                branch=branch.value,
                mid_rank=rank,
                dest_location=location,
                dest_location_time=timestamp,
            )
            self.dual.add_to_store(copy.copy_id, _CopyState(copy))

    def _initial_location(
        self, dest: NodeId, now: float
    ) -> tuple[Point, float]:
        assert self.api is not None
        mode = self.config.location_mode
        if mode is LocationMode.NONE:
            guess = initial_location_guess(self._require_region(), self.api.rng)
            return guess, float("-inf")
        # ORACLE and SOURCE both stamp the true location at creation
        # ("Source knows the true destination location" assumption);
        # ORACLE additionally refreshes at every hop (see _refresh).
        return self.api.oracle_position_of(dest), now

    # ------------------------------------------------------------------
    # Routing round (paper Algorithm 2 main loop)
    # ------------------------------------------------------------------

    def _routing_round(self) -> None:
        assert self.api is not None
        if not len(self.dual.store):
            return
        neighbors = self.api.neighbors()
        if not neighbors:
            # Isolated node: nothing can move, stay in store state.
            self.rounds_skipped += 1
            return
        # Paper 3.2: a node in store state re-checks only when something
        # changed.  "Changed" here = new beacon epoch (positions moved)
        # — store content changes re-enter via fail_rounds reset anyway.
        topology_key = (self.api.beacon_epoch(), len(self.dual.store))
        if topology_key == self._last_topology_key:
            self.rounds_skipped += 1
            return
        self._last_topology_key = topology_key
        self.rounds_run += 1
        for copy_id in list(self.dual.store.keys()):
            state = self.dual.store.get(copy_id)
            if state is None:
                continue
            self._route_copy(copy_id, state, neighbors)

    def _route_copy(
        self,
        copy_id: tuple,
        state: _CopyState,
        neighbors: set[NodeId],
    ) -> None:
        assert self.api is not None
        copy = state.copy
        message = copy.message
        now = self.api.now()

        # 1. Destination in radio range: hand over directly.
        if message.dest in neighbors:
            self.direct_deliveries += 1
            self._forward(copy_id, state, message.dest)
            return

        # 2. Refresh the believed destination location.
        copy = self._refresh_location(copy, message.dest, now)
        state.copy = copy
        dest_pos = copy.dest_location
        if dest_pos is None:
            state.fail_rounds += 1
            return

        # 2b. Skip when nothing changed since the last failed attempt
        # (paper 3.2: resend only when the relative neighbourhood
        # changes and a new path emerges).  The signature covers the
        # neighbour membership and the believed destination cell; face
        # walks are never gated (their state lives in the copy and a
        # walk always arrives with a fresh _CopyState).
        signature = (
            frozenset(neighbors),
            round(dest_pos.x / 25.0),
            round(dest_pos.y / 25.0),
        )
        if not copy.in_face_mode and signature == state.fail_signature:
            state.fail_rounds += 1
            self._maybe_reset_stale_location(state, now)
            return

        # 3. Routing-graph neighbours (LDTG by default), guarded against
        # beacon staleness at the range edge, minus recently failed hops.
        if self.config.use_ldt:
            graph_neighbors = self.api.ldt_neighbors() & neighbors
        else:
            graph_neighbors = neighbors
        if state.hop_failures:
            cutoff = now - self.config.failed_hop_exclusion
            state.hop_failures = {
                n: t for n, t in state.hop_failures.items() if t >= cutoff
            }
            graph_neighbors = graph_neighbors - state.hop_failures.keys()
        my_pos = self.api.position()
        guard = self.config.range_guard_fraction * self.api.config.radio.range_m
        positions = {
            n: pos
            for n in graph_neighbors
            if distance(my_pos, pos := self.api.beacon_position(n)) <= guard
        }

        # 4. Face-routing mode.
        if copy.in_face_mode:
            if (
                copy.face_start_distance is not None
                and distance(my_pos, dest_pos) < copy.face_start_distance
            ):
                copy = copy.leaving_face_mode()
                state.copy = copy
            else:
                self._face_step(copy_id, state, positions, my_pos)
                return

        # 5. Greedy DSTD forwarding (with drift hysteresis).
        margin = self.config.progress_margin_fraction * (
            self.api.config.radio.range_m
        )
        next_hop = dstd_next_hop(
            my_pos,
            dest_pos,
            positions,
            Branch(copy.branch),
            copy.mid_rank,
            min_progress=margin,
        )
        if next_hop is not None:
            state.fail_rounds = 0
            self.greedy_forwards += 1
            self._forward(copy_id, state, next_hop)
            return

        # 6. Local minimum: enter face routing if possible (and not in
        # cooldown after a recent fruitless face episode).
        if (
            self.config.face_routing
            and positions
            and now >= copy.face_block_until
        ):
            first = first_face_hop(my_pos, dest_pos, positions)
            if first is not None:
                self.face_entries += 1
                start_distance = distance(my_pos, dest_pos)
                if self.config.two_face:
                    self._launch_mirror_walk(
                        copy, my_pos, dest_pos, positions, first,
                        start_distance,
                    )
                state.copy = copy.entering_face_mode(
                    prev=self.api.node_id,
                    start_distance=start_distance,
                )
                self._forward(copy_id, state, first)
                return

        # 7. Store state: wait for topology change (paper Section 3.2).
        self.store_stalls += 1
        state.fail_rounds += 1
        state.fail_signature = signature
        self._maybe_reset_stale_location(state, now)

    def _maybe_reset_stale_location(self, state: _CopyState, now: float) -> None:
        """Paper 3.3: re-aim a copy stalled against a stale destination
        location at a new random place, so the node closest to the wrong
        location can push it out again."""
        assert self.api is not None
        copy = state.copy
        if state.fail_rounds < self.config.stale_patience_rounds:
            return
        if not is_belief_stale(
            copy.dest_location_time, now, self.config.stale_age
        ):
            return
        self.location_resets += 1
        state.copy = replace(
            copy,
            dest_location=perturbed_location(
                self._require_region(), self.api.rng
            ),
        )
        state.fail_rounds = 0
        state.fail_signature = None

    def _launch_mirror_walk(
        self,
        copy: MessageCopy,
        my_pos: Point,
        dest_pos: Point,
        positions: dict[NodeId, Point],
        ccw_first: NodeId,
        start_distance: float,
    ) -> None:
        """2FACE: fire the clockwise twin of a face walk being entered.

        The twin carries the same copy id, so it is not a new copy in
        the multi-copy sense: wherever the two walks meet, the
        duplicate-merge path (ack + ignore) collapses them back to one
        instance, and delivery metrics dedup on the message uid.  It is
        sent without taking custody — the counter-clockwise primary
        already holds it; losing the twin merely degrades 2FACE to the
        ordinary single walk.
        """
        assert self.api is not None
        cw_first = first_face_hop(my_pos, dest_pos, positions, clockwise=True)
        if cw_first is None or cw_first == ccw_first:
            # One viable first edge only: both directions would traverse
            # the same node next, so a twin adds traffic, not coverage.
            return
        twin = copy.entering_face_mode(
            prev=self.api.node_id,
            start_distance=start_distance,
            direction="cw",
        )
        if self.api.send(data_frame(self.api.node_id, cw_first, twin)):
            self.two_face_launches += 1

    def _face_step(
        self,
        copy_id: tuple,
        state: _CopyState,
        positions: dict[NodeId, Point],
        my_pos: Point,
    ) -> None:
        assert self.api is not None
        copy = state.copy
        now = self.api.now()
        blocked_until = now + self.config.face_cooldown
        if copy.face_steps >= self.config.max_face_steps or not positions:
            state.copy = copy.leaving_face_mode(block_until=blocked_until)
            state.fail_rounds += 1
            return
        prev = copy.face_prev
        clockwise = copy.face_dir == "cw"
        next_hop: NodeId | None
        if prev is None or prev == self.api.node_id:
            dest_pos = copy.dest_location
            next_hop = (
                first_face_hop(
                    my_pos, dest_pos, positions, clockwise=clockwise
                )
                if dest_pos is not None
                else None
            )
        else:
            prev_pos = self.api.beacon_position(prev)
            next_hop = next_face_hop(
                my_pos, prev_pos, positions, prev, clockwise=clockwise
            )
        if next_hop is None:
            state.copy = copy.leaving_face_mode(block_until=blocked_until)
            state.fail_rounds += 1
            return
        self.face_steps_taken += 1
        state.copy = copy.face_stepped(prev=self.api.node_id)
        self._forward(copy_id, state, next_hop)

    def _refresh_location(
        self, copy: MessageCopy, dest: NodeId, now: float
    ) -> MessageCopy:
        assert self.api is not None
        if self.config.location_mode is LocationMode.ORACLE:
            return copy.with_location(self.api.oracle_position_of(dest), now)
        record = self.api.location_of(dest)
        if record is not None and record.timestamp > copy.dest_location_time:
            return copy.with_location(record.position, record.timestamp)
        return copy

    # ------------------------------------------------------------------
    # Transmission and custody
    # ------------------------------------------------------------------

    def _forward(
        self, copy_id: tuple, state: _CopyState, next_hop: NodeId
    ) -> None:
        assert self.api is not None
        frame = data_frame(self.api.node_id, next_hop, state.copy)
        if not self.api.send(frame):
            # MAC queue full: keep the copy stored; next round retries.
            return
        state.last_next_hop = next_hop
        if self.config.custody and self.custody is not None:
            self.custody.on_sent(copy_id)
        else:
            self.dual.drop(copy_id)

    def _on_custody_returned(self, copy_id: object) -> None:
        assert self.api is not None
        state = self.dual.store.get(copy_id)
        if isinstance(state, _CopyState):
            # Returned copies retry immediately on the next round; a
            # failed hand-off usually means the chosen neighbour moved
            # (or silently refused a duplicate) — avoid it for a while.
            if state.last_next_hop is not None:
                state.hop_failures[state.last_next_hop] = self.api.now()
                state.last_next_hop = None
            state.fail_rounds = 0
            state.fail_signature = None
            state.copy = state.copy.leaving_face_mode()

    # ------------------------------------------------------------------
    # Frame reception
    # ------------------------------------------------------------------

    def on_frame(self, frame: Frame) -> None:
        assert self.api is not None
        if frame.kind is FrameKind.ACK:
            if self.custody is not None:
                self.custody.on_ack(frame.payload)
            return
        if frame.kind is not FrameKind.DATA:
            return
        copy: MessageCopy = frame.payload
        copy = copy.hopped()
        message = copy.message
        now = self.api.now()

        def send_custody_ack() -> None:
            # Paper 2.3.2: "Whenever a node successfully receives a
            # message, it notifies the sender" — and only then may the
            # sender delete its cached instance.
            if self.config.custody:
                self.api.send(
                    ack_frame(self.api.node_id, frame.sender, copy.copy_id)
                )

        # Location diffusion: the packet teaches the relay.
        if copy.dest_location is not None and copy.dest_location_time > float(
            "-inf"
        ):
            self.api.learn_location(
                message.dest,
                LocationRecord(copy.dest_location, copy.dest_location_time),
            )

        if message.dest == self.api.node_id:
            send_custody_ack()
            self.api.metrics.on_delivered(message, now, copy.hops)
            return

        if copy.copy_id in self.dual.store or copy.copy_id in self.dual.cache:
            # Already holding this copy: acknowledge so the sender's
            # instance is released and exactly one survives (merge).
            send_custody_ack()
            self.duplicates_ignored += 1
            return

        if self.config.custody and self._seen_recently(copy.copy_id, now):
            # Relayed this copy onward a moment ago.  Adopting it again
            # would breed a second live instance; acknowledging without
            # adopting would annihilate the sender's only instance.  So
            # stay silent: the sender keeps custody and reroutes after
            # its timeout.
            self.duplicates_ignored += 1
            return

        send_custody_ack()
        self._seen[copy.copy_id] = now
        self._prune_seen(now)
        self.dual.add_to_store(copy.copy_id, _CopyState(copy))

    def _seen_recently(self, copy_id: tuple, now: float) -> bool:
        accepted_at = self._seen.get(copy_id)
        return accepted_at is not None and now - accepted_at < self._SEEN_TTL

    def _prune_seen(self, now: float) -> None:
        if len(self._seen) <= self._SEEN_PRUNE_SIZE:
            return
        cutoff = now - self._SEEN_TTL
        self._seen = {
            cid: t for cid, t in self._seen.items() if t >= cutoff
        }

    # ------------------------------------------------------------------
    # Storage metrics
    # ------------------------------------------------------------------

    def storage_occupancy(self) -> int:
        return self.dual.occupancy()

    def storage_peak(self) -> int:
        return self.dual.peak_occupancy

    def sample_storage(self, now: float) -> None:
        self.dual.sample(now)

    def storage_time_average(self, horizon: float) -> float:
        return self.dual.time_average_occupancy(horizon)
