"""Destination-location knowledge and the stale-location heuristic.

Section 3.3 of the paper evaluates four knowledge situations, which this
module encodes as :class:`LocationMode`:

- ``ORACLE`` — "all nodes in the path ... know exactly the destination
  location": every routing step queries the true current position.
- ``SOURCE`` — "only the source node knows the destination node location
  and includes the x and y coordinates ... in the messages": the copy is
  stamped once at creation with the true location and thereafter only
  refreshed by location diffusion.
- ``NONE`` — "no node knows the destination location information well in
  advance": the copy starts with a *random* guess ("random location is
  given at the beginning") that diffusion must correct en route.

The stale-location problem (Section 3.3, "The impact of location
inaccuracy and solution"): a copy can arrive at the node closest to an
outdated destination position and stall there, because no neighbour is
closer to a place the destination has left.  The paper's fix — "a new
value is assigned to the destination location so that the node which is
closest to the wrong location could deliver it out" — is implemented by
:func:`perturbed_location`, which re-aims the copy at a fresh uniform
random location; the location timestamp is left untouched so genuinely
fresher diffusion data still wins.
"""

from __future__ import annotations

import enum
import random

from repro.geometry.primitives import Point
from repro.mobility.base import Region


class LocationMode(enum.Enum):
    """How much destination-location knowledge nodes start with."""

    ORACLE = "oracle"
    SOURCE = "source"
    NONE = "none"


def initial_location_guess(region: Region, rng: random.Random) -> Point:
    """Uniform random guess used by ``LocationMode.NONE`` sources."""
    return Point(
        rng.uniform(0.0, region.width), rng.uniform(0.0, region.height)
    )


def perturbed_location(region: Region, rng: random.Random) -> Point:
    """Fresh random destination location for a stalled copy.

    The paper assigns "a new value" without constraining it; a uniform
    redraw over the region is the least-assumption reading and guarantees
    the copy eventually escapes any single wrong basin.
    """
    return Point(
        rng.uniform(0.0, region.width), rng.uniform(0.0, region.height)
    )


def is_belief_stale(
    belief_time: float, now: float, max_age: float
) -> bool:
    """True when a location belief is older than ``max_age`` seconds.

    A belief with timestamp ``-inf`` (a pure guess) is always stale.
    """
    return (now - belief_time) > max_age
