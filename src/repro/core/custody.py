"""Custody transfer bookkeeping (paper Section 2.3.2).

The mechanism: a sender keeps every transmitted copy in its **Cache**
until the next hop acknowledges reception; on ACK the cached copy is
deleted, and on timeout it is "moved from Cache to Store for another
round of transfer rescheduling and may or may not choose the same next
hop this time".

:class:`CustodyManager` pairs a :class:`repro.sim.storage.DualStore`
with the timeout timers.  It is deliberately independent of the GLR
protocol class so the custody-off configuration of Table 3 (and any
other protocol wanting per-hop custody) can reuse it.  Timers are
injected as a ``schedule(delay, callback) -> handle`` callable, so the
manager never needs to see the simulator itself.
"""

from __future__ import annotations

from typing import Callable, Hashable, Protocol as TypingProtocol


class _Cancellable(TypingProtocol):
    def cancel(self) -> None: ...  # pragma: no cover - structural typing


class _DualStoreLike(TypingProtocol):  # pragma: no cover - structural typing
    def move_to_cache(self, key: Hashable) -> bool: ...

    def acknowledge(self, key: Hashable) -> bool: ...

    def return_to_store(self, key: Hashable) -> bool: ...


class CustodyManager:
    """Tracks sent-but-unacknowledged copies and their retry timers."""

    def __init__(
        self,
        schedule: Callable[[float, Callable[[], None]], _Cancellable],
        store: _DualStoreLike,
        timeout: float,
        on_returned: Callable[[Hashable], None] | None = None,
    ):
        if timeout <= 0:
            raise ValueError("custody timeout must be positive")
        self._schedule = schedule
        self._store = store
        self._timeout = timeout
        self._on_returned = on_returned
        self._timers: dict[Hashable, _Cancellable] = {}
        self.acks_received = 0
        self.timeouts = 0

    def pending(self) -> int:
        """Copies currently awaiting acknowledgement."""
        return len(self._timers)

    def on_sent(self, key: Hashable) -> None:
        """A copy was handed to the MAC: move Store -> Cache, arm timer."""
        if not self._store.move_to_cache(key):
            return
        self._cancel_timer(key)
        self._timers[key] = self._schedule(
            self._timeout, lambda: self._on_timeout(key)
        )

    def on_ack(self, key: Hashable) -> bool:
        """Receiver confirmed custody: drop from Cache, disarm timer."""
        self._cancel_timer(key)
        if self._store.acknowledge(key):
            self.acks_received += 1
            return True
        return False

    def _on_timeout(self, key: Hashable) -> None:
        self._timers.pop(key, None)
        if self._store.return_to_store(key):
            self.timeouts += 1
            if self._on_returned is not None:
                self._on_returned(key)

    def _cancel_timer(self, key: Hashable) -> None:
        timer = self._timers.pop(key, None)
        if timer is not None:
            timer.cancel()

    def cancel_all(self) -> None:
        """Disarm every timer (end of simulation)."""
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
