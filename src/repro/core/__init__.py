"""GLR — the paper's Geometric Localized Routing protocol.

This package is the primary contribution of the reproduced paper:

- :mod:`repro.core.decision` — Algorithm 1 (delay-tolerant decision
  making): choose the number of message copies from a connectivity
  estimate.
- :mod:`repro.core.location` — destination-location knowledge modes,
  diffusion helpers, and the stale-location perturbation heuristic.
- :mod:`repro.core.custody` — Store/Cache custody transfer bookkeeping.
- :mod:`repro.core.face` — face-routing recovery on the planar LDTG.
- :mod:`repro.core.protocol` — Algorithm 2 (geometric routing with
  controlled flooding), tying everything together as a
  :class:`repro.sim.world.Protocol`.
"""

from repro.core.decision import CopyDecision, decide_copies
from repro.core.location import LocationMode
from repro.core.protocol import GLRConfig, GLRProtocol

__all__ = [
    "CopyDecision",
    "GLRConfig",
    "GLRProtocol",
    "LocationMode",
    "decide_copies",
]
