"""Algorithm 1 — Delay-Tolerant Decision Making.

    procedure DELAY-TOLERANT DECISION MAKING
        if Network is sparse then
            Decide the number of message copies needed
            Send multiple copies of same message into network
        else
            Use single copy
        end if

"Sparse" is operationalized exactly as the paper describes: any node can
compute the connectivity likelihood from the number of nodes, the
communication range and the region area via Georgiou et al.'s bound
(:func:`repro.graphs.connectivity.connectivity_confidence`).  When the
network is connected with confidence at least ``threshold``, a single
copy suffices ("If the network is dense and it could be connected at
some time, single copy is enough for a fast delivery ... Otherwise,
multiple copies approach should be used").

With the paper's own scenario numbers this reproduces its choices:
50 nodes in 1500 m x 300 m give confidence ~0 at 50/100 m (→ 3 copies)
and ≥ 0.98 at 150/200/250 m (→ 1 copy), matching "3 copies for
50 m/100 m and 1 copy for 150 m/200 m/250 m" in Tables 5/6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.connectivity import connectivity_confidence


@dataclass(frozen=True)
class CopyDecision:
    """Outcome of Algorithm 1 for one (n, radius, area) situation.

    Attributes:
        copies: number of identical message copies to inject.
        confidence: the connectivity-probability lower bound used.
        sparse: whether the network was classified as sparse.
    """

    copies: int
    confidence: float
    sparse: bool


def decide_copies(
    n_nodes: int,
    radius: float,
    area: float,
    threshold: float = 0.9,
    sparse_copies: int = 3,
    max_copies: int | None = None,
    storage_headroom: float | None = None,
) -> CopyDecision:
    """Decide the number of message copies for the current network.

    Args:
        n_nodes: node population (each node knows this, per the paper).
        radius: transmission range in metres.
        area: deployment region area in m^2.
        threshold: connectivity confidence above which one copy is used.
        sparse_copies: copies used when the network is sparse (paper: 3).
        max_copies: optional hard cap (> 3 spawns extra MidDSTD trees).
        storage_headroom: optional fraction in (0, 1]; scales the sparse
            copy count down when node storage is scarce, reflecting the
            paper's note that the count "depends on network sparsity and
            memory storage at each sensor node".

    Returns:
        A :class:`CopyDecision`.
    """
    if n_nodes < 2:
        return CopyDecision(copies=1, confidence=1.0, sparse=False)
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    if sparse_copies < 1:
        raise ValueError("sparse_copies must be >= 1")

    confidence = connectivity_confidence(n_nodes, radius, area)
    if confidence >= threshold:
        return CopyDecision(copies=1, confidence=confidence, sparse=False)

    copies = sparse_copies
    if storage_headroom is not None:
        if not 0.0 < storage_headroom <= 1.0:
            raise ValueError("storage_headroom must be in (0, 1]")
        copies = max(1, round(copies * storage_headroom))
    if max_copies is not None:
        copies = min(copies, max_copies)
    return CopyDecision(copies=copies, confidence=confidence, sparse=True)
