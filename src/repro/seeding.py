"""Deterministic RNG derivation.

Every stochastic component derives its own :class:`random.Random` from a
master seed plus a role label, so replicate runs are reproducible and
components never share (or fight over) one stream.  ``random.Random``
only seeds from scalars, so composite keys are flattened to a stable
string first.
"""

from __future__ import annotations

import random


def derive_seed(*parts: object) -> str:
    """A stable scalar seed string from heterogeneous key parts."""
    return "|".join(repr(p) for p in parts)


def derive_rng(*parts: object) -> random.Random:
    """A :class:`random.Random` seeded from the flattened key parts."""
    return random.Random(derive_seed(*parts))
