"""Deterministic RNG derivation.

Every stochastic component derives its own :class:`random.Random` from a
master seed plus a role label, so replicate runs are reproducible and
components never share (or fight over) one stream.  ``random.Random``
only seeds from scalars, so composite keys are flattened to a stable
string first.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable


def derive_seed(*parts: object) -> str:
    """A stable scalar seed string from heterogeneous key parts."""
    return "|".join(repr(p) for p in parts)


def derive_rng(*parts: object) -> random.Random:
    """A :class:`random.Random` seeded from the flattened key parts."""
    return random.Random(derive_seed(*parts))


#: Spacing between replicate master seeds.  Seeds within one scenario
#: stay < 1000 apart in practice, so strides of 1000 keep replicate
#: populations disjoint (paper: 10 independent topologies per point).
REPLICATE_SEED_STRIDE = 1000


def replicate_seed(master_seed: int, replicate: int) -> int:
    """The master seed of replicate ``replicate`` of a scenario.

    This is the single source of truth used by both the serial
    reference path (:func:`repro.experiments.runner.run_replicates`)
    and the parallel campaign engine
    (:mod:`repro.experiments.campaign`), so a parallel fan-out is
    bit-identical to a serial run of the same spec.
    """
    if replicate < 0:
        raise ValueError("replicate index must be non-negative")
    return master_seed + REPLICATE_SEED_STRIDE * replicate


def stable_shard(key: str, shard_count: int) -> int:
    """The shard (``0 .. shard_count-1``) a content key belongs to.

    Hash-based so the partition depends only on the key itself — not on
    enumeration order, process, or platform — which lets independently
    launched shard runs of one campaign split the task set consistently
    (``repro campaign --shard-index/--shard-count``) and lets a merge
    detect overlap by task key alone.
    """
    if shard_count < 1:
        raise ValueError("shard count must be >= 1")
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count


def shard_partition(
    keys: Iterable[str], shard_count: int
) -> list[list[str]]:
    """Partition ``keys`` into per-shard lists (index ``i`` -> its keys).

    The materialised form of :func:`stable_shard`: every key lands in
    exactly one shard's list, in input order.  This is the *initial*
    assignment the work-stealing scheduler starts every worker from, so
    a campaign where no steal ever fires is, by construction, the same
    partition a static ``--shard-index/--shard-count`` run executes.
    """
    if shard_count < 1:
        raise ValueError("shard count must be >= 1")
    parts: list[list[str]] = [[] for _ in range(shard_count)]
    for key in keys:
        parts[stable_shard(key, shard_count)].append(key)
    return parts


def shard_sizes(keys: Iterable[str], shard_count: int) -> list[int]:
    """How many of ``keys`` each shard owns (index ``i`` -> count).

    The orchestrator uses this to know, before launching anything, how
    many task records each shard worker's stream must end up with — the
    completion criterion that distinguishes "worker exited cleanly" from
    "worker finished its shard".  Content-key partitioning is uneven by
    nature (it is a hash split, not round-robin), so per-shard totals
    must be computed, not divided.
    """
    return [len(part) for part in shard_partition(keys, shard_count)]
