"""Geometric predicates: orientation, in-circle, circumcircle.

The Delaunay construction only needs two predicates — ``orientation`` and
``in_circle`` — evaluated on coordinates that, in this reproduction, come
from continuous random node placements.  Exactly degenerate inputs
(four co-circular points, three collinear points) therefore have measure
zero, and double-precision determinants with a small relative tolerance
are sufficient.  The tolerance handling below keeps the construction
stable when tests *do* feed it structured grids.
"""

from __future__ import annotations

import enum
import math

from repro.geometry.primitives import Point

#: Relative tolerance used to classify near-zero determinants.  The
#: determinants below are sums of products of coordinates, so the natural
#: scale for "zero" is the magnitude of the largest term.
_EPS = 1e-12


class Orientation(enum.IntEnum):
    """Orientation of an ordered point triple ``(a, b, c)``."""

    CLOCKWISE = -1
    COLLINEAR = 0
    COUNTERCLOCKWISE = 1


def orientation_value(a: Point, b: Point, c: Point) -> float:
    """Raw signed doubled area of triangle ``abc``.

    Positive for counter-clockwise, negative for clockwise.
    """
    return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)


def orientation(a: Point, b: Point, c: Point) -> Orientation:
    """Classify the turn ``a -> b -> c`` with tolerance for collinearity."""
    value = orientation_value(a, b, c)
    scale = (
        abs(b.x - a.x) * abs(c.y - a.y) + abs(b.y - a.y) * abs(c.x - a.x) + 1.0
    )
    if value > _EPS * scale:
        return Orientation.COUNTERCLOCKWISE
    if value < -_EPS * scale:
        return Orientation.CLOCKWISE
    return Orientation.COLLINEAR


def in_circle(a: Point, b: Point, c: Point, d: Point) -> bool:
    """Return True when ``d`` lies strictly inside the circumcircle of ``abc``.

    ``a, b, c`` must be in counter-clockwise order; callers that cannot
    guarantee this should use :func:`in_circle_any_orientation`.
    """
    adx = a.x - d.x
    ady = a.y - d.y
    bdx = b.x - d.x
    bdy = b.y - d.y
    cdx = c.x - d.x
    cdy = c.y - d.y

    ad_sq = adx * adx + ady * ady
    bd_sq = bdx * bdx + bdy * bdy
    cd_sq = cdx * cdx + cdy * cdy

    det = (
        adx * (bdy * cd_sq - cdy * bd_sq)
        - ady * (bdx * cd_sq - cdx * bd_sq)
        + ad_sq * (bdx * cdy - cdx * bdy)
    )
    scale = (
        abs(adx) * (abs(bdy) * cd_sq + abs(cdy) * bd_sq)
        + abs(ady) * (abs(bdx) * cd_sq + abs(cdx) * bd_sq)
        + ad_sq * (abs(bdx) * abs(cdy) + abs(cdx) * abs(bdy))
        + 1.0
    )
    return det > _EPS * scale


def in_circle_any_orientation(a: Point, b: Point, c: Point, d: Point) -> bool:
    """Orientation-independent strict in-circumcircle test."""
    if orientation(a, b, c) == Orientation.CLOCKWISE:
        a, b = b, a
    return in_circle(a, b, c, d)


def circumcircle(a: Point, b: Point, c: Point) -> tuple[Point, float]:
    """Circumcenter and circumradius of triangle ``abc``.

    Raises :class:`ValueError` for (near-)collinear input, where the
    circumcircle degenerates to a line.
    """
    d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y))
    scale = abs(a.x * b.y) + abs(b.x * c.y) + abs(c.x * a.y) + 1.0
    if abs(d) <= _EPS * scale:
        raise ValueError("circumcircle of collinear points is undefined")

    a_sq = a.x * a.x + a.y * a.y
    b_sq = b.x * b.x + b.y * b.y
    c_sq = c.x * c.x + c.y * c.y

    ux = (a_sq * (b.y - c.y) + b_sq * (c.y - a.y) + c_sq * (a.y - b.y)) / d
    uy = (a_sq * (c.x - b.x) + b_sq * (a.x - c.x) + c_sq * (b.x - a.x)) / d
    center = Point(ux, uy)
    radius = center.distance_to(a)
    return center, radius


def point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool:
    """Return True when ``p`` lies inside or on triangle ``abc``."""
    d1 = orientation_value(p, a, b)
    d2 = orientation_value(p, b, c)
    d3 = orientation_value(p, c, a)
    has_neg = (d1 < 0) or (d2 < 0) or (d3 < 0)
    has_pos = (d1 > 0) or (d2 > 0) or (d3 > 0)
    return not (has_neg and has_pos)


def angle_at(vertex: Point, p: Point, q: Point) -> float:
    """Interior angle at ``vertex`` formed by rays toward ``p`` and ``q``."""
    v1 = p - vertex
    v2 = q - vertex
    n1 = v1.norm()
    n2 = v2.norm()
    if n1 == 0.0 or n2 == 0.0:
        raise ValueError("angle undefined when a ray has zero length")
    cos_angle = max(-1.0, min(1.0, v1.dot(v2) / (n1 * n2)))
    return math.acos(cos_angle)
