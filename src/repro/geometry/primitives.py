"""Basic planar geometry primitives.

Everything in the reproduction that touches coordinates goes through this
module, so the conventions are worth stating once:

- Coordinates are floats in metres; the plane is the standard Euclidean
  plane with x growing right and y growing up.
- Angles are radians in ``(-pi, pi]`` as returned by :func:`math.atan2`.
- ``Point`` is immutable and hashable so it can key dictionaries (node
  positions, triangulation vertices) safely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable point (or position vector) in the plane."""

    x: float
    y: float

    def __iter__(self):
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def dot(self, other: "Point") -> float:
        """Dot product, treating both points as vectors from the origin."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z component of the 3D cross product (signed parallelogram area)."""
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length of the vector from the origin to this point."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)`` — convenient for numpy interop in tests."""
        return (self.x, self.y)


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def distance_sq(a: Point, b: Point) -> float:
    """Squared Euclidean distance.

    Preferred over :func:`distance` inside comparisons because it avoids
    the square root; all proximity-graph constructions use it.
    """
    dx = a.x - b.x
    dy = a.y - b.y
    return dx * dx + dy * dy


def midpoint(a: Point, b: Point) -> Point:
    """Midpoint of segment ``ab``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def angle_between(origin: Point, target: Point) -> float:
    """Angle of the vector ``origin -> target`` in ``(-pi, pi]``."""
    return math.atan2(target.y - origin.y, target.x - origin.x)


def segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """Return True when closed segments ``p1p2`` and ``q1q2`` intersect.

    Shared endpoints count as intersections; collinear overlap counts as
    well.  Used by the planarity checks in the test suite to certify that
    the LDTG construction really produces a planar graph.
    """

    def orient(a: Point, b: Point, c: Point) -> int:
        value = (b - a).cross(c - a)
        if value > 0:
            return 1
        if value < 0:
            return -1
        return 0

    def on_segment(a: Point, b: Point, c: Point) -> bool:
        return (
            min(a.x, b.x) <= c.x <= max(a.x, b.x)
            and min(a.y, b.y) <= c.y <= max(a.y, b.y)
        )

    d1 = orient(q1, q2, p1)
    d2 = orient(q1, q2, p2)
    d3 = orient(p1, p2, q1)
    d4 = orient(p1, p2, q2)

    if d1 != d2 and d3 != d4:
        return True
    if d1 == 0 and on_segment(q1, q2, p1):
        return True
    if d2 == 0 and on_segment(q1, q2, p2):
        return True
    if d3 == 0 and on_segment(p1, p2, q1):
        return True
    if d4 == 0 and on_segment(p1, p2, q2):
        return True
    return False


def segments_cross_interior(p1: Point, p2: Point, q1: Point, q2: Point) -> bool:
    """Return True when the segments cross at a point interior to both.

    Unlike :func:`segments_intersect`, sharing an endpoint does *not*
    count.  This is the predicate that matters for planarity of a graph
    drawing: edges of a planar straight-line graph may share endpoints but
    never cross in their interiors.
    """
    shared = {p1, p2} & {q1, q2}
    if shared:
        return False
    return segments_intersect(p1, p2, q1, q2)


def polygon_area(points: Sequence[Point]) -> float:
    """Signed area of a polygon (positive when counter-clockwise)."""
    area = 0.0
    n = len(points)
    for i in range(n):
        j = (i + 1) % n
        area += points[i].cross(points[j])
    return area / 2.0


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    xs = 0.0
    ys = 0.0
    count = 0
    for p in points:
        xs += p.x
        ys += p.y
        count += 1
    if count == 0:
        raise ValueError("centroid of an empty point collection is undefined")
    return Point(xs / count, ys / count)


def bounding_box(points: Iterable[Point]) -> tuple[Point, Point]:
    """Axis-aligned bounding box as ``(lower_left, upper_right)``."""
    iterator = iter(points)
    try:
        first = next(iterator)
    except StopIteration:
        raise ValueError("bounding box of an empty point collection is undefined")
    min_x = max_x = first.x
    min_y = max_y = first.y
    for p in iterator:
        min_x = min(min_x, p.x)
        max_x = max(max_x, p.x)
        min_y = min(min_y, p.y)
        max_y = max(max_y, p.y)
    return Point(min_x, min_y), Point(max_x, max_y)
