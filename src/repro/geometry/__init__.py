"""Computational-geometry substrate for the GLR reproduction.

The paper's routing graph is a localized Delaunay triangulation; this
package provides the geometric machinery it is built from:

- :mod:`repro.geometry.primitives` — points, distances, angles, segments.
- :mod:`repro.geometry.predicates` — orientation / in-circle predicates.
- :mod:`repro.geometry.hull` — convex hulls (Andrew's monotone chain).
- :mod:`repro.geometry.triangulation` — triangulation data structure.
- :mod:`repro.geometry.delaunay` — Bowyer–Watson Delaunay triangulation,
  implemented from scratch (no scipy dependency at runtime; scipy is used
  only as a cross-check oracle in the test suite).
"""

from repro.geometry.delaunay import delaunay_triangulation
from repro.geometry.hull import convex_hull
from repro.geometry.predicates import (
    Orientation,
    circumcircle,
    in_circle,
    orientation,
)
from repro.geometry.primitives import (
    Point,
    angle_between,
    distance,
    distance_sq,
    midpoint,
    polygon_area,
    segments_intersect,
)
from repro.geometry.triangulation import Triangulation

__all__ = [
    "Orientation",
    "Point",
    "Triangulation",
    "angle_between",
    "circumcircle",
    "convex_hull",
    "delaunay_triangulation",
    "distance",
    "distance_sq",
    "in_circle",
    "midpoint",
    "orientation",
    "polygon_area",
    "segments_intersect",
]
