"""Delaunay triangulation via the Bowyer–Watson incremental algorithm.

This is the ``A(N)`` operator of the paper: the (global) Delaunay
triangulation of a point set ``N``.  The k-LDTG construction in
:mod:`repro.graphs.ldt` evaluates it repeatedly on k-hop neighbourhoods,
which are small (tens of points), so the straightforward O(n^2)
implementation below is more than fast enough and keeps the code easy to
audit against the textbook algorithm.

Degenerate inputs are handled explicitly:

- fewer than 3 points, or all points collinear, yield a triangulation
  with no triangles (callers use :func:`delaunay_edges` which then falls
  back to the chain of collinear neighbours);
- duplicate points are collapsed before triangulating.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.geometry.predicates import (
    Orientation,
    in_circle,
    orientation,
)
from repro.geometry.primitives import Point, distance
from repro.geometry.triangulation import (
    Edge,
    Triangulation,
    normalize_edge,
)


def _super_triangle(points: Sequence[Point]) -> tuple[Point, Point, Point]:
    """A triangle that comfortably contains every input point."""
    min_x = min(p.x for p in points)
    max_x = max(p.x for p in points)
    min_y = min(p.y for p in points)
    max_y = max(p.y for p in points)
    dx = max_x - min_x
    dy = max_y - min_y
    delta = max(dx, dy, 1.0) * 100.0
    mid_x = (min_x + max_x) / 2.0
    mid_y = (min_y + max_y) / 2.0
    return (
        Point(mid_x - 2.0 * delta, mid_y - delta),
        Point(mid_x + 2.0 * delta, mid_y - delta),
        Point(mid_x, mid_y + 2.0 * delta),
    )


def _all_collinear(points: Sequence[Point]) -> bool:
    """True when every point lies on one line (or there are < 3 points)."""
    if len(points) < 3:
        return True
    a = points[0]
    b = next((p for p in points[1:] if p != a), None)
    if b is None:
        return True
    return all(
        orientation(a, b, c) == Orientation.COLLINEAR for c in points[1:]
    )


def delaunay_triangulation(points: Iterable[Point]) -> Triangulation:
    """Delaunay triangulation of a point set.

    Returns a :class:`Triangulation` whose ``points`` list contains the
    *distinct* input points in first-seen order.  For degenerate inputs
    (collinear or < 3 points) the triangle set is empty.
    """
    distinct: list[Point] = []
    seen: set[Point] = set()
    for p in points:
        if p not in seen:
            seen.add(p)
            distinct.append(p)

    tri = Triangulation(points=distinct)
    if len(distinct) < 3 or _all_collinear(distinct):
        return tri

    # Indices len(distinct) .. len(distinct)+2 are the super-triangle.
    s0, s1, s2 = _super_triangle(distinct)
    vertices = distinct + [s0, s1, s2]
    n = len(distinct)

    # Triangles kept as CCW-ordered index triples during construction so
    # the in_circle predicate sees consistent orientation.
    def ccw(a: int, b: int, c: int) -> tuple[int, int, int]:
        if orientation(vertices[a], vertices[b], vertices[c]) == Orientation.CLOCKWISE:
            return (a, c, b)
        return (a, b, c)

    triangles: set[tuple[int, int, int]] = {ccw(n, n + 1, n + 2)}

    for idx in range(n):
        p = vertices[idx]
        bad: list[tuple[int, int, int]] = []
        for t in triangles:
            a, b, c = (vertices[t[0]], vertices[t[1]], vertices[t[2]])
            if in_circle(a, b, c, p):
                bad.append(t)

        # Boundary of the cavity: edges belonging to exactly one bad triangle.
        edge_count: dict[Edge, tuple[int, int]] = {}
        counts: dict[Edge, int] = {}
        for t in bad:
            for i in range(3):
                u, v = t[i], t[(i + 1) % 3]
                e = normalize_edge(u, v)
                counts[e] = counts.get(e, 0) + 1
                edge_count[e] = (u, v)
        for t in bad:
            triangles.discard(t)
        for e, cnt in counts.items():
            if cnt == 1:
                u, v = edge_count[e]
                if len({u, v, idx}) == 3:
                    triangles.add(ccw(u, v, idx))

    for t in triangles:
        if all(v < n for v in t):
            tri.add_triangle(*t)
    return tri


def delaunay_edges(points: Sequence[Point]) -> set[Edge]:
    """Undirected Delaunay edge set over ``points`` (by index).

    For degenerate (collinear) inputs, the Delaunay triangulation has no
    triangles but the natural limit graph is the path connecting the
    points in order along the line; that path is returned so that sparse
    collinear neighbourhoods still yield a connected routing structure.
    Indices refer to positions in ``points`` (duplicates map onto the
    first occurrence).
    """
    distinct_index: dict[Point, int] = {}
    order: list[Point] = []
    remap: list[int] = []
    for p in points:
        if p not in distinct_index:
            distinct_index[p] = len(order)
            order.append(p)
        remap.append(distinct_index[p])

    tri = delaunay_triangulation(order)
    edges: set[Edge] = set()
    if tri.triangles:
        compact_edges = tri.edges()
    elif len(order) >= 2:
        # Collinear fallback: chain consecutive points along the line.
        ref = order[0]
        far = max(order, key=lambda q: distance(ref, q))
        direction = far - ref
        norm = direction.norm()
        if norm == 0.0:
            compact_edges = set()
        else:
            keyed = sorted(
                range(len(order)),
                key=lambda i: (order[i] - ref).dot(direction) / norm,
            )
            compact_edges = {
                normalize_edge(keyed[i], keyed[i + 1])
                for i in range(len(keyed) - 1)
            }
    else:
        compact_edges = set()

    # Map compact (deduplicated) indices back to the caller's indexing.
    back: dict[int, int] = {}
    for caller_idx, compact_idx in enumerate(remap):
        back.setdefault(compact_idx, caller_idx)
    for u, v in compact_edges:
        edges.add(normalize_edge(back[u], back[v]))
    return edges


def is_delaunay(tri: Triangulation) -> bool:
    """Check the empty-circumcircle property of every triangle.

    O(t * n) — test-suite oracle, not meant for production paths.
    """
    for a, b, c in tri.triangles:
        pa, pb, pc = tri.points[a], tri.points[b], tri.points[c]
        if orientation(pa, pb, pc) == Orientation.CLOCKWISE:
            pa, pb = pb, pa
        for i, p in enumerate(tri.points):
            if i in (a, b, c):
                continue
            if in_circle(pa, pb, pc, p):
                return False
    return True


def stretch_factor(points: Sequence[Point], edges: set[Edge]) -> float:
    """Maximum graph-distance/Euclidean-distance ratio over point pairs.

    The paper leans on Keil & Gutwin's result that the Delaunay
    triangulation is a constant-factor Euclidean spanner; this utility
    lets the tests confirm small stretch empirically.  Runs Dijkstra from
    every vertex — fine for the test-sized inputs it serves.
    """
    import heapq

    n = len(points)
    if n < 2:
        return 1.0
    adjacency: dict[int, list[tuple[int, float]]] = {i: [] for i in range(n)}
    for u, v in edges:
        w = distance(points[u], points[v])
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))

    worst = 1.0
    for source in range(n):
        dist = [math.inf] * n
        dist[source] = 0.0
        heap: list[tuple[float, int]] = [(0.0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            for v, w in adjacency[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        for target in range(source + 1, n):
            euclid = distance(points[source], points[target])
            if euclid == 0.0:
                continue
            if math.isinf(dist[target]):
                return math.inf
            worst = max(worst, dist[target] / euclid)
    return worst
