"""Triangulation data structure.

A :class:`Triangulation` stores an indexed point set plus a set of
triangles over those indices.  It is deliberately simple — triangles as
sorted index triples, adjacency derived on demand — because the LDTG
construction only ever queries *edges* and *neighbourhoods* of local
triangulations over a few dozen points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.geometry.primitives import Point

Edge = tuple[int, int]
Triangle = tuple[int, int, int]


def normalize_edge(u: int, v: int) -> Edge:
    """Canonical (sorted) form of an undirected edge."""
    return (u, v) if u < v else (v, u)


def normalize_triangle(a: int, b: int, c: int) -> Triangle:
    """Canonical (sorted) form of a triangle."""
    i, j, k = sorted((a, b, c))
    return (i, j, k)


@dataclass
class Triangulation:
    """A set of triangles over an indexed point set.

    Attributes:
        points: vertex coordinates; triangle indices refer to this list.
        triangles: set of sorted index triples.
    """

    points: list[Point]
    triangles: set[Triangle] = field(default_factory=set)

    def add_triangle(self, a: int, b: int, c: int) -> None:
        """Insert triangle ``abc`` (indices into :attr:`points`)."""
        if len({a, b, c}) != 3:
            raise ValueError(f"degenerate triangle ({a}, {b}, {c})")
        self.triangles.add(normalize_triangle(a, b, c))

    def edges(self) -> set[Edge]:
        """All undirected edges appearing in at least one triangle."""
        result: set[Edge] = set()
        for a, b, c in self.triangles:
            result.add(normalize_edge(a, b))
            result.add(normalize_edge(b, c))
            result.add(normalize_edge(a, c))
        return result

    def has_edge(self, u: int, v: int) -> bool:
        """Return True when edge ``uv`` belongs to some triangle."""
        return normalize_edge(u, v) in self.edges()

    def neighbors(self, vertex: int) -> set[int]:
        """Vertices sharing an edge with ``vertex``."""
        result: set[int] = set()
        for a, b, c in self.triangles:
            tri = (a, b, c)
            if vertex in tri:
                result.update(tri)
        result.discard(vertex)
        return result

    def vertex_count(self) -> int:
        """Number of points (including any not used by a triangle)."""
        return len(self.points)

    def triangles_with_edge(self, u: int, v: int) -> list[Triangle]:
        """Triangles containing undirected edge ``uv`` (0, 1 or 2 of them)."""
        result = []
        for tri in self.triangles:
            if u in tri and v in tri:
                result.append(tri)
        return result

    def boundary_edges(self) -> set[Edge]:
        """Edges that belong to exactly one triangle (the outer boundary)."""
        count: dict[Edge, int] = {}
        for a, b, c in self.triangles:
            for e in (
                normalize_edge(a, b),
                normalize_edge(b, c),
                normalize_edge(a, c),
            ):
                count[e] = count.get(e, 0) + 1
        return {e for e, n in count.items() if n == 1}

    def iter_triangle_points(self) -> Iterator[tuple[Point, Point, Point]]:
        """Yield each triangle as a coordinate triple."""
        for a, b, c in self.triangles:
            yield self.points[a], self.points[b], self.points[c]

    def adjacency(self) -> dict[int, set[int]]:
        """Full adjacency map (vertex -> set of neighbouring vertices)."""
        adj: dict[int, set[int]] = {i: set() for i in range(len(self.points))}
        for u, v in self.edges():
            adj[u].add(v)
            adj[v].add(u)
        return adj


def edges_of(triples: Iterable[Triangle]) -> set[Edge]:
    """Undirected edge set of an iterable of triangles."""
    result: set[Edge] = set()
    for a, b, c in triples:
        result.add(normalize_edge(a, b))
        result.add(normalize_edge(b, c))
        result.add(normalize_edge(a, c))
    return result
