"""Convex hulls via Andrew's monotone chain.

The hull is used in two places: to bound the super-triangle of the
Bowyer–Watson construction and, in the test suite, to validate that every
Delaunay triangulation covers exactly the convex hull of its input.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.geometry.primitives import Point


def _cross(o: Point, a: Point, b: Point) -> float:
    return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x)


def convex_hull(points: Iterable[Point]) -> list[Point]:
    """Convex hull in counter-clockwise order, without collinear points.

    Duplicates are removed first.  Degenerate inputs are handled: zero,
    one or two distinct points return the distinct points themselves; a
    fully collinear set returns its two extremes.
    """
    unique = sorted(set(points), key=lambda p: (p.x, p.y))
    if len(unique) <= 2:
        return unique

    lower: list[Point] = []
    for p in unique:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)

    upper: list[Point] = []
    for p in reversed(unique):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)

    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        # Fully collinear input: keep the two extreme points.
        return [unique[0], unique[-1]]
    return hull


def hull_contains(hull: Sequence[Point], p: Point, tol: float = 1e-9) -> bool:
    """Return True when point ``p`` is inside or on a CCW convex hull."""
    n = len(hull)
    if n == 0:
        return False
    if n == 1:
        return hull[0].distance_to(p) <= tol
    if n == 2:
        a, b = hull
        cross = _cross(a, b, p)
        if abs(cross) > tol * (a.distance_to(b) + 1.0):
            return False
        dot = (p - a).dot(b - a)
        return -tol <= dot <= (b - a).dot(b - a) + tol
    for i in range(n):
        a = hull[i]
        b = hull[(i + 1) % n]
        if _cross(a, b, p) < -tol * (a.distance_to(b) + 1.0):
            return False
    return True
