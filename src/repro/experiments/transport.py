"""Pluggable file transports: move campaign artifacts between hosts.

The orchestrator's worker protocol is entirely file-based — spec,
stream, heartbeat, and assignment files (see
:class:`~repro.experiments.layout.RunLayout`) — so running a campaign
across machines is a *transport* problem, not a protocol change.  This
module is that transport seam: a small ABC over the file operations the
supervisor needs, with three implementations.

- :class:`LocalTransport` — direct I/O on a local root.  When the root
  *is* the supervisor's run dir, ``push``/``pull`` detect that source
  and destination are one file and become zero-copy no-ops, which is
  how the single-machine scheduler runs through the same code path as
  a fleet with no overhead.
- :class:`SSHTransport` — ``scp``/``ssh`` file movement plus remote
  worker launch (``python3 -m repro.cli campaign --tasks ...`` over
  ``ssh``).  The remote host only needs the ``repro`` package
  importable by ``python3``; everything else is plain OpenSSH.
- :class:`ObjectStoreTransport` — S3-style put/get/list object
  semantics backed by a local directory.  It stands in for a shared
  filesystem or bucket, and doubles as the CI-testable remote: a
  "host" is just a store root, its worker a local subprocess whose
  files live there, so multi-host orchestration is exercised end to
  end with no network at all.

Path arguments are *names relative to the transport's root* (the
strings :class:`~repro.experiments.layout.RunLayout` defines), so one
layout describes both the supervisor's mirror dir and every remote
root.  All write operations are atomic at file granularity (temp file
+ rename, or the SSH equivalent): a reader — human, worker, or the
supervisor's stream tailer — never sees a torn file.
"""

from __future__ import annotations

import os
import shlex
import shutil
import subprocess
import sys
from abc import ABC, abstractmethod
from pathlib import Path
from typing import IO, Sequence

__all__ = [
    "LocalTransport",
    "ObjectStoreTransport",
    "SSHTransport",
    "Transport",
    "TransportError",
    "parse_host",
    "parse_hosts",
]


class TransportError(RuntimeError):
    """A transport operation failed (unreachable host, bad root, I/O)."""


def _atomic_write_file(target: Path, data: bytes) -> None:
    """Local atomic write: temp file in the target dir, then rename."""
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except OSError as exc:
        tmp.unlink(missing_ok=True)
        raise TransportError(f"cannot write {target}: {exc}") from exc


class Transport(ABC):
    """File operations against one host's run-dir root.

    ``rel`` arguments are root-relative names from
    :class:`~repro.experiments.layout.RunLayout`; they must stay inside
    the root (no absolute paths, no ``..``).
    """

    #: Whether :meth:`launch` runs the worker on *this* machine (so the
    #: supervisor should hand it a full local environment, e.g. the
    #: ``PYTHONPATH`` that makes ``repro`` importable from a checkout).
    runs_locally = False

    def _check_rel(self, rel: str) -> str:
        parts = Path(rel).parts
        if Path(rel).is_absolute() or ".." in parts or not parts:
            raise TransportError(
                f"transport paths are root-relative names, got {rel!r}"
            )
        return rel

    @abstractmethod
    def push(self, local: str | Path, rel: str) -> None:
        """Ship a local file to ``rel`` on the host (atomic replace)."""

    @abstractmethod
    def pull(self, rel: str, local: str | Path) -> bool:
        """Mirror ``rel`` back into a local file (atomic replace).

        Returns ``False`` — touching nothing — when the remote file
        does not exist yet (a worker that has not started writing).
        """

    @abstractmethod
    def touch(self, rel: str) -> None:
        """Create ``rel`` if missing and freshen its mtime."""

    @abstractmethod
    def mtime(self, rel: str) -> float | None:
        """``rel``'s modification time (host clock), ``None`` if missing."""

    @abstractmethod
    def exists(self, rel: str) -> bool:
        """Whether ``rel`` exists on the host."""

    @abstractmethod
    def atomic_write(self, rel: str, data: bytes) -> None:
        """Write ``data`` to ``rel`` so no reader ever sees a torn file."""

    @abstractmethod
    def open_append(self, rel: str) -> IO[bytes]:
        """An append handle on ``rel`` (workers' stream discipline)."""

    @abstractmethod
    def launch(
        self,
        command: Sequence[str],
        stdout: IO,
        env: dict[str, str] | None = None,
    ) -> subprocess.Popen:
        """Start a worker process on the host, logging into ``stdout``.

        The returned handle follows the orchestrator's kill discipline:
        it runs in its own session, so a process-group SIGKILL takes the
        worker and everything it spawned (locally, that is the worker's
        simulation pool; for SSH it is the local client, whose death
        hangs up the remote side).
        """

    @abstractmethod
    def command_head(self) -> list[str]:
        """The argv prefix that invokes the ``repro`` CLI on this host."""

    @abstractmethod
    def describe(self) -> str:
        """A short human-readable host label for events and errors."""


class LocalTransport(Transport):
    """Direct I/O on a local directory root.

    The degenerate — and most important — case: when ``root`` is the
    supervisor's own run dir, every push/pull is a same-file no-op and
    the transported orchestrator is byte-for-byte the single-machine
    one.  A *different* local root behaves like a remote host that
    happens to share the filesystem (useful for NFS-style shared
    storage, and in tests).
    """

    runs_locally = True

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _path(self, rel: str) -> Path:
        return self.root / self._check_rel(rel)

    @staticmethod
    def _same_file(a: Path, b: Path) -> bool:
        try:
            return os.path.samefile(a, b)
        except OSError:
            # One side missing: resolve textually (covers the
            # zero-copy check before the file first exists).
            return a.resolve() == b.resolve()

    def _copy(self, source: Path, target: Path) -> bool:
        if self._same_file(source, target):
            return source.exists()
        if not source.exists():
            return False
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
        try:
            shutil.copy2(source, tmp)  # copy2: mtime survives the hop
            os.replace(tmp, target)
        except OSError as exc:
            tmp.unlink(missing_ok=True)
            raise TransportError(
                f"cannot copy {source} -> {target}: {exc}"
            ) from exc
        return True

    def push(self, local: str | Path, rel: str) -> None:
        if not self._copy(Path(local), self._path(rel)):
            raise TransportError(f"cannot push missing file {local}")

    def pull(self, rel: str, local: str | Path) -> bool:
        return self._copy(self._path(rel), Path(local))

    def touch(self, rel: str) -> None:
        target = self._path(rel)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            target.touch()
        except OSError as exc:
            raise TransportError(f"cannot touch {target}: {exc}") from exc

    def mtime(self, rel: str) -> float | None:
        try:
            return self._path(rel).stat().st_mtime
        except OSError:
            return None

    def exists(self, rel: str) -> bool:
        return self._path(rel).exists()

    def atomic_write(self, rel: str, data: bytes) -> None:
        _atomic_write_file(self._path(rel), data)

    def open_append(self, rel: str) -> IO[bytes]:
        target = self._path(rel)
        target.parent.mkdir(parents=True, exist_ok=True)
        return open(target, "ab")

    def launch(
        self,
        command: Sequence[str],
        stdout: IO,
        env: dict[str, str] | None = None,
    ) -> subprocess.Popen:
        try:
            return subprocess.Popen(
                list(command),
                stdout=stdout,
                stderr=subprocess.STDOUT,
                env=env,
                # Own session/process group, so killing the worker also
                # reaps its simulation pool children.
                start_new_session=True,
            )
        except OSError as exc:
            raise TransportError(f"cannot launch worker: {exc}") from exc

    def command_head(self) -> list[str]:
        return [sys.executable, "-m", "repro.cli"]

    def describe(self) -> str:
        return f"local:{self.root}"


class ObjectStoreTransport(Transport):
    """A directory-backed object store: put/get/list over whole objects.

    The S3-usage model — atomic whole-object ``put``, whole-object
    ``get``, prefix ``list`` — implemented on a plain directory, so it
    works unchanged as a shared-filesystem stand-in, a bucket-mount
    stand-in, and the CI-testable double for a remote host: since the
    backing directory *is* a real filesystem, a pseudo-host's worker is
    simply a local subprocess whose run files live in the store.

    ``open_append`` is the one place the stand-in is more capable than
    a real bucket (objects here support append because files do);
    workers rely on it for their streams, which is exactly why a real
    S3 deployment would keep worker streams on local disk and sync —
    the supervisor side only ever uses whole-object pull.
    """

    runs_locally = True

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def _backing(self, key: str) -> Path:
        return self.root / self._check_rel(key)

    # -- the object API -------------------------------------------------

    def put(self, key: str, data: bytes) -> None:
        """Store a whole object atomically (last writer wins)."""
        _atomic_write_file(self._backing(key), data)

    def get(self, key: str) -> bytes:
        """The object's full content; :class:`TransportError` if absent."""
        try:
            return self._backing(key).read_bytes()
        except OSError as exc:
            raise TransportError(
                f"no object {key!r} in store {self.root}: {exc}"
            ) from exc

    def list(self, prefix: str = "") -> list[str]:
        """Keys under ``prefix``, sorted (S3-style flat enumeration)."""
        if prefix:
            self._check_rel(prefix)
        if not self.root.is_dir():
            return []
        keys = [
            str(path.relative_to(self.root))
            for path in self.root.rglob("*")
            if path.is_file()
        ]
        return sorted(key for key in keys if key.startswith(prefix))

    # -- the Transport surface, mapped onto put/get ---------------------

    def push(self, local: str | Path, rel: str) -> None:
        try:
            data = Path(local).read_bytes()
        except OSError as exc:
            raise TransportError(
                f"cannot push missing file {local}"
            ) from exc
        self.put(rel, data)

    def pull(self, rel: str, local: str | Path) -> bool:
        if not self.exists(rel):
            return False
        data = self.get(rel)
        target = Path(local)
        _atomic_write_file(target, data)
        remote_mtime = self.mtime(rel)
        if remote_mtime is not None:
            # Mirrors keep the object's timestamp, so freshness checks
            # on a pulled copy agree with ``mtime()`` on the store.
            os.utime(target, (remote_mtime, remote_mtime))
        return True

    def touch(self, rel: str) -> None:
        backing = self._backing(rel)
        try:
            if backing.exists():
                os.utime(backing)
            else:
                self.put(rel, b"")
        except OSError as exc:
            raise TransportError(f"cannot touch {rel!r}: {exc}") from exc

    def mtime(self, rel: str) -> float | None:
        try:
            return self._backing(rel).stat().st_mtime
        except OSError:
            return None

    def exists(self, rel: str) -> bool:
        return self._backing(rel).is_file()

    def atomic_write(self, rel: str, data: bytes) -> None:
        self.put(rel, data)

    def open_append(self, rel: str) -> IO[bytes]:
        backing = self._backing(rel)
        backing.parent.mkdir(parents=True, exist_ok=True)
        return open(backing, "ab")

    def launch(
        self,
        command: Sequence[str],
        stdout: IO,
        env: dict[str, str] | None = None,
    ) -> subprocess.Popen:
        # A store pseudo-host's worker is a local subprocess whose run
        # files live in the store root — same kill discipline as local.
        try:
            return subprocess.Popen(
                list(command),
                stdout=stdout,
                stderr=subprocess.STDOUT,
                env=env,
                start_new_session=True,
            )
        except OSError as exc:
            raise TransportError(f"cannot launch worker: {exc}") from exc

    def command_head(self) -> list[str]:
        return [sys.executable, "-m", "repro.cli"]

    def describe(self) -> str:
        return f"store:{self.root}"


class SSHTransport(Transport):
    """rsync/scp-style file movement and worker launch over OpenSSH.

    ``[user@]host[:root]`` host specs come from ``--hosts``; ``root``
    defaults to ``repro-run`` under the remote home.  Requirements on
    the remote side: reachable via non-interactive ``ssh`` (keys or
    agent — ``BatchMode=yes`` is forced so a password prompt fails fast
    instead of hanging the supervisor), and the ``repro`` package
    importable by ``python3``.  Remote mtimes are read off the remote
    clock; keep fleet clocks NTP-sane or stall timeouts drift.

    Every operation shells out; anything returning nonzero raises
    :class:`TransportError` with the captured stderr.  Argv construction
    is split into pure ``*_argv`` helpers so tests can pin the exact
    commands without a live host.
    """

    #: Seconds an individual ssh/scp control operation may take.
    OP_TIMEOUT = 30.0

    def __init__(
        self,
        host: str,
        root: str = "repro-run",
        user: str | None = None,
        remote_python: str = "python3",
        ssh_options: Sequence[str] = (),
    ) -> None:
        if not host:
            raise ValueError("SSH transport needs a host name")
        if Path(root).is_absolute() and ".." in Path(root).parts:
            raise ValueError(f"bad remote root {root!r}")
        self.host = host
        self.user = user
        self.root = root
        self.remote_python = remote_python
        self.ssh_options = tuple(ssh_options)

    @property
    def target(self) -> str:
        return f"{self.user}@{self.host}" if self.user else self.host

    def _remote_path(self, rel: str) -> str:
        return f"{self.root}/{self._check_rel(rel)}"

    def _options(self) -> list[str]:
        return ["-o", "BatchMode=yes", *self.ssh_options]

    def ssh_argv(self, remote_command: str) -> list[str]:
        return ["ssh", *self._options(), self.target, remote_command]

    def scp_push_argv(self, local: str | Path, rel: str) -> list[str]:
        # scp into a temp name + mv keeps the replace atomic on the
        # remote side, mirroring the local temp+rename discipline.
        return self.ssh_argv(
            f"mkdir -p {shlex.quote(self.root)} && cat > "
            f"{shlex.quote(self._remote_path(rel) + '.tmp')} && mv "
            f"{shlex.quote(self._remote_path(rel) + '.tmp')} "
            f"{shlex.quote(self._remote_path(rel))}"
        )

    def scp_pull_argv(self, rel: str, local: str | Path) -> list[str]:
        # -p preserves the remote mtime, which the supervisor's stall
        # detector reads off the mirrored heartbeat.
        return [
            "scp", "-q", "-p", *self._options(),
            f"{self.target}:{self._remote_path(rel)}", str(local),
        ]

    def worker_argv(self, command: Sequence[str],
                    env: dict[str, str] | None = None) -> list[str]:
        assignments = "".join(
            f"{key}={shlex.quote(value)} " for key, value in (env or {}).items()
        )
        return self.ssh_argv(
            assignments + " ".join(shlex.quote(part) for part in command)
        )

    def _run(
        self, argv: Sequence[str], *, input_bytes: bytes | None = None
    ) -> subprocess.CompletedProcess:
        try:
            done = subprocess.run(
                list(argv),
                input=input_bytes,
                capture_output=True,
                timeout=self.OP_TIMEOUT,
            )
        except (OSError, subprocess.TimeoutExpired) as exc:
            raise TransportError(
                f"{self.describe()}: {argv[0]} failed: {exc}"
            ) from exc
        if done.returncode != 0:
            stderr = done.stderr.decode("utf-8", "replace").strip()
            raise TransportError(
                f"{self.describe()}: {' '.join(argv[:2])}... exited "
                f"{done.returncode}: {stderr or '<no stderr>'}"
            )
        return done

    def push(self, local: str | Path, rel: str) -> None:
        try:
            data = Path(local).read_bytes()
        except OSError as exc:
            raise TransportError(
                f"cannot push missing file {local}"
            ) from exc
        self._run(self.scp_push_argv(local, rel), input_bytes=data)

    def pull(self, rel: str, local: str | Path) -> bool:
        if not self.exists(rel):
            return False
        target = Path(local)
        target.parent.mkdir(parents=True, exist_ok=True)
        tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
        try:
            self._run(self.scp_pull_argv(rel, tmp))
            os.replace(tmp, target)
        finally:
            tmp.unlink(missing_ok=True)
        return True

    def touch(self, rel: str) -> None:
        self._run(self.ssh_argv(
            f"mkdir -p {shlex.quote(self.root)} && touch "
            f"{shlex.quote(self._remote_path(rel))}"
        ))

    def mtime(self, rel: str) -> float | None:
        try:
            done = self._run(self.ssh_argv(
                f"stat -c %Y {shlex.quote(self._remote_path(rel))}"
            ))
        except TransportError:
            return None
        try:
            return float(done.stdout.decode("ascii").strip())
        except ValueError:
            return None

    def exists(self, rel: str) -> bool:
        try:
            self._run(self.ssh_argv(
                f"test -e {shlex.quote(self._remote_path(rel))}"
            ))
        except TransportError:
            return False
        return True

    def atomic_write(self, rel: str, data: bytes) -> None:
        self._run(self.scp_push_argv("<memory>", rel), input_bytes=data)

    def open_append(self, rel: str) -> IO[bytes]:
        raise TransportError(
            "append handles are not supported over SSH; remote workers "
            "write their streams on their own host and the supervisor "
            "pulls whole-file mirrors"
        )

    def launch(
        self,
        command: Sequence[str],
        stdout: IO,
        env: dict[str, str] | None = None,
    ) -> subprocess.Popen:
        try:
            return subprocess.Popen(
                self.worker_argv(command, env),
                stdout=stdout,
                stderr=subprocess.STDOUT,
                # Killing the local ssh client's group hangs up the
                # remote session, which takes the remote worker down.
                start_new_session=True,
            )
        except OSError as exc:
            raise TransportError(
                f"{self.describe()}: cannot launch ssh: {exc}"
            ) from exc

    def command_head(self) -> list[str]:
        return [self.remote_python, "-m", "repro.cli"]

    def describe(self) -> str:
        return f"ssh:{self.target}"


def parse_host(spec: str) -> Transport:
    """One ``--hosts`` entry -> a transport, validated eagerly.

    Syntax::

        user@host            SSH, default remote root (repro-run)
        host:/data/run       SSH with an explicit remote root
        store:/shared/h1     directory-backed object store (pseudo-host)
        local:/mnt/nfs/h1    plain local/shared-filesystem root

    Raises :class:`ValueError` on anything malformed — the CLI calls
    this at parse time, so a typo'd fleet spec dies before a single
    simulation starts.
    """
    text = spec.strip()
    if not text:
        raise ValueError("empty host spec")
    scheme, sep, rest = text.partition(":")
    if sep and scheme == "store":
        if not rest:
            raise ValueError(f"host spec {spec!r}: store: needs a directory")
        return ObjectStoreTransport(rest)
    if sep and scheme == "local":
        if not rest:
            raise ValueError(f"host spec {spec!r}: local: needs a directory")
        return LocalTransport(rest)
    address, _, root = text.partition(":")
    user, at, host = address.rpartition("@")
    if at and not user:
        raise ValueError(f"host spec {spec!r}: empty user before '@'")
    if not host:
        raise ValueError(f"host spec {spec!r}: no host name")
    if any(ch.isspace() for ch in text):
        raise ValueError(f"host spec {spec!r}: whitespace not allowed")
    return SSHTransport(
        host=host, user=user or None, root=root or "repro-run"
    )


def parse_hosts(specs: Sequence[str]) -> list[Transport]:
    """Parse a full ``--hosts`` list, refusing duplicates."""
    transports = [parse_host(spec) for spec in specs]
    seen: set[str] = set()
    for transport in transports:
        label = transport.describe()
        if label in seen:
            raise ValueError(f"host {label} listed twice")
        seen.add(label)
    return transports
