"""Drivers regenerating the paper's figures (data series, not plots).

Each driver runs the simulations behind one figure and returns the data
series the figure plots; ``render_*`` helpers print them in a layout
comparable to reading values off the paper's axes.  Drivers accept an
:class:`repro.experiments.common.Effort` so the benches can run reduced
workloads while the CLI can run paper-scale ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from pathlib import Path

from repro.analysis.ci import ConfidenceInterval
from repro.analysis.render import render_series
from repro.core.protocol import GLRConfig
from repro.experiments.campaign import ReplicateSpec, run_replicate_specs
from repro.experiments.common import BENCH_EFFORT, Effort, ci_of
from repro.experiments.scenarios import Scenario
from repro.graphs.connectivity import (
    connected_components,
    largest_component_fraction,
    reachable_pair_fraction,
)
from repro.graphs.udg import unit_disk_graph
from repro.mobility.base import Region
from repro.mobility.registry import MobilityConfig
from repro.mobility.static import uniform_random_positions


@dataclass
class SeriesResult:
    """One figure's data: x values and named y-series of CIs."""

    experiment: str
    title: str
    x_label: str
    xs: list[float] = field(default_factory=list)
    series: dict[str, list[ConfidenceInterval]] = field(default_factory=dict)

    def render(self) -> str:
        """Paper-comparable ASCII rendering."""
        return render_series(
            f"{self.experiment}: {self.title}",
            self.x_label,
            self.xs,
            {
                name: [str(ci) for ci in cis]
                for name, cis in self.series.items()
            },
        )


# ---------------------------------------------------------------------------
# Figure 1 — topology connectivity at 250 m vs 100 m
# ---------------------------------------------------------------------------

def fig1_topology(
    radii: tuple[float, ...] = (250.0, 100.0),
    n_nodes: int = 50,
    side: float = 1000.0,
    runs: int = 10,
    seed: int = 1,
) -> SeriesResult:
    """Figure 1: connectivity of 50 random nodes in a 1000 m square.

    The paper draws two example topologies; the quantitative content is
    "radius 250 m → (almost) connected, radius 100 m → shattered".  We
    report component counts, largest-component fraction, and the
    fraction of node pairs with *any* connecting path, averaged over
    ``runs`` random topologies.
    """
    result = SeriesResult(
        experiment="fig1",
        title=f"topology connectivity, {n_nodes} nodes in {side:.0f}m square",
        x_label="radius_m",
    )
    region = Region(side, side)
    components: list[ConfidenceInterval] = []
    largest: list[ConfidenceInterval] = []
    pairs: list[ConfidenceInterval] = []
    edge_counts: list[ConfidenceInterval] = []
    from repro.analysis.ci import mean_confidence_interval

    for radius in radii:
        comp_samples = []
        largest_samples = []
        pair_samples = []
        edge_samples = []
        for i in range(runs):
            positions = uniform_random_positions(
                list(range(n_nodes)), region, seed=seed + 1000 * i
            )
            graph = unit_disk_graph(positions, radius)
            comp_samples.append(float(len(connected_components(graph))))
            largest_samples.append(largest_component_fraction(graph))
            pair_samples.append(reachable_pair_fraction(graph))
            edge_samples.append(float(graph.edge_count()))
        components.append(mean_confidence_interval(comp_samples))
        largest.append(mean_confidence_interval(largest_samples))
        pairs.append(mean_confidence_interval(pair_samples))
        edge_counts.append(mean_confidence_interval(edge_samples))

    result.xs = list(radii)
    result.series = {
        "components": components,
        "largest_component_fraction": largest,
        "reachable_pair_fraction": pairs,
        "edges": edge_counts,
    }
    return result


# ---------------------------------------------------------------------------
# Figure 3 — latency vs route-check interval
# ---------------------------------------------------------------------------

def fig3_check_interval(
    intervals: tuple[float, ...] = (0.6, 0.8, 1.0, 1.2, 1.4, 1.6),
    effort: Effort = BENCH_EFFORT,
    radius: float = 100.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> SeriesResult:
    """Figure 3: GLR delivery latency under different check intervals.

    Paper setting: 1980 messages, 100 m radius; we sweep the store-state
    re-check timer.  Expected shape: latency mildly increases with the
    interval (less frequent checks delay reaction to topology change),
    traded against control overhead.
    """
    result = SeriesResult(
        experiment="fig3",
        title="GLR delivery latency vs route check interval "
        f"({effort.message_count} messages, {radius:.0f}m)",
        x_label="check_interval_s",
    )
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"fig3-{interval}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol="glr",
            runs=effort.runs,
            glr_config=GLRConfig(check_interval=interval),
        )
        for interval in intervals
    ]
    latencies = []
    control = []
    for runs in run_replicate_specs(specs, workers=workers, cache_dir=cache_dir):
        latencies.append(ci_of(runs, "average_latency"))
        control.append(ci_of(runs, "frames_sent"))
    result.xs = list(intervals)
    result.series = {
        "glr_latency_s": latencies,
        "frames_sent": control,
    }
    return result


# ---------------------------------------------------------------------------
# Figures 4 and 5 — latency vs number of messages in transit
# ---------------------------------------------------------------------------

def _latency_vs_load(
    experiment: str,
    radius: float,
    loads: tuple[int, ...],
    effort: Effort,
    seed: int,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> SeriesResult:
    result = SeriesResult(
        experiment=experiment,
        title=f"delivery latency vs messages in transit ({radius:.0f}m)",
        x_label="messages",
    )
    specs = []
    for load in loads:
        # Horizon: generation takes `load` seconds; leave the same again
        # for deliveries to finish, bounded below by the effort horizon.
        sim_time = max(effort.sim_time, 2.0 * load)
        scenario = Scenario(
            name=f"{experiment}-{load}",
            radius=radius,
            message_count=load,
            sim_time=sim_time,
            seed=seed,
            mobility=mobility,
        )
        for protocol in ("glr", "epidemic"):
            specs.append(
                ReplicateSpec(
                    scenario=scenario, protocol=protocol, runs=effort.runs
                )
            )
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    glr_series = []
    epidemic_series = []
    for glr_runs, epidemic_runs in zip(cells[0::2], cells[1::2]):
        glr_series.append(ci_of(glr_runs, "average_latency"))
        epidemic_series.append(ci_of(epidemic_runs, "average_latency"))
    result.xs = [float(x) for x in loads]
    result.series = {
        "glr_latency_s": glr_series,
        "epidemic_latency_s": epidemic_series,
    }
    return result


def fig4_latency_vs_load(
    loads: tuple[int, ...] = (100, 400, 890, 1400, 1980),
    effort: Effort = BENCH_EFFORT,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> SeriesResult:
    """Figure 4: latency vs number of messages, 50 m radius."""
    return _latency_vs_load(
        "fig4", 50.0, loads, effort, seed, workers, cache_dir, mobility
    )


def fig5_latency_vs_load(
    loads: tuple[int, ...] = (100, 400, 890, 1400, 1980),
    effort: Effort = BENCH_EFFORT,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> SeriesResult:
    """Figure 5: latency vs number of messages, 100 m radius."""
    return _latency_vs_load(
        "fig5", 100.0, loads, effort, seed, workers, cache_dir, mobility
    )


# ---------------------------------------------------------------------------
# Figure 6 — latency vs radius
# ---------------------------------------------------------------------------

def fig6_latency_vs_radius(
    radii: tuple[float, ...] = (50.0, 100.0, 150.0, 200.0, 250.0),
    effort: Effort = BENCH_EFFORT,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> SeriesResult:
    """Figure 6: latency vs transmission radius, fixed message count.

    GLR's Algorithm 1 automatically selects 3 copies below 150 m and a
    single copy at 150 m and above in this geometry, matching the
    paper's stated configuration.
    """
    result = SeriesResult(
        experiment="fig6",
        title=f"delivery latency vs radius ({effort.message_count} messages)",
        x_label="radius_m",
    )
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"fig6-{radius}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol=protocol,
            runs=effort.runs,
        )
        for radius in radii
        for protocol in ("glr", "epidemic")
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    glr_series = []
    epidemic_series = []
    for glr_runs, epidemic_runs in zip(cells[0::2], cells[1::2]):
        glr_series.append(ci_of(glr_runs, "average_latency"))
        epidemic_series.append(ci_of(epidemic_runs, "average_latency"))
    result.xs = list(radii)
    result.series = {
        "glr_latency_s": glr_series,
        "epidemic_latency_s": epidemic_series,
    }
    return result


# ---------------------------------------------------------------------------
# Figure 7 — delivery ratio vs storage limit
# ---------------------------------------------------------------------------

def fig7_delivery_vs_storage(
    limits: tuple[int, ...] = (25, 50, 100, 150, 200),
    effort: Effort = BENCH_EFFORT,
    radius: float = 50.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> SeriesResult:
    """Figure 7: delivery ratio under per-node storage limits (50 m).

    Paper shape: epidemic's delivery ratio collapses once storage drops
    below the number of messages in transit; GLR holds near-100% at far
    smaller stores because controlled flooding keeps occupancy low.
    """
    result = SeriesResult(
        experiment="fig7",
        title=f"delivery ratio vs storage limit ({effort.message_count} "
        f"messages, {radius:.0f}m)",
        x_label="storage_limit_msgs",
    )
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"fig7-{limit}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol=protocol,
            runs=effort.runs,
            buffer_limit=limit,
        )
        for limit in limits
        for protocol in ("glr", "epidemic")
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    glr_series = []
    epidemic_series = []
    for glr_runs, epidemic_runs in zip(cells[0::2], cells[1::2]):
        glr_series.append(ci_of(glr_runs, "delivery_ratio"))
        epidemic_series.append(ci_of(epidemic_runs, "delivery_ratio"))
    result.xs = [float(x) for x in limits]
    result.series = {
        "glr_delivery_ratio": glr_series,
        "epidemic_delivery_ratio": epidemic_series,
    }
    return result
