"""Declarative protocol configs for campaign sweeps.

The mobility registry made *movement patterns* sweepable values
(:class:`~repro.mobility.registry.MobilityConfig`); this module does
the same for *protocol configurations*.  A :class:`ProtocolConfig` is a
pure value — protocol name plus scalar parameters, hashable and
JSON-friendly — so campaign grids can enumerate protocol variants
(hello/check intervals, custody on/off, copy budgets, queue policies)
and the result cache can key on the resolved configuration.

Validation happens at coercion time: parameter names are checked
against the protocol's config dataclass and parameter values run
through its ``__post_init__`` checks, so a bad campaign spec fails at
spec load, not mid-campaign inside a worker process.

Sweepable parameters per protocol::

    glr                 every scalar GLRConfig field (check_interval,
                        custody, sparse_copies, face_routing, ...)
    epidemic            EpidemicConfig fields (anti_entropy_interval,
                        request_batch, tick_interval, buffer_limit)
    epidemic_receipts   EpidemicConfig fields (the receipt mode itself
                        is not sweepable)
    spray_and_wait      SprayAndWaitConfig fields (initial_copies,
                        buffer_limit)
    direct              (none)
    first_contact       (none)

Enum-typed fields (``glr``'s ``location_mode``, the receipt mode) are
*not* sweepable: config params are restricted to scalars so configs
stay hashable and canonicalise cleanly into cache keys.  Sweep those
through the Python API with a concrete config object instead.

Which protocols exist, their config dataclasses, and their
non-sweepable fields all come from the protocol registry
(:mod:`repro.baselines.registry`) — registering a protocol there makes
it sweepable here with no further wiring.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Mapping

from repro.baselines.registry import (
    available_protocols,
    protocol_entry,
    resolve_protocol,
)
from repro.params import ParamValue, canonicalise_params

_resolve_protocol = resolve_protocol


def sweepable_protocols() -> list[str]:
    """Protocol names accepted by :class:`ProtocolConfig`."""
    return available_protocols()


def sweepable_params(protocol: str) -> list[str]:
    """Parameter names a protocol accepts in a :class:`ProtocolConfig`."""
    entry = protocol_entry(protocol)
    if entry.config_class is None:
        return []
    return sorted(
        f.name
        for f in dataclasses.fields(entry.config_class)
        if f.name not in entry.non_sweepable
    )


def _bool_fields(protocol: str) -> frozenset[str]:
    """Names of a protocol's bool-typed config fields.

    Field annotations are strings under ``from __future__ import
    annotations``, so both spellings are matched.
    """
    entry = protocol_entry(protocol)
    if entry.config_class is None:
        return frozenset()
    return frozenset(
        f.name
        for f in dataclasses.fields(entry.config_class)
        if f.type in ("bool", bool)
    )


@dataclass(frozen=True)
class ProtocolConfig:
    """A declarative protocol variant: protocol name plus parameters.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so
    equal configs hash equal regardless of construction order, and the
    campaign cache key (which canonicalises dataclasses field-by-field)
    is stable.  Use :meth:`of` for keyword construction.
    """

    protocol: str
    params: tuple[tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        if not self.protocol or not isinstance(self.protocol, str):
            raise ValueError("protocol name must be a non-empty string")
        object.__setattr__(
            self, "protocol", _resolve_protocol(self.protocol)
        )
        # Shared rules with MobilityConfig (repro.params): string
        # names, scalar values, integral floats collapsed to ints so
        # numerically equal configs canonicalise to one cache key.
        items = canonicalise_params(dict(self.params))
        # Python treats True == 1, so configs that compare (and hash)
        # equal must not JSON-encode differently ("custody": true vs 1
        # would split cache keys, labels, and spec hashes).  Normalise
        # through the config dataclass's declared field types: 0/1 for
        # a bool field becomes the bool (anything else — 2, 0.5, "no",
        # which GLRConfig would silently treat as truthy — is
        # rejected), and a bool for a numeric field becomes the int.
        for key, value in items.items():
            if key in _bool_fields(self.protocol):
                if isinstance(value, bool):
                    continue
                if isinstance(value, int) and value in (0, 1):
                    items[key] = bool(value)
                else:
                    raise ValueError(
                        f"parameter {key!r} of {self.protocol!r} is "
                        f"boolean; got {value!r}"
                    )
            elif isinstance(value, bool):
                items[key] = int(value)
        object.__setattr__(self, "params", tuple(sorted(items.items())))
        self.build()  # validate names and values at construction time

    @classmethod
    def of(cls, protocol: str, **params: ParamValue) -> "ProtocolConfig":
        """Keyword-style constructor: ``ProtocolConfig.of("glr", custody=False)``."""
        return cls(protocol=protocol, params=tuple(params.items()))

    def params_dict(self) -> dict[str, ParamValue]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def build(self) -> object | None:
        """The concrete config dataclass instance this value describes.

        ``None`` for protocols without a config class (``direct``,
        ``first_contact``), which therefore accept no parameters.
        Raises :class:`ValueError` for unknown or non-sweepable
        parameter names and for parameter values the config's own
        validation rejects.
        """
        entry = protocol_entry(self.protocol)
        params = self.params_dict()
        if entry.config_class is None:
            if params:
                raise ValueError(
                    f"protocol {self.protocol!r} takes no config "
                    f"parameters, got {sorted(params)}"
                )
            return None
        blocked = sorted(set(params) & entry.non_sweepable)
        if blocked:
            raise ValueError(
                f"protocol {self.protocol!r} parameters {blocked} are not "
                f"sweepable (non-scalar fields); choose from "
                f"{sweepable_params(self.protocol)}"
            )
        config_class = entry.config_class
        accepted = {f.name for f in dataclasses.fields(config_class)}
        unknown = sorted(set(params) - accepted)
        if unknown:
            raise ValueError(
                f"protocol {self.protocol!r} does not accept parameters "
                f"{unknown}; choose from {sweepable_params(self.protocol)}"
            )
        try:
            return config_class(**params)
        except TypeError as exc:
            # Known names, so this is the config's own validation
            # tripping over a wrongly typed value (e.g. a string where
            # __post_init__ compares numbers).
            raise ValueError(
                f"bad parameter value for protocol {self.protocol!r}: "
                f"{exc}"
            ) from exc

    def to_json(self) -> dict:
        """JSON-ready form (inverse of :func:`as_protocol_config`)."""
        return {"protocol": self.protocol, "params": self.params_dict()}

    def __str__(self) -> str:
        if not self.params:
            return self.protocol
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.protocol}({inner})"


def as_protocol_config(
    value: "ProtocolConfig | str | Mapping",
) -> ProtocolConfig:
    """Coerce user input into a validated :class:`ProtocolConfig`.

    Accepts a protocol name string, a mapping of the form
    ``{"protocol": name, "params": {...}}`` (or with parameters inline
    next to ``"protocol"``), or an existing config.
    """
    if isinstance(value, ProtocolConfig):
        return value
    if isinstance(value, str):
        return ProtocolConfig(protocol=value)
    if isinstance(value, Mapping):
        data = dict(value)
        protocol = data.pop("protocol", None)
        if protocol is None:
            raise ValueError("protocol mapping needs a 'protocol' key")
        params = data.pop("params", None)
        if params is None:
            params = data
        elif data:
            raise ValueError(
                f"unexpected protocol keys {sorted(data)} next to 'params'"
            )
        elif not isinstance(params, Mapping):
            raise ValueError(
                f"protocol 'params' must be a mapping, got "
                f"{type(params).__name__}"
            )
        return ProtocolConfig.of(str(protocol), **dict(params))
    raise ValueError(
        f"cannot interpret {type(value).__name__} as a protocol config"
    )
