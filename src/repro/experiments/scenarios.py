"""Scenario definitions (paper Table 1).

A :class:`Scenario` is a pure value object describing one simulated
world: population, region, radio range, mobility, traffic, and horizon.
``PAPER_TABLE1`` captures the defaults of the paper's Table 1; every
experiment driver derives its sweeps from it with :meth:`Scenario.but`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.mobility.base import Region
from repro.mobility.registry import MobilityConfig, as_mobility_config
from repro.sim.adversary import AdversaryConfig, as_adversary_config


@dataclass(frozen=True)
class Scenario:
    """One simulation scenario.

    Attributes mirror the paper's Table 1:

        n_nodes: number of mobile nodes (50).
        region: topology rectangle (1500 m x 300 m).
        radius: transmission range in metres (50–250 sweep).
        min_speed / max_speed: uniform mobility speed range (0–20 m/s).
        pause_time: random-waypoint pause (0 s).
        message_count: messages generated (1980 = 45 sources x 44 dests).
        message_interval: seconds between generations ("packets are
            generated every second").
        message_start: generation start time.
        active_nodes: how many nodes act as sources/destinations (45).
        payload_bytes: packet payload size (1000).
        sim_time: horizon in seconds (1200 or 3800 in the paper).
        beacon_interval: neighbour/location refresh (IMEP tick).
        queue_limit: link-layer queue length (150).
        data_rate_bps: link rate (1 Mbps).
        seed: master seed for this scenario instance.
        mobility: declarative movement pattern
            (:class:`~repro.mobility.registry.MobilityConfig`; strings
            and mappings are coerced).  ``None`` — the default — means
            the paper's random waypoint driven by ``min_speed`` /
            ``max_speed`` / ``pause_time`` above, byte-identical to the
            pre-registry behaviour.
        engine: simulation core, ``"reference"`` or ``"vectorized"``.
            ``None`` — the default — defers to the ``REPRO_ENGINE``
            environment variable at run time.  Engines are
            bit-identical, so the engine is a performance knob, not a
            modelling one; it is sweepable (``--engines``) for
            cross-checking exactly that.
        adversary: Byzantine adversary in force
            (:class:`~repro.sim.adversary.AdversaryConfig`; strings
            like ``"blackhole:0.2"`` and mappings are coerced).
            ``None`` — the default — is the honest world; a zero
            fraction coerces to ``None`` so "no adversary" has exactly
            one spelling in cache keys and spec hashes.  Which nodes
            are compromised derives from the scenario seed, so all
            execution strategies select the same set.
    """

    name: str = "paper-default"
    n_nodes: int = 50
    region: Region = field(default_factory=lambda: Region(1500.0, 300.0))
    radius: float = 100.0
    min_speed: float = 0.0
    max_speed: float = 20.0
    pause_time: float = 0.0
    message_count: int = 1980
    message_interval: float = 1.0
    message_start: float = 1.0
    active_nodes: int = 45
    payload_bytes: int = 1000
    sim_time: float = 3800.0
    beacon_interval: float = 1.0
    queue_limit: int = 150
    data_rate_bps: float = 1_000_000.0
    seed: int = 1
    mobility: MobilityConfig | None = None
    engine: str | None = None
    adversary: AdversaryConfig | None = None

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.radius <= 0:
            raise ValueError("radius must be positive")
        if self.max_speed <= 0:
            raise ValueError("max speed must be positive")
        if self.min_speed < 0 or self.min_speed > self.max_speed:
            raise ValueError("need 0 <= min_speed <= max_speed")
        if self.message_count < 0:
            raise ValueError("message count must be non-negative")
        if self.message_interval <= 0:
            raise ValueError("message interval must be positive")
        if self.message_start < 0:
            raise ValueError("message start must be non-negative")
        if self.payload_bytes < 1:
            raise ValueError("payload must be at least one byte")
        if self.data_rate_bps <= 0:
            raise ValueError("data rate must be positive")
        if not 2 <= self.active_nodes <= self.n_nodes:
            raise ValueError("active_nodes must be in [2, n_nodes]")
        if self.sim_time <= 0:
            raise ValueError("sim time must be positive")
        if self.beacon_interval <= 0:
            raise ValueError("beacon interval must be positive")
        if self.queue_limit < 1:
            raise ValueError("queue limit must be >= 1")
        if self.engine is not None and self.engine not in (
            "reference",
            "vectorized",
        ):
            raise ValueError(
                f"unknown engine {self.engine!r}; choose 'reference' "
                "or 'vectorized'"
            )
        # Coerce strings / mappings ("gauss-markov", {"model": ...}) so
        # sweep grids and JSON specs can name models directly.
        object.__setattr__(self, "mobility", as_mobility_config(self.mobility))
        # Same coercion contract for the adversary axis ("blackhole:0.2",
        # {"mode": ..., "fraction": ...}); fraction 0 normalises to None.
        object.__setattr__(
            self, "adversary", as_adversary_config(self.adversary)
        )
        fields = type(self).__dataclass_fields__
        motion_defaults = tuple(
            fields[name].default
            for name in ("min_speed", "max_speed", "pause_time")
        )
        if self.mobility is not None and (
            (self.min_speed, self.max_speed, self.pause_time)
            != motion_defaults
        ):
            # The scenario motion fields only drive the default RWP
            # path; a registry model takes speeds from its own params.
            # Rejecting the combination prevents sweeps that *look*
            # like speed sensitivity grids but simulate identically.
            raise ValueError(
                "min_speed/max_speed/pause_time only apply to the "
                "default random waypoint path; pass them as parameters "
                f"of the mobility config instead ({self.mobility})"
            )

    def but(self, **changes) -> "Scenario":
        """A copy of this scenario with the given fields replaced."""
        return replace(self, **changes)

    def with_seed(self, seed: int) -> "Scenario":
        """A copy with a different seed (replicate runs)."""
        return replace(self, seed=seed)

    @property
    def area(self) -> float:
        """Deployment area in m^2."""
        return self.region.area


#: The paper's Table 1 configuration, verbatim.
PAPER_TABLE1 = Scenario()
