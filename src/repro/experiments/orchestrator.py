"""Campaign orchestrator: launch, supervise, and collect shard workers.

PR 3 made campaigns shardable (``--shard-index/--shard-count`` +
``repro campaign merge``) but left the shards to be launched by hand or
by a cluster scheduler.  This module is the in-repo scheduler: one call
fans a :class:`~repro.experiments.campaign.CampaignSpec` out across N
supervised worker subprocesses and comes back with the merged,
aggregated result.

How it works:

- The task set is partitioned with the same content-key rule the manual
  path uses (:func:`repro.seeding.stable_shard` over
  :func:`~repro.experiments.campaign.task_key`), so an orchestrated run
  is *by construction* the same partition a hand-launched shard run
  would execute — and :func:`repro.seeding.shard_sizes` tells the
  supervisor up front how many task records each shard's stream must
  end up with (the completion criterion).
- Each shard worker is a ``repro campaign`` subprocess with
  ``--spec/--shard-index/--shard-count/--stream/--heartbeat``; it
  writes its own append-only JSONL stream.  Streams are the only
  coordination medium: there is no IPC to lose, and a worker death
  costs at most the task that was in flight.
- The supervisor polls worker liveness (``Popen.poll``), stream growth
  (:func:`~repro.experiments.stream.stream_task_count` — a cheap line
  count, no JSON decoding), and the heartbeat file the worker touches
  per finished task.  A dead or stalled worker's shard goes back on the
  queue and is relaunched on the next free slot; the replacement
  resumes from the shard's stream, so only the *remaining* tasks run.
  ``max_attempts`` failures of one shard abort the whole campaign with
  that shard's log tail.
- When every shard completes, the shard streams are merged
  (:func:`~repro.experiments.stream.merge_streams`) and aggregated
  (:func:`~repro.experiments.campaign.campaign_result_from_stream`) —
  bit-identical to an unsharded run of the same spec, which
  ``tests/experiments/test_equivalence.py`` asserts.

Two schedulers decide *which* tasks each worker runs:

- ``static`` (the PR 4 behaviour): every worker gets ``--shard-index``
  and owns its :func:`~repro.seeding.stable_shard` partition for the
  whole run; requeue granularity is a whole shard.
- ``stealing``: the supervisor keeps a lease board
  (:mod:`repro.experiments.scheduler`) and hands each worker its
  current task-key list through an assignment file (``repro campaign
  --tasks``).  When stream progress shows one shard lagging while
  another sits idle, unstarted leases move from the laggard to the
  idle worker — requeue granularity drops to individual tasks, which
  is what cuts tail latency on sweeps with wildly non-uniform per-cell
  cost (dense/epidemic cells cost orders of magnitude more than sparse
  forwarding cells).  Scheduling cannot change results: stolen runs
  merge to the same streams and aggregates as serial and static runs,
  asserted in ``tests/experiments/test_equivalence.py``.

Fault injection: ``chaos_kill_shard`` SIGKILLs one shard's first
worker once its stream holds ``chaos_kill_after`` records (CI's
chaos-smoke job proves the requeue path with it), and
``chaos_slow_shard``/``chaos_slow_s`` injects a per-task sleep into
one worker's environment — a simulated slow machine, which CI's
steal-smoke job uses to prove stealing beats static sharding on an
imbalanced run.

:func:`watch_view` is the read side: it unions the (possibly still
growing) shard streams in memory — ``quarantine=False`` throughout, so
a live stream's in-flight tail is never repaired away — and rebuilds
the partial per-cell aggregate with the honest ``runs`` column.
``repro campaign watch`` re-renders it on an interval.

Cross-machine campaigns (``hosts=[...]`` / ``--hosts``): the protocol
is already fully file-based, so distribution is a transport problem.
Each lease-board slot is backed by a
:class:`~repro.experiments.transport.Transport`; the supervisor ships
the spec out, pushes every assignment rewrite through the board's
``on_write`` hook, and mirrors each host's stream + heartbeat back
into the local run dir on every supervision tick (atomic replace, so
the same tail cursors — and ``repro campaign watch`` — run on the
mirrors unchanged).  Membership is elastic: specs appended to the run
dir's ``hosts.json`` join mid-campaign as fresh slots that fill by
stealing, and a vanished host (transport errors, or the
``chaos_kill_host`` injection) is declared lost — its slot is never
relaunched and its leases take the reclaim path onto live workers.
Equivalence is unchanged: N hosts merge bit-identical to serial.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.aggregate import cell_coverage
from repro.experiments.campaign import (
    CHAOS_TASK_SLEEP_ENV,
    CampaignResult,
    CampaignSpec,
    campaign_result_from_records,
    campaign_result_from_stream,
    campaign_spec_hash,
    task_key,
)
from repro.experiments.layout import RunLayout
from repro.experiments.scheduler import (
    SCHEDULERS,
    LeaseBoard,
    plan_steals,
)
from repro.experiments.transport import (
    Transport,
    TransportError,
    parse_host,
)
from repro.experiments.stream import (
    StreamError,
    StreamTailCounter,
    StreamTailKeys,
    load_stream,
    merge_streams,
    stream_task_count,
    union_records,
)
from repro.seeding import shard_sizes
from repro.telemetry.events import (
    HEARTBEAT_EVERY_S,
    EventLog,
    merge_events,
)

__all__ = [
    "OrchestratorError",
    "OrchestratorResult",
    "ShardStatus",
    "WatchView",
    "orchestrate_campaign",
    "render_watch",
    "watch_view",
]

#: Called with one human-readable line per supervision event (launch,
#: death, requeue, completion, merge).  The CLI prints these; tests and
#: CI grep them.
EventCallback = Callable[[str], None]


class _EventSink:
    """Fans supervision events to the live callback and the event log.

    Calling the sink with a bare string is the legacy path — a
    human-readable line for the ``on_event`` callback only (progress
    ticks, informational notes).  :meth:`emit` is the durable path: the
    same human line goes to the callback *and* a typed record goes to
    the run dir's ``events.jsonl``, so a finished run can be audited
    from files alone.  The human strings are frozen interface — tests
    and CI grep them — which is why the sink carries them unchanged
    instead of re-deriving them from the typed payloads.
    """

    def __init__(
        self, on_event: EventCallback | None, log: EventLog | None
    ) -> None:
        self._on_event = on_event
        self.log = log

    def __call__(self, message: str) -> None:
        if self._on_event is not None:
            self._on_event(message)

    def emit(
        self,
        type: str,
        message: str | None = None,
        *,
        shard: int | None = None,
        host: str | None = None,
        attempt: int | None = None,
        **payload: object,
    ) -> None:
        if message is not None and self._on_event is not None:
            self._on_event(message)
        if self.log is not None:
            self.log.emit(
                type,
                shard=shard,
                host=host or None,
                attempt=attempt,
                msg=message,
                **payload,
            )

    def heartbeat(self, shard: int, reason: str) -> None:
        """A throttled liveness-touch record with its reason."""
        if self.log is not None:
            self.log.emit_throttled(
                f"hb:{shard}:{reason}",
                HEARTBEAT_EVERY_S,
                "heartbeat",
                shard=shard,
                reason=reason,
            )


class OrchestratorError(RuntimeError):
    """The orchestrated campaign cannot complete (shard failed for good)."""


@dataclass
class ShardStatus:
    """One shard's supervision state, across all its launch attempts."""

    index: int
    stream: Path
    heartbeat: Path
    log: Path
    expected_tasks: int
    #: Launch attempts so far (1 on first launch).
    attempts: int = 0
    #: Times this shard's remaining tasks were requeued after a
    #: dead/stalled worker.
    requeues: int = 0
    #: Task records its stream held at the last poll.
    recorded: int = 0
    #: Leases the stealing scheduler reclaimed from this shard (moved
    #: to an idle worker) / granted to it (stolen from a laggard).
    stolen_from: int = 0
    stolen_to: int = 0
    #: ``pending`` | ``running`` | ``done`` | ``empty`` (owns no
    #: tasks) | ``lost`` (multi-host: the slot's host vanished; never
    #: relaunched, its leases reclaimed onto live workers).
    state: str = "pending"
    exit_codes: list[int] = field(default_factory=list)
    #: Multi-host runs: the backing transport's label (e.g.
    #: ``store:/tmp/h0``); empty for single-machine slots.
    host: str = ""


@dataclass
class OrchestratorResult:
    """A completed orchestrated campaign."""

    result: CampaignResult
    merged_stream: Path
    shards: list[ShardStatus]
    #: The scheduling policy the run used (``static`` or ``stealing``).
    scheduler: str = "static"
    #: Multi-host runs: one transport label per slot, in slot order
    #: (joined hosts included).  Empty for single-machine runs.
    hosts: tuple[str, ...] = ()

    @property
    def requeues(self) -> int:
        """Total dead/stalled-worker requeues across all shards."""
        return sum(status.requeues for status in self.shards)

    @property
    def steals(self) -> int:
        """Total leases moved between workers by the stealing scheduler."""
        return sum(status.stolen_from for status in self.shards)


def _worker_env() -> dict[str, str]:
    """The subprocess environment: inherit, plus make ``repro`` importable.

    The orchestrator may itself be running from a source checkout that
    is only importable through ``PYTHONPATH``; prepending this
    package's root keeps the worker command working in both installed
    and checkout layouts.
    """
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + os.pathsep + existing if existing
            else package_root
        )
    return env


def _worker_command(
    spec_file: Path,
    status: ShardStatus,
    shard_count: int,
    workers_per_shard: int,
    cache_dir: str | Path | None,
    tasks_file: Path | None = None,
) -> list[str]:
    """The shard-worker subprocess command.

    With ``tasks_file`` (the stealing scheduler), the worker runs the
    explicit task-key list in its assignment file; otherwise it owns
    its static ``--shard-index`` partition.
    """
    command = [
        sys.executable,
        "-m",
        "repro.cli",
        "campaign",
        "--spec",
        str(spec_file),
    ]
    if tasks_file is not None:
        command += ["--tasks", str(tasks_file)]
    else:
        command += [
            "--shard-index",
            str(status.index),
            "--shard-count",
            str(shard_count),
        ]
    command += [
        "--stream",
        str(status.stream),
        "--heartbeat",
        str(status.heartbeat),
        "--events",
        str(
            status.stream.parent
            / RunLayout.shard_events_name(status.index)
        ),
        "--workers",
        str(workers_per_shard),
        "--quiet",
    ]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    return command


def _host_worker_command(
    transport: Transport,
    index: int,
    workers_per_shard: int,
    cache_dir: str | Path | None,
) -> list[str]:
    """The worker command for a transport-backed slot.

    Same protocol as the local stealing command, but every path is the
    *remote* layout — the same artifact names resolved under the
    transport's root — and the interpreter is whatever invokes the
    ``repro`` CLI on that host.  ``cache_dir`` is interpreted on the
    worker's host (a per-host cache, which is the only kind that makes
    sense without a shared filesystem).
    """
    remote = RunLayout(transport.root)
    command = [
        *transport.command_head(),
        "campaign",
        "--spec",
        str(remote.spec),
        "--tasks",
        str(remote.assignment(index)),
        "--stream",
        str(remote.stream(index)),
        "--heartbeat",
        str(remote.heartbeat(index)),
        "--events",
        str(remote.shard_events(index)),
        "--workers",
        str(workers_per_shard),
        "--quiet",
    ]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    return command


def _local_launch(
    command: Sequence[str], stdout, env: dict[str, str] | None
) -> subprocess.Popen:
    """Start a worker on this machine (the non-transport launcher)."""
    return subprocess.Popen(
        list(command),
        stdout=stdout,
        stderr=subprocess.STDOUT,
        env=env,
        # Own session/process group, so killing a worker also reaps
        # its simulation pool children (see _Worker.kill).
        start_new_session=True,
    )


def _spawn_worker(
    command: Sequence[str],
    log_path: Path,
    attempt: int,
    env: dict[str, str] | None,
    launcher: Callable[
        [Sequence[str], object, dict[str, str] | None], subprocess.Popen
    ] = _local_launch,
) -> tuple[subprocess.Popen, object]:
    """Open the worker's log and start its process, leak-free.

    The log handle must exist before the process (the attempt banner
    precedes worker output, and the process inherits the handle as
    stdout), which means a launch failure happens with the handle
    already open — so it is closed on *any* raise instead of lingering
    until garbage collection.
    """
    handle = open(log_path, "a", encoding="utf-8")
    try:
        handle.write(f"--- attempt {attempt} ---\n")
        handle.flush()
        process = launcher(command, handle, env)
    except BaseException:
        handle.close()
        raise
    return process, handle


def _worker_environment(
    status: ShardStatus,
    chaos_slow_shard: int | None,
    chaos_slow_s: float,
) -> dict[str, str]:
    """The worker env, with the chaos per-task sleep injected if this
    shard is the designated slow one."""
    env = _worker_env()
    if chaos_slow_shard == status.index and chaos_slow_s > 0:
        env[CHAOS_TASK_SLEEP_ENV] = str(chaos_slow_s)
    return env


def _tail(path: Path, lines: int = 15) -> str:
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return "<no worker log>"
    return "\n".join(text.splitlines()[-lines:])


@dataclass
class _Worker:
    """A live shard worker subprocess plus its log handle."""

    status: ShardStatus
    process: subprocess.Popen
    log_handle: object
    launched_at: float

    def kill(self) -> None:
        """SIGKILL the worker and everything it spawned.

        Workers launch in their own session (``start_new_session``), so
        killing the process *group* also reaps the worker's
        ``ProcessPoolExecutor`` children — killing only the parent
        would orphan them mid-simulation, blocked forever on a call
        queue nobody will feed again.
        """
        try:
            os.killpg(self.process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            self.process.kill()
        self.process.wait(timeout=30)

    def close_log(self) -> None:
        try:
            self.log_handle.close()
        except OSError:  # pragma: no cover - close of an append handle
            pass


def orchestrate_campaign(
    spec: CampaignSpec,
    shards: int | None = None,
    run_dir: str | Path | None = None,
    workers_per_shard: int = 1,
    cache_dir: str | Path | None = None,
    poll_interval: float = 0.3,
    stall_timeout: float = 600.0,
    max_attempts: int = 3,
    max_concurrent: int | None = None,
    on_event: EventCallback | None = None,
    scheduler: str = "static",
    lease_batch: int | None = None,
    steal_threshold: int = 2,
    chaos_kill_shard: int | None = None,
    chaos_kill_after: int = 1,
    chaos_slow_shard: int | None = None,
    chaos_slow_s: float = 0.25,
    hosts: Sequence[str | Transport] | None = None,
    chaos_kill_host: int | None = None,
) -> OrchestratorResult:
    """Fan a campaign out over supervised shard workers and collect it.

    ``run_dir`` holds everything: the spec document handed to workers
    (``spec.json``), one stream + heartbeat + log per shard
    (``shard<i>.jsonl`` / ``.heartbeat`` / ``.log``), and the final
    merged stream (``campaign.jsonl``).  Re-running with the same
    ``run_dir`` resumes: each relaunched worker skips the tasks its
    shard stream already records, so a killed orchestrator costs at
    most the tasks that were in flight.  Streams are the resume
    medium; pass ``cache_dir`` only for cross-campaign task reuse.

    A worker that dies (any nonzero exit) or stalls (no heartbeat
    touch for ``stall_timeout`` seconds — workers touch per finished
    task, so set this above your slowest single task) is killed and
    its shard requeued onto the next free slot, up to ``max_attempts``
    launches per shard; after that the campaign aborts with the
    shard's log tail.  ``max_concurrent`` caps simultaneous workers
    (default: all ``shards`` at once).

    ``scheduler`` picks the partitioning policy: ``"static"`` fixes
    each worker's task set at launch (the hash partition), while
    ``"stealing"`` runs workers off per-shard assignment files and
    rebalances — when a worker goes idle and another still holds at
    least ``steal_threshold`` unstarted leases beyond its in-flight
    window, the supervisor moves half of them over.  ``lease_batch``
    is the batch size workers take between assignment-file re-reads
    (default: ``workers_per_shard``, so one batch fills the worker's
    pool); it is also the keep window a steal never touches.  Results
    are identical under either scheduler — only the wall-clock shape
    changes.

    ``chaos_kill_shard``/``chaos_kill_after`` are fault injection for
    tests and CI: SIGKILL that shard's *first* worker once its stream
    holds ``chaos_kill_after`` records, then let supervision recover.
    ``chaos_kill_after=0`` kills at launch — deterministic, where the
    mid-run variant races the worker's own completion (if the worker
    wins, a ``chaos: ... finished before the injection`` event says so).
    ``chaos_slow_shard``/``chaos_slow_s`` injects a per-task sleep of
    ``chaos_slow_s`` seconds into that shard's workers (all attempts —
    it simulates a slow *machine*, not a flaky process), the imbalance
    the steal-smoke job proves the stealing scheduler recovers from.

    ``hosts`` switches to cross-machine mode: one lease-board slot per
    entry, each backed by a transport (a
    :class:`~repro.experiments.transport.Transport` instance, or a
    spec string for :func:`~repro.experiments.transport.parse_host` —
    ``user@h1``, ``h1:/data/run``, ``store:/shared/h1``,
    ``local:/mnt/nfs/h1``).  Pass *either* ``hosts`` or ``shards``,
    never both; hosts mode always runs the stealing scheduler (a
    static partition cannot rebalance around a vanished machine), and
    the per-shard chaos knobs give way to ``chaos_kill_host``: SIGKILL
    that host's worker once its stream holds ``chaos_kill_after``
    records *and declare the host vanished* — the slot is never
    relaunched and its leases reclaim onto live workers, which is the
    path a genuinely unreachable host (repeated transport errors)
    takes too.  Mid-campaign joins are read from ``hosts.json`` in the
    run dir (``{"join": ["store:/tmp/h3", ...]}``, append-only).

    Args:
        spec: the validated campaign to fan out.
        shards: local shard-worker count (exactly one of ``shards`` /
            ``hosts``).
        run_dir: run directory (default: ``orchestrated-<name>``).
        workers_per_shard: process-pool size inside each worker.
        cache_dir: opt-in cross-campaign task cache shared by workers.
        poll_interval / stall_timeout / max_attempts / max_concurrent:
            supervision knobs (see above).
        on_event: callback for supervision events (launch, requeue,
            steal, ...); the CLI prints them, telemetry records them.
        scheduler: ``"static"`` or ``"stealing"``.
        lease_batch / steal_threshold: stealing-scheduler tuning.
        chaos_*: fault injection for tests and CI.
        hosts: transports (or spec strings) for cross-machine mode.

    Returns:
        An :class:`OrchestratorResult`: the aggregated
        :class:`~repro.experiments.campaign.CampaignResult`, the merged
        stream path, and per-shard launch/steal statistics.

    Raises:
        ValueError: conflicting arguments (``hosts`` with ``shards``,
            per-shard chaos in hosts mode, unknown ``scheduler``).
        OrchestratorError: a shard exhausted ``max_attempts``, a
            transport failed permanently, or the merged stream does not
            cover the campaign (the CLI maps this to exit code 3).
    """
    transports: dict[int, Transport] | None = None
    if hosts is not None:
        if shards is not None:
            raise ValueError("pass hosts or shards, not both")
        if len(hosts) < 1:
            raise ValueError("hosts must name at least one host")
        if chaos_kill_shard is not None or chaos_slow_shard is not None:
            raise ValueError(
                "per-shard chaos injection (chaos_kill_shard/"
                "chaos_slow_shard) is single-machine only; use "
                "chaos_kill_host in hosts mode"
            )
        if chaos_kill_host is not None and not 0 <= chaos_kill_host < len(
            hosts
        ):
            raise ValueError(
                f"chaos_kill_host must be in [0, {len(hosts)}), got "
                f"{chaos_kill_host}"
            )
        transports = {
            index: host if isinstance(host, Transport)
            else parse_host(str(host))
            for index, host in enumerate(hosts)
        }
        labels = [transport.describe() for transport in transports.values()]
        for label in labels:
            if labels.count(label) > 1:
                raise ValueError(f"host {label} listed twice")
        shards = len(hosts)
        # A static partition cannot rebalance around a vanished
        # machine; hosts mode is lease-board scheduling, always.
        scheduler = "stealing"
        if max_concurrent is None:
            # Elastic joins must be launchable the tick they register.
            max_concurrent = 10**9
    else:
        if shards is None:
            raise ValueError("shards is required without hosts")
        if chaos_kill_host is not None:
            raise ValueError("chaos_kill_host needs hosts mode")
    if run_dir is None:
        raise ValueError("run_dir is required")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if workers_per_shard < 1:
        raise ValueError("workers_per_shard must be >= 1")
    if max_attempts < 1:
        raise ValueError("max_attempts must be >= 1")
    if poll_interval <= 0:
        raise ValueError("poll_interval must be positive")
    if stall_timeout <= 0:
        raise ValueError("stall_timeout must be positive")
    if max_concurrent is None:
        max_concurrent = shards
    if max_concurrent < 1:
        raise ValueError("max_concurrent must be >= 1")
    if scheduler not in SCHEDULERS:
        raise ValueError(
            f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
        )
    if lease_batch is not None and lease_batch < 1:
        raise ValueError("lease_batch must be >= 1")
    if steal_threshold < 1:
        raise ValueError("steal_threshold must be >= 1")
    if chaos_kill_shard is not None and not 0 <= chaos_kill_shard < shards:
        raise ValueError(
            f"chaos_kill_shard must be in [0, {shards}), got "
            f"{chaos_kill_shard}"
        )
    if chaos_slow_shard is not None and not 0 <= chaos_slow_shard < shards:
        raise ValueError(
            f"chaos_slow_shard must be in [0, {shards}), got "
            f"{chaos_slow_shard}"
        )
    if chaos_slow_shard is not None and chaos_slow_s <= 0:
        raise ValueError("chaos_slow_s must be positive")

    layout = RunLayout(run_dir).ensure()
    event = _EventSink(
        on_event, EventLog(layout.events, origin="supervisor").ensure()
    )
    run_path = layout.root
    spec_hash = campaign_spec_hash(spec)
    spec_file = layout.spec
    spec_file.write_text(
        json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )

    # The same expansion + partition the workers will compute, done
    # once up front: per-shard totals are the completion criterion.
    keys = [
        task_key(task)
        for _, cell_spec in spec.cell_specs()
        for task in cell_spec.tasks()
    ]
    sizes = shard_sizes(keys, shards)
    total_tasks = len(keys)
    event.emit(
        "run_start",
        shards=shards,
        scheduler=scheduler,
        total_tasks=total_tasks,
        hosts=(
            [transport.describe() for transport in transports.values()]
            if transports is not None
            else []
        ),
    )
    adversaries = _adversary_specs(spec)
    if adversaries:
        # Adversarial runs are easy to mistake for broken ones (delivery
        # collapses by design), so the injection is a first-class event
        # a post-mortem reads before blaming the protocol or the fleet.
        event.emit("adversary", specs=adversaries)

    statuses = [
        ShardStatus(
            index=index,
            stream=layout.stream(index),
            heartbeat=layout.heartbeat(index),
            log=layout.log(index),
            expected_tasks=sizes[index],
            host=(
                transports[index].describe() if transports is not None
                else ""
            ),
        )
        for index in range(shards)
    ]

    if scheduler == "stealing":
        return _orchestrate_stealing(
            spec_file=spec_file,
            spec_hash=spec_hash,
            layout=layout,
            statuses=statuses,
            keys=keys,
            shards=shards,
            workers_per_shard=workers_per_shard,
            cache_dir=cache_dir,
            poll_interval=poll_interval,
            stall_timeout=stall_timeout,
            max_attempts=max_attempts,
            max_concurrent=max_concurrent,
            event=event,
            lease_batch=lease_batch,
            steal_threshold=steal_threshold,
            chaos_kill_shard=chaos_kill_shard,
            chaos_kill_after=chaos_kill_after,
            chaos_slow_shard=chaos_slow_shard,
            chaos_slow_s=chaos_slow_s,
            transports=transports,
            chaos_kill_host=chaos_kill_host,
        )

    for status in statuses:
        if status.expected_tasks == 0:
            # A hash partition can leave small campaigns with empty
            # shards; launching a worker for zero tasks is noise.
            status.state = "empty"
            event(f"shard {status.index}: no tasks in this partition")
        elif status.stream.exists() and status.stream.stat().st_size > 0:
            # Fail a mismatched run_dir reuse here, not worker by
            # worker: every stream in the dir must belong to this spec.
            load_stream(status.stream, expected_spec_hash=spec_hash,
                        quarantine=False)
            status.recorded = stream_task_count(status.stream)
            if status.recorded:
                event(
                    f"shard {status.index}: resuming, stream already "
                    f"holds {status.recorded}/{status.expected_tasks} "
                    f"task(s)"
                )

    queue: deque[ShardStatus] = deque(
        status for status in statuses if status.state == "pending"
    )
    running: list[_Worker] = []
    # Incremental per-shard record counters: polling happens several
    # times a second for the whole campaign, so each tick must read
    # only the stream bytes appended since the last one.
    counters = {
        status.index: StreamTailCounter(status.stream)
        for status in statuses
    }
    chaos_pending = chaos_kill_shard is not None
    last_progress = -1

    def launch(status: ShardStatus) -> None:
        nonlocal chaos_pending
        status.attempts += 1
        status.state = "running"
        # Arm the stall clock at launch: a worker that wedges before
        # its first task still trips the timeout.
        status.heartbeat.touch()
        process, handle = _spawn_worker(
            _worker_command(
                spec_file, status, shards, workers_per_shard, cache_dir
            ),
            status.log,
            status.attempts,
            _worker_environment(status, chaos_slow_shard, chaos_slow_s),
        )
        running.append(
            _Worker(status, process, handle, time.monotonic())
        )
        event.emit(
            "launch",
            f"launched shard {status.index} attempt {status.attempts} "
            f"(pid {process.pid}, "
            f"{status.expected_tasks - status.recorded} task(s) to run)",
            shard=status.index,
            attempt=status.attempts,
            pid=process.pid,
            to_run=status.expected_tasks - status.recorded,
        )
        if (
            chaos_pending
            and status.index == chaos_kill_shard
            and status.attempts == 1
            and chaos_kill_after <= status.recorded
        ):
            # chaos_kill_after == 0 (or a resumed stream already past
            # the threshold): kill at launch, deterministically — the
            # mid-run variant below races the worker's own completion.
            process.kill()
            chaos_pending = False
            event.emit(
                "chaos",
                f"chaos: SIGKILL shard {status.index} worker "
                f"(pid {process.pid}) at launch",
                shard=status.index,
                attempt=status.attempts,
                action="kill",
                fired=True,
            )

    def abort(status: ShardStatus, why: str) -> None:
        for worker in running:
            worker.kill()
            worker.close_log()
        running.clear()
        raise OrchestratorError(
            f"shard {status.index} {why} after {status.attempts} launch "
            f"attempt(s) (exit codes {status.exit_codes}); giving up.\n"
            f"--- tail of {status.log} ---\n{_tail(status.log)}"
        )

    try:
        while queue or running:
            while queue and len(running) < max_concurrent:
                launch(queue.popleft())
            time.sleep(poll_interval)
            for worker in list(running):
                status = worker.status
                status.recorded = counters[status.index].count()
                return_code = worker.process.poll()
                if (
                    chaos_pending
                    and status.index == chaos_kill_shard
                    and status.attempts == 1
                    and status.recorded >= chaos_kill_after
                    and return_code is None
                ):
                    worker.kill()
                    chaos_pending = False
                    event.emit(
                        "chaos",
                        f"chaos: SIGKILL shard {status.index} worker "
                        f"(pid {worker.process.pid}) after "
                        f"{status.recorded} recorded task(s)",
                        shard=status.index,
                        attempt=status.attempts,
                        action="kill",
                        fired=True,
                    )
                    return_code = worker.process.poll()
                if return_code is None:
                    try:
                        heartbeat_age = (
                            time.time() - status.heartbeat.stat().st_mtime
                        )
                    except OSError:
                        heartbeat_age = time.monotonic() - worker.launched_at
                    if heartbeat_age > stall_timeout:
                        event.emit(
                            "stall",
                            f"shard {status.index} stalled (no heartbeat "
                            f"for {heartbeat_age:.0f}s); killing worker "
                            f"pid {worker.process.pid}",
                            shard=status.index,
                            attempt=status.attempts,
                            heartbeat_age_s=round(heartbeat_age, 3),
                        )
                        worker.kill()
                        return_code = worker.process.poll()
                if return_code is None:
                    continue
                if (
                    chaos_pending
                    and status.index == chaos_kill_shard
                    and status.attempts == 1
                ):
                    # The target outran the injection (all its tasks
                    # finished between two polls).  Say so loudly: a
                    # chaos test that never killed anything proves
                    # nothing, and CI asserts on these event lines.
                    chaos_pending = False
                    event.emit(
                        "chaos",
                        f"chaos: shard {status.index} worker finished "
                        f"before the injection could fire; nothing killed",
                        shard=status.index,
                        attempt=status.attempts,
                        action="kill",
                        fired=False,
                    )
                running.remove(worker)
                worker.close_log()
                status.exit_codes.append(return_code)
                status.recorded = counters[status.index].count()
                if (
                    return_code == 0
                    and status.recorded >= status.expected_tasks
                ):
                    status.state = "done"
                    event.emit(
                        "exit",
                        f"shard {status.index} done "
                        f"({status.recorded}/{status.expected_tasks} "
                        f"tasks)",
                        shard=status.index,
                        attempt=status.attempts,
                        exit_code=return_code,
                        outcome="done",
                        recorded=status.recorded,
                    )
                    continue
                if status.attempts >= max_attempts:
                    abort(
                        status,
                        "kept failing" if return_code != 0
                        else "exits cleanly but its stream stays "
                             "incomplete",
                    )
                status.requeues += 1
                status.state = "pending"
                queue.append(status)
                remaining = status.expected_tasks - status.recorded
                cause = (
                    f"worker died (exit {return_code})"
                    if return_code != 0
                    else "worker exited with an incomplete stream"
                )
                event.emit(
                    "requeue",
                    f"shard {status.index} {cause} with "
                    f"{status.recorded}/{status.expected_tasks} task(s) "
                    f"recorded; requeuing {remaining} remaining task(s)",
                    shard=status.index,
                    attempt=status.attempts,
                    exit_code=return_code,
                    recorded=status.recorded,
                    remaining=remaining,
                )
            progress = sum(status.recorded for status in statuses)
            if progress != last_progress:
                event(f"progress: {progress}/{total_tasks} tasks recorded")
                last_progress = progress
    finally:
        # Interrupt/abort cleanup: take the whole worker process
        # groups down, or their pool children would outlive us.
        for worker in running:
            worker.kill()
            worker.close_log()

    done_streams = [
        status.stream for status in statuses if status.state == "done"
    ]
    return _collect(
        layout, done_streams, total_tasks, statuses, event, "static"
    )


def _adversary_specs(spec: CampaignSpec) -> list[str]:
    """Every adversary spec the campaign runs, as canonical strings.

    Covers both spellings — a compromised base scenario and an
    ``adversary`` grid axis — and skips honest cells (``None``).
    """
    specs: list[str] = []
    if spec.base.adversary is not None:
        specs.append(str(spec.base.adversary))
    for name, values in spec.grid:
        if name == "adversary":
            specs.extend(str(v) for v in values if v is not None)
    return specs


def _emit_shard_summaries(
    statuses: Sequence[ShardStatus], event: "_EventSink"
) -> None:
    """One final per-shard accounting line each, before the merge.

    Requeues used to be the only rebalancing that surfaced; CI
    assertions and ``watch`` users also need attempt counts and steal
    traffic without grepping worker logs.
    """
    for status in statuses:
        steals = ""
        if status.stolen_from or status.stolen_to:
            steals = (
                f", {status.stolen_from} lease(s) stolen away, "
                f"{status.stolen_to} stolen in"
            )
        event.emit(
            "shard_summary",
            f"summary: shard {status.index}: {status.attempts} "
            f"attempt(s), {status.requeues} requeue(s){steals}, "
            f"{status.recorded} task record(s) in stream",
            shard=status.index,
            host=status.host,
            attempt=status.attempts or None,
            requeues=status.requeues,
            stolen_from=status.stolen_from,
            stolen_to=status.stolen_to,
            recorded=status.recorded,
            state=status.state,
        )


def _collect(
    layout: RunLayout,
    streams: Sequence[Path],
    total_tasks: int,
    statuses: list[ShardStatus],
    event: "_EventSink",
    scheduler: str,
    hosts: Sequence[str] = (),
) -> OrchestratorResult:
    """The shared endgame: summaries, merge, completeness check."""
    _emit_shard_summaries(statuses, event)
    merged = layout.merged_stream
    info = merge_streams(merged, streams)
    if len(info.records) != total_tasks:
        raise OrchestratorError(
            f"merged stream holds {len(info.records)} records, expected "
            f"{total_tasks}; shard streams are incomplete or damaged "
            f"({info.quarantined} undecodable line(s) skipped)"
        )
    event.emit(
        "run_end",
        f"merged {len(streams)} shard stream(s) -> {merged} "
        f"({len(info.records)} task records)",
        outcome="complete",
        streams=len(streams),
        records=len(info.records),
        requeues=sum(status.requeues for status in statuses),
        steals=sum(status.stolen_from for status in statuses),
    )
    # Fold every worker-side event file into the supervisor's log so a
    # finished run dir holds one mergeable history.  Line-level dedup in
    # merge_events makes this idempotent across resumes, and worker
    # files may simply not exist (a worker killed before its first
    # emit), so only the supervisor log is required.
    shard_event_files = [
        layout.shard_events(status.index) for status in statuses
    ]
    merge_events(
        layout.events,
        [layout.events, *shard_event_files],
    )
    return OrchestratorResult(
        result=campaign_result_from_stream(merged),
        merged_stream=merged,
        shards=statuses,
        scheduler=scheduler,
        hosts=tuple(hosts),
    )


#: Consecutive transport failures against one host before its slot is
#: declared lost and its leases reclaimed (one flaky tick is noise; a
#: streak means the machine is gone).
VANISH_AFTER = 3


def _orchestrate_stealing(
    spec_file: Path,
    spec_hash: str,
    layout: RunLayout,
    statuses: list[ShardStatus],
    keys: list[str],
    shards: int,
    workers_per_shard: int,
    cache_dir: str | Path | None,
    poll_interval: float,
    stall_timeout: float,
    max_attempts: int,
    max_concurrent: int,
    event: "_EventSink",
    lease_batch: int | None,
    steal_threshold: int,
    chaos_kill_shard: int | None,
    chaos_kill_after: int,
    chaos_slow_shard: int | None,
    chaos_slow_s: float,
    transports: dict[int, Transport] | None = None,
    chaos_kill_host: int | None = None,
) -> OrchestratorResult:
    """The stealing scheduler's supervision loop.

    Structure mirrors the static loop (launch, poll, stall/chaos
    handling, requeue, merge), with three differences: workers run off
    assignment files instead of shard indices, per-shard completion is
    "every lease this worker still holds is recorded *somewhere*"
    instead of a fixed stream count, and an extra rebalancing step
    moves unstarted leases from laggards to idle workers each tick.
    Every shard launches a worker — even one whose initial partition is
    empty is a steal target.

    With ``transports`` (hosts mode) each slot's worker runs against a
    remote root: the spec and every assignment rewrite are pushed out
    through the slot's transport, and each tick pulls the host's
    stream + heartbeat back into the local layout (atomic replace,
    mtime preserved), so everything below the mirror line — the tail
    cursors, stall detection, completion accounting, the merge — runs
    on local files exactly as in the single-machine case.  Three
    things are genuinely new: joins (specs appended to ``hosts.json``
    become fresh slots mid-run), losses (a host that keeps failing its
    transport, or the ``chaos_kill_host`` injection, is declared
    ``lost`` — never relaunched, leases reclaimed onto live workers),
    and launch, which goes through the transport.
    """
    run_path = layout.root
    hosts_mode = transports is not None
    lost: set[int] = set()
    failures: dict[int, int] = {status.index: 0 for status in statuses}

    def push_assignment(worker: int, path: Path) -> None:
        """Board ``on_write`` hook: mirror the rewrite to the host.

        A push to a lost host is skipped (its leases are reclaimed or
        about to be); a *failing* push feeds the same strike counter
        the mirror pulls use, so an unreachable host converges to lost
        no matter which direction noticed first.
        """
        transport = transports.get(worker)
        if transport is None or worker in lost:
            return
        try:
            transport.push(path, RunLayout.assignment_name(worker))
            failures[worker] = 0
        except TransportError as exc:
            failures[worker] = failures.get(worker, 0) + 1
            event(
                f"host {transport.describe()} (shard {worker}): "
                f"assignment push failed ({failures[worker]}/"
                f"{VANISH_AFTER}): {exc}"
            )

    if hosts_mode:
        for index, transport in sorted(transports.items()):
            transport.push(spec_file, RunLayout.spec_name())
            event.emit(
                "host_join",
                f"host {transport.describe()}: registered as shard "
                f"{index}",
                shard=index,
                host=transport.describe(),
                joined_mid_run=False,
            )
            # Resume support: mirror whatever stream the host already
            # holds before the board is built, so its records count as
            # done exactly like a local resumed run dir's would.
            transport.pull(
                RunLayout.stream_name(index), layout.stream(index)
            )

    total_tasks = len(keys)
    # Resume: anything any existing stream records is done for good;
    # the lease board never hands those keys out again.  Validating
    # every stream against the spec hash up front fails a mismatched
    # run_dir reuse here, not worker by worker.
    pre_done: set[str] = set()
    seen: dict[int, set[str]] = {status.index: set() for status in statuses}
    for status in statuses:
        if status.stream.exists() and status.stream.stat().st_size > 0:
            info = load_stream(
                status.stream, expected_spec_hash=spec_hash,
                quarantine=False,
            )
            stream_keys = info.keys()
            pre_done |= stream_keys
            seen[status.index] = stream_keys
            status.recorded = len(info.records)
            if status.recorded:
                event(
                    f"shard {status.index}: resuming, stream already "
                    f"holds {status.recorded} task record(s)"
                )

    batch = lease_batch if lease_batch is not None else workers_per_shard
    board = LeaseBoard(
        keys,
        workers=shards,
        run_dir=run_path,
        spec_hash=spec_hash,
        batch=batch,
        done=pre_done,
        on_write=push_assignment if hosts_mode else None,
    )
    for status in statuses:
        event(
            f"shard {status.index}: leased "
            f"{len(board.remaining(status.index))} task(s) initially"
        )

    queue: deque[ShardStatus] = deque(statuses)
    running: list[_Worker] = []
    tailers = {
        status.index: StreamTailKeys(status.stream) for status in statuses
    }
    chaos_pending = chaos_kill_shard is not None
    chaos_host_pending = chaos_kill_host is not None
    joined = 0
    closed = False
    last_progress = -1

    def ingest(status: ShardStatus) -> None:
        """Fold a stream's newly appended records into the board."""
        for key in tailers[status.index].poll():
            seen[status.index].add(key)
            board.record_done(key)
        status.recorded = len(seen[status.index])

    def declare_lost(status: ShardStatus, why: str) -> None:
        """A host vanished: retire its slot, leave its leases to reclaim.

        The slot is never relaunched (unlike a dead *worker*, whose
        machine is still there) — its undone leases stay on the board
        until the reclaim step re-leases them to live idle workers,
        which is the same path a queued workerless slot takes.  Counts
        as a requeue: the work is requeued, just not onto this slot.
        """
        for worker in list(running):
            if worker.status is status:
                running.remove(worker)
                worker.kill()
                worker.close_log()
                if worker.process.returncode is not None:
                    status.exit_codes.append(worker.process.returncode)
        if status in queue:
            queue.remove(status)
        status.state = "lost"
        status.requeues += 1
        lost.add(status.index)
        event.emit(
            "host_lost",
            f"host {status.host or status.index} (shard {status.index}) "
            f"vanished ({why}); requeuing its "
            f"{len(board.remaining(status.index))} remaining lease(s) "
            f"for reclaim by live workers",
            shard=status.index,
            host=status.host,
            attempt=status.attempts or None,
            why=why,
            remaining=len(board.remaining(status.index)),
        )

    def poll_joins() -> None:
        """Fold new ``hosts.json`` entries in as fresh board slots.

        The file is append-only (``{"join": [spec, ...]}``); entries
        are consumed by position, so re-reads are idempotent and a
        malformed tail entry cannot double-register earlier hosts.  A
        bad spec or an unreachable host burns its entry with an event
        instead of aborting a campaign that was running fine.
        """
        nonlocal joined
        try:
            document = json.loads(
                layout.hosts_file.read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return
        entries = (
            document.get("join") if isinstance(document, dict) else None
        )
        if not isinstance(entries, list):
            return
        for entry in entries[joined:]:
            joined += 1
            try:
                transport = parse_host(str(entry))
            except ValueError as exc:
                event(f"join: bad host spec {entry!r}: {exc}")
                continue
            if any(
                transport.describe() == other.describe()
                for other in transports.values()
            ):
                event(
                    f"join: host {transport.describe()} is already a "
                    f"slot; ignoring"
                )
                continue
            index = board.workers
            transports[index] = transport
            try:
                transport.push(spec_file, RunLayout.spec_name())
            except TransportError as exc:
                del transports[index]
                event(
                    f"join: host {transport.describe()} unreachable "
                    f"({exc}); not registered"
                )
                continue
            failures[index] = 0
            seen[index] = set()
            board.add_worker()
            status = ShardStatus(
                index=index,
                stream=layout.stream(index),
                heartbeat=layout.heartbeat(index),
                log=layout.log(index),
                expected_tasks=0,
                host=transport.describe(),
            )
            statuses.append(status)
            tailers[index] = StreamTailKeys(status.stream)
            queue.append(status)
            event.emit(
                "host_join",
                f"join: host {transport.describe()} registered as shard "
                f"{index}; leases will rebalance onto it",
                shard=index,
                host=transport.describe(),
                joined_mid_run=True,
            )

    def launch(status: ShardStatus) -> None:
        nonlocal chaos_pending, chaos_host_pending
        transport = transports[status.index] if hosts_mode else None
        status.attempts += 1
        status.state = "running"
        # Arm the stall clock at launch: a worker that wedges before
        # its first task still trips the timeout.  (In hosts mode the
        # local mirror is the clock; remote mtimes overwrite it only
        # once the host's heartbeat exists.)
        status.heartbeat.touch()
        if hosts_mode:
            command = _host_worker_command(
                transport, status.index, workers_per_shard, cache_dir
            )
            env = _worker_env() if transport.runs_locally else None
            launcher = transport.launch
        else:
            command = _worker_command(
                spec_file, status, shards, workers_per_shard, cache_dir,
                tasks_file=board.path(status.index),
            )
            env = _worker_environment(
                status, chaos_slow_shard, chaos_slow_s
            )
            launcher = _local_launch
        process, handle = _spawn_worker(
            command, status.log, status.attempts, env, launcher
        )
        running.append(_Worker(status, process, handle, time.monotonic()))
        host_note = f" on {status.host}" if status.host else ""
        event.emit(
            "launch",
            f"launched shard {status.index} attempt {status.attempts} "
            f"(pid {process.pid}, "
            f"{len(board.remaining(status.index))} leased task(s))"
            f"{host_note}",
            shard=status.index,
            host=status.host,
            attempt=status.attempts,
            pid=process.pid,
            leased=len(board.remaining(status.index)),
        )
        if (
            chaos_pending
            and status.index == chaos_kill_shard
            and status.attempts == 1
            and chaos_kill_after <= len(seen[status.index])
        ):
            process.kill()
            chaos_pending = False
            event.emit(
                "chaos",
                f"chaos: SIGKILL shard {status.index} worker "
                f"(pid {process.pid}) at launch",
                shard=status.index,
                attempt=status.attempts,
                action="kill",
                fired=True,
            )
        if (
            chaos_host_pending
            and status.index == chaos_kill_host
            and status.attempts == 1
            and chaos_kill_after <= len(seen[status.index])
        ):
            chaos_host_pending = False
            event.emit(
                "chaos",
                f"chaos: SIGKILL shard {status.index} worker "
                f"(pid {process.pid}) at launch; its host vanishes",
                shard=status.index,
                host=status.host,
                attempt=status.attempts,
                action="kill_host",
                fired=True,
            )
            declare_lost(status, "chaos host kill")

    def abort(status: ShardStatus, why: str) -> None:
        for worker in running:
            worker.kill()
            worker.close_log()
        running.clear()
        raise OrchestratorError(
            f"shard {status.index} {why} after {status.attempts} launch "
            f"attempt(s) (exit codes {status.exit_codes}); giving up.\n"
            f"--- tail of {status.log} ---\n{_tail(status.log)}"
        )

    try:
        while True:
            if board.complete and not closed:
                closed = True
                board.close_all()
                # Slots still waiting to (re)launch have nothing left
                # to do — their leases finished elsewhere.
                for status in queue:
                    status.state = "done"
                queue.clear()
                event(
                    f"all {total_tasks} task(s) recorded; closing "
                    f"assignments so idle workers exit"
                )
            if not closed:
                while queue and len(running) < max_concurrent:
                    launch(queue.popleft())
            if not running and not queue:
                if closed:
                    break
                # Defensive: every worker done/aborted yet tasks remain.
                missing = total_tasks - len(board.done)
                raise OrchestratorError(
                    f"no workers left but {missing} task(s) never "
                    f"recorded; shard streams are incomplete"
                )
            time.sleep(poll_interval)
            if hosts_mode:
                poll_joins()
                # Beacon + mirror tick, one transport round per live
                # slot: freshen the remote assignment's mtime (the
                # idle worker's supervisor-liveness signal), then pull
                # the host's stream and heartbeat into the local
                # layout — atomic replace with the remote mtime kept,
                # so the tail cursors and the stall clock below read
                # the mirrors as if the worker were local.
                for status in list(statuses):
                    if status.index in lost or status.state == "done":
                        continue
                    transport = transports[status.index]
                    try:
                        transport.touch(
                            RunLayout.assignment_name(status.index)
                        )
                        event.heartbeat(status.index, "supervisor-beacon")
                        transport.pull(
                            RunLayout.stream_name(status.index),
                            status.stream,
                        )
                        transport.pull(
                            RunLayout.heartbeat_name(status.index),
                            status.heartbeat,
                        )
                        # Mirror the worker's own event file so the
                        # endgame merge sees every host's history (pull
                        # is a no-op until the worker first emits).
                        transport.pull(
                            RunLayout.shard_events_name(status.index),
                            layout.shard_events(status.index),
                        )
                        failures[status.index] = 0
                    except TransportError as exc:
                        failures[status.index] += 1
                        if failures[status.index] >= VANISH_AFTER:
                            declare_lost(
                                status,
                                f"{failures[status.index]} consecutive "
                                f"transport failures; last: {exc}",
                            )
            else:
                # Liveness beacon: freshen every assignment file's
                # mtime so an idle worker's supervisor-death timeout
                # (`repro campaign --tasks --wait-timeout`) never
                # fires while this loop runs.
                for status in statuses:
                    try:
                        os.utime(board.path(status.index))
                        event.heartbeat(status.index, "supervisor-beacon")
                    except OSError:  # pragma: no cover - replaced mid-utime
                        pass
            for status in statuses:
                ingest(status)
            for worker in list(running):
                status = worker.status
                return_code = worker.process.poll()
                if (
                    chaos_host_pending
                    and status.index == chaos_kill_host
                    and status.attempts == 1
                    and len(seen[status.index]) >= chaos_kill_after
                    and return_code is None
                ):
                    chaos_host_pending = False
                    event.emit(
                        "chaos",
                        f"chaos: SIGKILL shard {status.index} worker "
                        f"(pid {worker.process.pid}) after "
                        f"{status.recorded} recorded task(s); its host "
                        f"vanishes",
                        shard=status.index,
                        host=status.host,
                        attempt=status.attempts,
                        action="kill_host",
                        fired=True,
                    )
                    declare_lost(status, "chaos host kill")
                    continue
                if (
                    chaos_pending
                    and status.index == chaos_kill_shard
                    and status.attempts == 1
                    and len(seen[status.index]) >= chaos_kill_after
                    and return_code is None
                ):
                    worker.kill()
                    chaos_pending = False
                    event.emit(
                        "chaos",
                        f"chaos: SIGKILL shard {status.index} worker "
                        f"(pid {worker.process.pid}) after "
                        f"{status.recorded} recorded task(s)",
                        shard=status.index,
                        attempt=status.attempts,
                        action="kill",
                        fired=True,
                    )
                    return_code = worker.process.poll()
                if return_code is None:
                    try:
                        heartbeat_age = (
                            time.time() - status.heartbeat.stat().st_mtime
                        )
                    except OSError:
                        heartbeat_age = time.monotonic() - worker.launched_at
                    if heartbeat_age > stall_timeout:
                        event.emit(
                            "stall",
                            f"shard {status.index} stalled (no heartbeat "
                            f"for {heartbeat_age:.0f}s); killing worker "
                            f"pid {worker.process.pid}",
                            shard=status.index,
                            host=status.host,
                            attempt=status.attempts,
                            heartbeat_age_s=round(heartbeat_age, 3),
                        )
                        worker.kill()
                        return_code = worker.process.poll()
                if return_code is None:
                    continue
                if (
                    chaos_pending
                    and status.index == chaos_kill_shard
                    and status.attempts == 1
                ):
                    chaos_pending = False
                    event.emit(
                        "chaos",
                        f"chaos: shard {status.index} worker finished "
                        f"before the injection could fire; nothing killed",
                        shard=status.index,
                        attempt=status.attempts,
                        action="kill",
                        fired=False,
                    )
                if (
                    chaos_host_pending
                    and status.index == chaos_kill_host
                    and status.attempts == 1
                ):
                    chaos_host_pending = False
                    event.emit(
                        "chaos",
                        f"chaos: shard {status.index} worker finished "
                        f"before the injection could fire; nothing killed",
                        shard=status.index,
                        host=status.host,
                        attempt=status.attempts,
                        action="kill_host",
                        fired=False,
                    )
                running.remove(worker)
                worker.close_log()
                status.exit_codes.append(return_code)
                ingest(status)
                remaining = board.remaining(status.index)
                if not remaining:
                    # Every lease it held is recorded (here or, after a
                    # steal race, in another worker's stream): done,
                    # whatever the exit code says.
                    status.state = "done"
                    event.emit(
                        "exit",
                        f"shard {status.index} done "
                        f"({status.recorded} task record(s) in stream)",
                        shard=status.index,
                        host=status.host,
                        attempt=status.attempts,
                        exit_code=return_code,
                        outcome="done",
                        recorded=status.recorded,
                    )
                    continue
                if status.attempts >= max_attempts:
                    abort(
                        status,
                        "kept failing" if return_code != 0
                        else "exits cleanly but leases stay unrecorded",
                    )
                status.requeues += 1
                status.state = "pending"
                queue.append(status)
                cause = (
                    f"worker died (exit {return_code})"
                    if return_code != 0
                    else "worker exited with unrecorded leases"
                )
                event.emit(
                    "requeue",
                    f"shard {status.index} {cause}; requeuing the slot — "
                    f"its {len(remaining)} remaining lease(s) stay "
                    f"stealable meanwhile",
                    shard=status.index,
                    host=status.host,
                    attempt=status.attempts,
                    exit_code=return_code,
                    recorded=status.recorded,
                    remaining=len(remaining),
                )
            if not closed:
                alive = {
                    worker.status.index
                    for worker in running
                    if worker.process.poll() is None
                }
                idle = [
                    index for index in sorted(alive)
                    if not board.remaining(index)
                ]
                # A queued slot (never launched, or dead and awaiting
                # relaunch) has nothing in flight, so the keep window
                # and steal threshold protect work that provably is
                # not running.  Reclaim such slots wholesale onto idle
                # live workers — without this, ``max_concurrent <
                # shards`` deadlocks: the launched workers go idle and
                # wait on assignment files that never close, running
                # never drops below the cap, and the queued slot's
                # window-protected leases can never move.
                if idle:
                    for status in statuses:
                        if (
                            status.state not in ("pending", "lost")
                            or status.index in alive
                            or not board.remaining(status.index)
                        ):
                            continue
                        reclaimed = board.reclaim(status.index)
                        if not reclaimed:
                            continue
                        status.stolen_from += len(reclaimed)
                        for offset, thief in enumerate(idle):
                            share = reclaimed[offset::len(idle)]
                            board.lease(thief, share)
                            statuses[thief].stolen_to += len(share)
                        slot_why = (
                            "host vanished" if status.state == "lost"
                            else "no worker in flight"
                        )
                        slot_kind = (
                            "lost" if status.state == "lost" else "queued"
                        )
                        event.emit(
                            "reclaim",
                            f"reclaim: moved all {len(reclaimed)} "
                            f"lease(s) from {slot_kind} shard "
                            f"{status.index} ({slot_why}) to "
                            f"idle shard(s) "
                            f"{', '.join(str(t) for t in idle)}",
                            shard=status.index,
                            host=status.host,
                            moved=len(reclaimed),
                            slot_kind=slot_kind,
                            to=list(idle),
                        )
                    idle = [
                        index for index in sorted(alive)
                        if not board.remaining(index)
                    ]
                busy = [
                    index for index in sorted(alive)
                    if board.remaining(index)
                ]
                for victim, thief, count in plan_steals(
                    board, idle, busy, steal_threshold
                ):
                    moved = board.steal(victim, thief, count)
                    if not moved:
                        continue
                    statuses[victim].stolen_from += len(moved)
                    statuses[thief].stolen_to += len(moved)
                    event.emit(
                        "steal",
                        f"steal: moved {len(moved)} unstarted lease(s) "
                        f"from lagging shard {victim} to idle shard "
                        f"{thief} ({len(board.remaining(victim))} "
                        f"remain with {victim})",
                        shard=victim,
                        moved=len(moved),
                        to=thief,
                        victim_remaining=len(board.remaining(victim)),
                    )
            progress = len(board.done)
            if progress != last_progress:
                event(f"progress: {progress}/{total_tasks} tasks recorded")
                last_progress = progress
    finally:
        for worker in running:
            worker.kill()
            worker.close_log()

    streams = [
        status.stream
        for status in statuses
        if status.stream.exists() and status.stream.stat().st_size > 0
    ]
    return _collect(
        layout, streams, total_tasks, statuses, event, "stealing",
        hosts=(
            tuple(
                transports[index].describe()
                for index in sorted(transports)
            )
            if hosts_mode else ()
        ),
    )


# ---------------------------------------------------------------------------
# Live watching (read-only incremental aggregation)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WatchView:
    """One read-only snapshot of a campaign's (possibly live) streams."""

    result: CampaignResult
    #: Task records across the streams vs the spec's total task count.
    done: int
    total: int
    #: Cells holding all / any replicates vs the grid's cell count.
    complete_cells: int
    started_cells: int
    total_cells: int

    @property
    def finished(self) -> bool:
        """Every task of the campaign is recorded."""
        return self.done >= self.total


def watch_view(stream_paths: Sequence[str | Path]) -> WatchView:
    """Union (possibly growing) shard streams into a partial aggregate.

    Strictly read-only: streams load with ``quarantine=False``, so an
    in-flight tail some worker is mid-append on is skipped this tick
    and picked up the next — never repaired away.  All streams must
    carry one spec hash (they are shards of one campaign); records are
    deduplicated by task key exactly as ``repro campaign merge`` would.
    """
    if not stream_paths:
        raise StreamError("nothing to watch: no stream paths")
    infos = [load_stream(path, quarantine=False) for path in stream_paths]
    records = union_records(infos)
    spec = CampaignSpec.from_dict(infos[0].header["spec"])
    if campaign_spec_hash(spec) != infos[0].spec_hash:
        raise ValueError(
            f"stream {infos[0].path} header is inconsistent: its spec "
            f"document does not hash to its spec_hash"
        )
    result = campaign_result_from_records(
        spec,
        records,
        stream_damaged=sum(info.quarantined for info in infos),
        source="live streams",
    )
    complete, started = cell_coverage(result.metrics, spec.replicates)
    return WatchView(
        result=result,
        done=len(records),
        total=spec.total_tasks(),
        complete_cells=complete,
        started_cells=started,
        total_cells=len(spec.cells()),
    )


def render_watch(view: WatchView) -> str:
    """The watcher's one-screen rendering: status line + partial table."""
    spec = view.result.spec
    percent = 100.0 * view.done / view.total if view.total else 100.0
    status = (
        f"campaign {spec.name}: {view.done}/{view.total} tasks recorded "
        f"({percent:.1f}%), {view.complete_cells}/{view.total_cells} "
        f"cells complete"
    )
    if view.result.stream_damaged:
        status += (
            f" [{view.result.stream_damaged} in-flight/undecodable "
            f"line(s) skipped this tick]"
        )
    if not view.started_cells:
        return f"{status}\n(no task records yet)"
    return f"{status}\n{view.result.render()}"
