"""Named cross-mobility scenario suites.

The paper evaluates GLR under a single movement pattern (random
waypoint, Table 1), but DTN delivery/overhead rankings are notoriously
mobility-sensitive.  A *suite* is a pre-built
:class:`~repro.experiments.campaign.CampaignSpec` that sweeps the
mobility axis (and whatever else characterises the workload class) so
one command compares GLR against the baselines across movement
patterns::

    repro campaign --suite cross-mobility --workers 8 --cache-dir CACHE

Suites are effort-scaled: pass an
:class:`~repro.experiments.common.Effort` to trade fidelity for
wall-clock (the CLI maps ``--effort bench|spot|paper``).  Every suite
is deterministic in its seed and caches like any other campaign.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Mapping

from repro.experiments.campaign import CampaignSpec
from repro.experiments.common import BENCH_EFFORT, Effort
from repro.experiments.protocols import ProtocolConfig
from repro.experiments.scenarios import Scenario
from repro.mobility.registry import MobilityConfig
from repro.sim.adversary import AdversaryConfig

#: The movement patterns the cross-mobility comparison covers: the
#: paper's RWP plus the three registry models with default parameters.
CROSS_MOBILITY_MODELS: tuple[MobilityConfig, ...] = (
    MobilityConfig.of("random_waypoint"),
    MobilityConfig.of("gauss_markov"),
    MobilityConfig.of("rpgm"),
    MobilityConfig.of("manhattan"),
)


def _base(name: str, seed: int, effort: Effort, **overrides) -> Scenario:
    """A paper-geometry scenario scaled to the given effort."""
    return Scenario(
        name=name,
        message_count=effort.message_count,
        sim_time=effort.sim_time,
        seed=seed,
        **overrides,
    )


def _suite_paper_table1(
    seed: int, replicates: int, effort: Effort
) -> CampaignSpec:
    """The paper's Table 1 evaluation: RWP, radius swept 50-250 m."""
    return CampaignSpec(
        name="paper-table1",
        base=_base("paper-table1", seed, effort),
        grid=(("radius", (50.0, 100.0, 150.0, 200.0, 250.0)),),
        protocols=("glr", "epidemic"),
        replicates=replicates,
    )


def _suite_cross_mobility(
    seed: int, replicates: int, effort: Effort
) -> CampaignSpec:
    """Every protocol under every movement pattern, one grid."""
    return CampaignSpec(
        name="cross-mobility",
        base=_base("cross-mobility", seed, effort),
        grid=(("mobility", CROSS_MOBILITY_MODELS),),
        protocols=("glr", "epidemic", "spray_and_wait", "first_contact"),
        replicates=replicates,
    )


def _suite_sparse_dtn(
    seed: int, replicates: int, effort: Effort
) -> CampaignSpec:
    """Disconnected regime: short radii where store-and-forward rules."""
    return CampaignSpec(
        name="sparse-dtn",
        base=_base("sparse-dtn", seed, effort),
        grid=(
            ("radius", (50.0, 75.0, 100.0)),
            (
                "mobility",
                (
                    MobilityConfig.of("random_waypoint"),
                    MobilityConfig.of("gauss_markov"),
                ),
            ),
        ),
        protocols=("glr", "epidemic", "spray_and_wait"),
        replicates=replicates,
    )


def _suite_convoy(seed: int, replicates: int, effort: Effort) -> CampaignSpec:
    """Group mobility: clusters that partition and merge (RPGM sweeps)."""
    return CampaignSpec(
        name="convoy",
        base=_base("convoy", seed, effort),
        grid=(
            (
                "mobility",
                (
                    MobilityConfig.of("rpgm", n_groups=2, group_radius=40.0),
                    MobilityConfig.of("rpgm", n_groups=5, group_radius=40.0),
                    MobilityConfig.of("rpgm", n_groups=5, group_radius=80.0),
                ),
            ),
        ),
        protocols=("glr", "epidemic"),
        replicates=replicates,
    )


def _suite_urban_grid(
    seed: int, replicates: int, effort: Effort
) -> CampaignSpec:
    """Street-constrained motion at three block granularities."""
    return CampaignSpec(
        name="urban-grid",
        base=_base("urban-grid", seed, effort),
        grid=(
            (
                "mobility",
                (
                    MobilityConfig.of("manhattan"),
                    MobilityConfig.of("manhattan", blocks_x=20, blocks_y=4),
                    MobilityConfig.of("manhattan", blocks_x=5, blocks_y=1),
                ),
            ),
        ),
        protocols=("glr", "epidemic"),
        replicates=replicates,
    )


def _suite_mobility_x_protocol(
    seed: int, replicates: int, effort: Effort
) -> CampaignSpec:
    """Joint mobility x protocol-config grid (custody, check interval).

    The trade-off surface DTN evaluations must cover: the same protocol
    under different configurations, under contrasting movement
    patterns, in one cached sweep.
    """
    return CampaignSpec(
        name="mobility-x-protocol",
        base=_base("mobility-x-protocol", seed, effort),
        grid=(
            (
                "mobility",
                (
                    MobilityConfig.of("random_waypoint"),
                    MobilityConfig.of("gauss_markov"),
                ),
            ),
        ),
        protocols=(
            ProtocolConfig.of("glr"),
            ProtocolConfig.of("glr", custody=False),
            ProtocolConfig.of("glr", check_interval=1.8),
            ProtocolConfig.of("spray_and_wait", initial_copies=4),
        ),
        replicates=replicates,
    )


def _suite_adversarial(
    seed: int, replicates: int, effort: Effort
) -> CampaignSpec:
    """Byzantine robustness: every adversary mode at rising fractions.

    The honest cell (``None``) anchors the comparison; the grid then
    compromises 10% and 30% of the nodes with each misbehaviour so one
    sweep shows how gracefully each protocol degrades under packet
    sinks, probabilistic droppers, and location liars.
    """
    return CampaignSpec(
        name="adversarial",
        base=_base("adversarial", seed, effort),
        grid=(
            (
                "adversary",
                (
                    None,
                    AdversaryConfig.of("blackhole", 0.1),
                    AdversaryConfig.of("blackhole", 0.3),
                    AdversaryConfig.of("selective_drop", 0.3),
                    AdversaryConfig.of("location_lying", 0.3),
                ),
            ),
        ),
        protocols=("glr", "epidemic", "spray_and_wait", "one_hop"),
        replicates=replicates,
    )


#: Suite name -> builder(seed, replicates, effort) -> CampaignSpec.
SUITES: dict[str, Callable[[int, int, Effort], CampaignSpec]] = {
    "paper-table1": _suite_paper_table1,
    "cross-mobility": _suite_cross_mobility,
    "sparse-dtn": _suite_sparse_dtn,
    "convoy": _suite_convoy,
    "urban-grid": _suite_urban_grid,
    "mobility-x-protocol": _suite_mobility_x_protocol,
    "adversarial": _suite_adversarial,
}


def available_suites() -> list[str]:
    """Names accepted by :func:`build_suite` (and ``--suite``)."""
    return sorted(SUITES)


def suite_description(name: str) -> str:
    """One-line description of a suite (its builder's docstring)."""
    lines = (SUITES[name].__doc__ or "").strip().splitlines()
    return lines[0] if lines else ""


def build_suite(
    name: str,
    seed: int = 1,
    replicates: int = 3,
    effort: Effort = BENCH_EFFORT,
    base_overrides: Mapping | None = None,
) -> CampaignSpec:
    """Materialize a named suite as a runnable :class:`CampaignSpec`.

    ``base_overrides`` patches the suite's base scenario (e.g. shrink
    ``n_nodes`` for smoke tests) after the builder runs.
    """
    if name not in SUITES:
        raise ValueError(
            f"unknown suite {name!r}; choose from {available_suites()}"
        )
    spec = SUITES[name](seed, replicates, effort)
    if base_overrides:
        spec = dataclasses.replace(
            spec, base=spec.base.but(**dict(base_overrides))
        )
    return spec
