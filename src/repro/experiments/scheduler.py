"""Lease-based task scheduling for orchestrated campaigns.

PR 4's orchestrator fixed each worker's task set at launch with
:func:`repro.seeding.stable_shard`: requeue granularity was a whole
shard, so one slow or unlucky shard could grind alone while every other
worker sat idle.  This module drops that granularity to individual
tasks:

- The supervisor owns a :class:`LeaseBoard`: every task key of the
  campaign, which worker currently holds its lease, and which keys are
  already recorded in *some* worker's stream.  The initial assignment is
  exactly the :func:`repro.seeding.shard_partition` split, so a run in
  which no steal ever fires is byte-for-byte the static-shard run.
- Each worker's current lease set lives in an **assignment file** next
  to its stream (``shard<i>.tasks.json``), atomically rewritten by the
  supervisor and only ever *read* by the worker (``repro campaign
  --tasks FILE``).  The worker executes its keys in small batches and
  re-reads the file between batches, so a key the supervisor reclaims
  is dropped before the worker reaches it.  The file is the whole
  protocol — no sockets, no IPC — which keeps the worker launchable by
  anything that can write a file (the future cross-machine step).
- When stream progress shows one worker lagging while another is idle,
  :func:`plan_steals` moves unstarted leases from the laggard to the
  idle worker.  The victim keeps a *keep window* of ``batch`` keys it
  may have already snapshotted for its current batch; everything beyond
  that is reclaimable.  A steal can still race the victim's snapshot —
  both workers then run the task — but tasks are deterministic, both
  streams record identical metrics, and the merge deduplicates by key,
  so a lost race costs one duplicate simulation, never correctness.
  A slot with no live worker at all (queued behind the concurrency
  cap, or dead and awaiting relaunch) has nothing in flight, so the
  keep window does not apply: :meth:`LeaseBoard.reclaim` takes its
  whole lease set back and the supervisor re-leases it to idle
  workers — without that, capping concurrency below the shard count
  would deadlock on window-protected leases nobody is running.

Scheduling therefore cannot change results, only wall-clock shape —
``tests/experiments/test_equivalence.py`` asserts stolen/rebalanced
runs merge to the same streams and aggregates as serial and
statically sharded runs.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.experiments.layout import RunLayout
from repro.seeding import shard_partition

__all__ = [
    "Assignment",
    "AssignmentIdleTimeout",
    "LeaseBoard",
    "SchedulerError",
    "ASSIGNMENT_FORMAT",
    "SCHEDULERS",
    "assignment_path",
    "plan_steals",
    "read_assignment",
    "write_assignment",
]

#: The scheduling policies ``orchestrate_campaign`` accepts.
SCHEDULERS = ("static", "stealing")

#: Bump when the assignment-file schema changes incompatibly.
ASSIGNMENT_FORMAT = 1


class SchedulerError(RuntimeError):
    """An assignment file is unusable (missing, damaged, wrong campaign)."""


class AssignmentIdleTimeout(SchedulerError):
    """An idle worker's assignment file went quiet past its wait bound.

    A live supervisor freshens every assignment file's mtime each
    supervision tick and closes the files when the campaign completes;
    a file that stays byte-for-byte and mtime-for-mtime still while the
    worker has nothing pending means the supervisor is gone (e.g. the
    orchestrator was SIGKILLed).  The worker raises this instead of
    polling forever as an orphan; the CLI maps it to a distinct exit
    code so supervisors and operators can tell it from bad input.
    """


@dataclass(frozen=True)
class Assignment:
    """One worker's current lease set, as read from its assignment file."""

    path: Path
    worker: int
    spec_hash: str
    keys: tuple[str, ...]
    #: Keys per batch the worker should take between file re-reads.
    batch: int
    #: No further leases will arrive; finish ``keys`` and exit.
    closed: bool
    #: Monotonic rewrite counter (diagnostics; workers do not need it).
    version: int


def assignment_path(run_dir: str | Path, worker: int) -> Path:
    """Where worker ``worker``'s assignment file lives in a run dir.

    Thin veneer over :class:`~repro.experiments.layout.RunLayout` — the
    layout module owns the name; this wrapper survives for callers that
    think in ``(run_dir, worker)`` pairs.
    """
    return RunLayout(run_dir).assignment(worker)


def write_assignment(
    path: str | Path,
    worker: int,
    spec_hash: str,
    keys: Sequence[str],
    batch: int,
    closed: bool = False,
    version: int = 0,
) -> None:
    """Atomically (re)write one worker's assignment file.

    Atomic replace means a worker re-reading between batches sees either
    the old lease set or the new one, never a torn mix — the same
    temp-file+rename discipline the stream repair path uses.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = {
        "kind": "assignment",
        "format": ASSIGNMENT_FORMAT,
        "worker": worker,
        "spec_hash": spec_hash,
        "batch": batch,
        "closed": closed,
        "version": version,
        "keys": list(keys),
    }
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, target)


def read_assignment(path: str | Path) -> Assignment:
    """Load and validate an assignment file.

    Any unreadable or malformed file raises :class:`SchedulerError`:
    unlike a stream's torn tail, an assignment file is atomically
    replaced as a whole, so damage means misuse (wrong path, manual
    edit), not a crash to be repaired around.
    """
    target = Path(path)
    try:
        document = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, ValueError, UnicodeDecodeError) as exc:
        raise SchedulerError(
            f"cannot read assignment file {target}: {exc}"
        ) from exc
    if (
        not isinstance(document, dict)
        or document.get("kind") != "assignment"
        or document.get("format") != ASSIGNMENT_FORMAT
    ):
        raise SchedulerError(
            f"{target} is not a scheduler assignment file "
            f"(format {ASSIGNMENT_FORMAT})"
        )
    keys = document.get("keys")
    if not isinstance(keys, list) or not all(
        isinstance(key, str) for key in keys
    ):
        raise SchedulerError(f"{target} has a malformed task-key list")
    if len(set(keys)) != len(keys):
        raise SchedulerError(f"{target} lists a task key twice")
    batch = document.get("batch")
    if not isinstance(batch, int) or batch < 1:
        raise SchedulerError(f"{target} has a malformed batch size")
    if not isinstance(document.get("spec_hash"), str):
        raise SchedulerError(f"{target} has a malformed spec hash")
    return Assignment(
        path=target,
        worker=int(document.get("worker", -1)),
        spec_hash=document["spec_hash"],
        keys=tuple(keys),
        batch=batch,
        closed=bool(document.get("closed", False)),
        version=int(document.get("version", 0)),
    )


class LeaseBoard:
    """Supervisor-side bookkeeping: who holds which task, what is done.

    The board is the single writer of every assignment file.  It starts
    from the :func:`repro.seeding.shard_partition` split (minus keys a
    resumed run dir already records), moves leases between workers on
    :meth:`steal`, folds stream progress in through :meth:`record_done`,
    and closes every file once the whole campaign is recorded so idle
    workers exit cleanly.
    """

    def __init__(
        self,
        keys: Sequence[str],
        workers: int,
        run_dir: str | Path,
        spec_hash: str,
        batch: int = 1,
        done: Iterable[str] = (),
        on_write: Callable[[int, Path], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if len(set(keys)) != len(keys):
            raise ValueError("task keys must be unique")
        self.run_dir = Path(run_dir)
        self.spec_hash = spec_hash
        self.batch = batch
        self.keys = tuple(keys)
        self.done: set[str] = set(done) & set(keys)
        self.closed = False
        #: Called as ``on_write(worker, path)`` after every assignment
        #: rewrite.  The multi-host supervisor hangs its transport push
        #: here, so the remote copy of an assignment file can never lag
        #: more than one atomic rewrite behind the board.
        self.on_write = on_write
        self._versions = [0] * workers
        # The static split is the starting point; keys a resumed run
        # dir already records are never leased at all.
        self.assignments: list[list[str]] = [
            [key for key in part if key not in self.done]
            for part in shard_partition(keys, workers)
        ]
        for worker in range(workers):
            self._write(worker)

    @property
    def workers(self) -> int:
        return len(self.assignments)

    def path(self, worker: int) -> Path:
        """Worker ``worker``'s assignment file."""
        return assignment_path(self.run_dir, worker)

    def _write(self, worker: int) -> None:
        # Keys already recorded are pruned from the written view: a
        # steal race can leave a key recorded in worker A's stream but
        # still leased to worker B, and pruning stops B from running it
        # a second time.  (B's *own* recorded keys are pruned too —
        # harmless, its stream already skips them.)
        write_assignment(
            self.path(worker),
            worker=worker,
            spec_hash=self.spec_hash,
            keys=[
                key for key in self.assignments[worker]
                if key not in self.done
            ],
            batch=self.batch,
            closed=self.closed,
            version=self._versions[worker],
        )
        if self.on_write is not None:
            self.on_write(worker, self.path(worker))

    def add_worker(self) -> int:
        """Register a new (elastic-join) slot; returns its worker index.

        The slot starts with an empty lease set — an atomically written,
        open assignment file its worker can wait on — and fills up
        through the normal rebalancing machinery (:func:`plan_steals`
        moves work to it as soon as it is live and idle, or a reclaim
        re-leases a dead slot's keys onto it).  Joining a board that has
        already :meth:`close_all`-ed gets a *closed* empty assignment,
        so a late worker exits immediately instead of waiting forever.
        """
        worker = self.workers
        self.assignments.append([])
        self._versions.append(0)
        self._write(worker)
        return worker

    def record_done(self, key: str) -> None:
        """Fold one recorded task key (from any worker's stream) in."""
        if key in self.keys:
            self.done.add(key)

    @property
    def complete(self) -> bool:
        """Every task of the campaign is recorded in some stream."""
        return len(self.done) >= len(self.keys)

    def remaining(self, worker: int) -> list[str]:
        """``worker``'s leased keys not yet recorded anywhere."""
        return [
            key for key in self.assignments[worker] if key not in self.done
        ]

    def stealable(self, worker: int) -> list[str]:
        """``worker``'s reclaimable keys: remaining minus the keep window.

        The first ``batch`` remaining keys stay with the worker — it may
        have snapshotted them for the batch it is executing right now.
        Everything beyond that it has provably not started (it re-reads
        the file before each batch), so moving them cannot waste work.
        """
        return self.remaining(worker)[self.batch:]

    def steal(self, victim: int, thief: int, count: int) -> list[str]:
        """Move up to ``count`` unstarted leases from victim to thief.

        Keys move from the *tail* of the victim's stealable range (the
        work it would reach last) onto the end of the thief's
        assignment; both files are atomically rewritten.  Returns the
        moved keys (possibly empty).
        """
        if victim == thief:
            raise ValueError("cannot steal from a worker to itself")
        if count < 1:
            return []
        stealable = self.stealable(victim)
        moved = stealable[max(0, len(stealable) - count):]
        if not moved:
            return []
        moving = set(moved)
        self.assignments[victim] = [
            key for key in self.assignments[victim] if key not in moving
        ]
        self.assignments[thief].extend(moved)
        self._versions[victim] += 1
        self._versions[thief] += 1
        self._write(victim)
        self._write(thief)
        return moved

    def reclaim(self, worker: int) -> list[str]:
        """Take *all* of a dead worker's undone leases back (no window).

        Unlike :meth:`steal`, there is no keep window: the worker is
        gone, so nothing is in flight.  The caller re-leases the
        returned keys (typically back to the same slot for a relaunch,
        or across survivors when the slot is abandoned).
        """
        remaining = self.remaining(worker)
        self.assignments[worker] = []
        self._versions[worker] += 1
        self._write(worker)
        return remaining

    def lease(self, worker: int, keys: Sequence[str]) -> None:
        """Append ``keys`` to ``worker``'s assignment (requeue/re-lease)."""
        if not keys:
            return
        held = set(self.assignments[worker])
        fresh = [key for key in keys if key not in held]
        if not fresh:
            return
        self.assignments[worker].extend(fresh)
        self._versions[worker] += 1
        self._write(worker)

    def close_all(self) -> None:
        """Mark every assignment closed so idle workers exit cleanly."""
        self.closed = True
        for worker in range(self.workers):
            self._versions[worker] += 1
            self._write(worker)


def plan_steals(
    board: LeaseBoard,
    idle: Sequence[int],
    busy: Sequence[int],
    threshold: int = 2,
) -> list[tuple[int, int, int]]:
    """Decide which steals to perform this supervision tick.

    ``idle`` are live workers with no remaining leases; ``busy`` are
    live workers that still hold work.  For each idle worker, the
    busiest victim (most stealable keys) gives up half of its stealable
    range — halving converges: repeated ticks keep rebalancing until
    the tail is spread across every idle worker.  A victim with fewer
    than ``threshold`` stealable keys is left alone (the imbalance
    knob: below it, moving work costs more supervision churn than the
    tail latency it saves).  Returns ``(victim, thief, count)`` tuples;
    the caller executes them with :meth:`LeaseBoard.steal`.

    Pure planning over board state — no I/O — so zero-steal behaviour
    (balanced shards plan nothing) is a unit-testable property.
    """
    if threshold < 1:
        raise ValueError("threshold must be >= 1")
    plan: list[tuple[int, int, int]] = []
    stealable_counts = {worker: len(board.stealable(worker)) for worker in busy}
    for thief in idle:
        victim = max(
            stealable_counts,
            key=lambda worker: (stealable_counts[worker], -worker),
            default=None,
        )
        if victim is None or stealable_counts[victim] < threshold:
            continue
        count = math.ceil(stealable_counts[victim] / 2)
        plan.append((victim, thief, count))
        stealable_counts[victim] -= count
    return plan
