"""Build and run simulation worlds from scenarios.

The runner is the only place where scenario values are translated into
simulator/protocol configuration, so every experiment driver and bench
goes through the same code path.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.baselines.direct import DirectDeliveryProtocol
from repro.baselines.epidemic import EpidemicConfig, EpidemicProtocol
from repro.baselines.first_contact import FirstContactProtocol
from repro.baselines.spray_and_wait import (
    SprayAndWaitConfig,
    SprayAndWaitProtocol,
)
from repro.core.protocol import GLRConfig, GLRProtocol
from repro.experiments.protocols import ProtocolConfig
from repro.experiments.scenarios import Scenario
from repro.experiments.workload import generate_workload
from repro.mobility.base import MobilityModel
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.registry import build_mobility
from repro.seeding import replicate_seed
from repro.sim.arraystate import resolve_engine
from repro.sim.mac import MacConfig
from repro.sim.radio import RadioConfig
from repro.sim.stats import SimulationMetrics
from repro.sim.world import Protocol, World, WorldConfig


def available_protocols() -> list[str]:
    """Names accepted by :func:`run_single`'s ``protocol`` argument."""
    return [
        "glr",
        "epidemic",
        "epidemic_receipts",
        "direct",
        "first_contact",
        "spray_and_wait",
    ]


def _protocol_factory(
    protocol: str,
    glr_config: GLRConfig | None,
    epidemic_config: EpidemicConfig | None,
    spray_config: SprayAndWaitConfig | None,
    buffer_limit: int | None,
    protocol_config: ProtocolConfig | None = None,
) -> Callable[[object], Protocol]:
    receipts_config = None
    if protocol_config is not None:
        # A declarative ProtocolConfig (campaign protocol axis) is an
        # alternative to passing a concrete config object; accepting
        # both would make it ambiguous which one a run keyed on.
        if protocol_config.protocol != protocol:
            raise ValueError(
                f"protocol config is for {protocol_config.protocol!r}, "
                f"but the run requests {protocol!r}"
            )
        if (
            glr_config is not None
            or epidemic_config is not None
            or spray_config is not None
        ):
            raise ValueError(
                "pass either protocol_config or a concrete "
                "glr/epidemic/spray config, not both"
            )
        built = protocol_config.build()
        if protocol == "glr":
            glr_config = built
        elif protocol == "epidemic":
            epidemic_config = built
        elif protocol == "spray_and_wait":
            spray_config = built
        elif protocol == "epidemic_receipts":
            receipts_config = built
    if protocol == "glr":
        config = glr_config if glr_config is not None else GLRConfig()
        if buffer_limit is not None and config.storage_limit is None:
            config = dataclasses.replace(config, storage_limit=buffer_limit)
        return lambda node: GLRProtocol(config)
    if protocol == "epidemic":
        config = epidemic_config if epidemic_config is not None else EpidemicConfig()
        if buffer_limit is not None and config.buffer_limit is None:
            config = dataclasses.replace(config, buffer_limit=buffer_limit)
        return lambda node: EpidemicProtocol(config)
    if protocol == "epidemic_receipts":
        from repro.baselines.receipts import (
            ReceiptEpidemicConfig,
            ReceiptEpidemicProtocol,
        )

        receipt_config = (
            receipts_config
            if receipts_config is not None
            else ReceiptEpidemicConfig()
        )
        if buffer_limit is not None and receipt_config.buffer_limit is None:
            receipt_config = dataclasses.replace(
                receipt_config, buffer_limit=buffer_limit
            )
        return lambda node: ReceiptEpidemicProtocol(receipt_config)
    if protocol == "direct":
        return lambda node: DirectDeliveryProtocol(buffer_limit=buffer_limit)
    if protocol == "first_contact":
        return lambda node: FirstContactProtocol(buffer_limit=buffer_limit)
    if protocol == "spray_and_wait":
        config = spray_config if spray_config is not None else SprayAndWaitConfig()
        if buffer_limit is not None and config.buffer_limit is None:
            config = dataclasses.replace(config, buffer_limit=buffer_limit)
        return lambda node: SprayAndWaitProtocol(config)
    raise ValueError(
        f"unknown protocol {protocol!r}; choose from {available_protocols()}"
    )


def _build_scenario_mobility(
    scenario: Scenario, node_ids: list
) -> MobilityModel:
    """The movement model a scenario describes.

    ``scenario.mobility is None`` is the paper's reference path: a
    random waypoint model driven by the scenario's speed/pause fields,
    constructed exactly as before the registry existed so default
    scenarios reproduce seed metrics byte-for-byte.  Any other value is
    resolved through :func:`repro.mobility.registry.build_mobility`.
    """
    if scenario.mobility is None:
        return RandomWaypointMobility(
            node_ids=node_ids,
            region=scenario.region,
            seed=scenario.seed,
            min_speed=scenario.min_speed,
            max_speed=scenario.max_speed,
            pause_time=scenario.pause_time,
        )
    return build_mobility(
        scenario.mobility, node_ids, scenario.region, scenario.seed
    )


def build_world(
    scenario: Scenario,
    protocol: str,
    glr_config: GLRConfig | None = None,
    epidemic_config: EpidemicConfig | None = None,
    spray_config: SprayAndWaitConfig | None = None,
    buffer_limit: int | None = None,
    protocol_config: ProtocolConfig | None = None,
    profiler=None,
) -> World:
    """Assemble a world for ``scenario`` running ``protocol`` everywhere.

    ``profiler`` (a :class:`repro.telemetry.profile.PhaseProfiler`)
    threads into every subsystem hook; ``None`` means the shared no-op.
    """
    node_ids = list(range(scenario.n_nodes))
    mobility = _build_scenario_mobility(scenario, node_ids)
    world_config = WorldConfig(
        radio=RadioConfig(
            range_m=scenario.radius, data_rate_bps=scenario.data_rate_bps
        ),
        mac=MacConfig(queue_limit=scenario.queue_limit),
        beacon_interval=scenario.beacon_interval,
        seed=scenario.seed,
        # Resolved here (explicit scenario value > REPRO_ENGINE > the
        # reference default) so the world is pinned to one engine no
        # matter where it later runs; raises the clear engine error
        # up front when "vectorized" is requested without numpy.
        engine=resolve_engine(scenario.engine),
    )
    factory = _protocol_factory(
        protocol,
        glr_config,
        epidemic_config,
        spray_config,
        buffer_limit,
        protocol_config=protocol_config,
    )
    world = World(mobility, factory, world_config, profiler=profiler)
    for spec in generate_workload(scenario):
        world.schedule_message(
            spec.source,
            spec.dest,
            spec.at_time,
            size_bytes=scenario.payload_bytes,
        )
    return world


def run_single(
    scenario: Scenario,
    protocol: str,
    glr_config: GLRConfig | None = None,
    epidemic_config: EpidemicConfig | None = None,
    spray_config: SprayAndWaitConfig | None = None,
    buffer_limit: int | None = None,
    protocol_config: ProtocolConfig | None = None,
    profiler=None,
) -> SimulationMetrics:
    """Run one simulation to the scenario horizon."""
    world = build_world(
        scenario,
        protocol,
        glr_config=glr_config,
        epidemic_config=epidemic_config,
        spray_config=spray_config,
        buffer_limit=buffer_limit,
        protocol_config=protocol_config,
        profiler=profiler,
    )
    return world.run(until=scenario.sim_time, protocol_name=protocol)


def run_replicates(
    scenario: Scenario,
    protocol: str,
    runs: int = 10,
    glr_config: GLRConfig | None = None,
    epidemic_config: EpidemicConfig | None = None,
    spray_config: SprayAndWaitConfig | None = None,
    buffer_limit: int | None = None,
    workers: int = 1,
    cache_dir: str | None = None,
) -> list[SimulationMetrics]:
    """Replicate ``scenario`` over ``runs`` seeds (paper: 10 topologies).

    Replicate seeds come from :func:`repro.seeding.replicate_seed`
    (``scenario.seed + 1000 * i``) so populations are disjoint but
    reproducible.  The default serial in-process loop is the reference
    behaviour; ``workers > 1`` and/or ``cache_dir`` route the same
    seeded tasks through the campaign engine
    (:mod:`repro.experiments.campaign`), which returns bit-identical
    metrics because every task's seed is derived before dispatch.
    """
    if runs < 1:
        raise ValueError("need at least one run")
    if workers == 1 and cache_dir is None:
        return [
            run_single(
                scenario.with_seed(replicate_seed(scenario.seed, i)),
                protocol,
                glr_config=glr_config,
                epidemic_config=epidemic_config,
                spray_config=spray_config,
                buffer_limit=buffer_limit,
            )
            for i in range(runs)
        ]
    # Imported lazily: campaign builds on this module's run_single.
    from repro.experiments.campaign import ReplicateSpec, run_replicate_specs

    spec = ReplicateSpec(
        scenario=scenario,
        protocol=protocol,
        runs=runs,
        glr_config=glr_config,
        epidemic_config=epidemic_config,
        spray_config=spray_config,
        buffer_limit=buffer_limit,
    )
    return run_replicate_specs(
        [spec], workers=workers, cache_dir=cache_dir
    )[0]
