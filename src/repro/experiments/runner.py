"""Build and run simulation worlds from scenarios.

The runner is the only place where scenario values are translated into
simulator/protocol configuration, so every experiment driver and bench
goes through the same code path.  Protocol construction flows through
the protocol registry (:mod:`repro.baselines.registry`): the runner
never names a concrete protocol class, so registering a protocol makes
it runnable here with no further wiring.

``protocol_config`` is the single configuration argument: it accepts a
declarative :class:`~repro.experiments.protocols.ProtocolConfig` (the
campaign sweep axis) or a concrete config dataclass instance
(``GLRConfig``, ``EpidemicConfig``, ...).  The historical per-protocol
keywords (``glr_config``/``epidemic_config``/``spray_config``) remain
as deprecation shims that collapse onto the same path, bit-identically
(see :func:`resolve_run_config`).
"""

from __future__ import annotations

import warnings

from repro.baselines.registry import available_protocols as _available_protocols
from repro.baselines.registry import protocol_factory, resolve_protocol
from repro.baselines.epidemic import EpidemicConfig
from repro.baselines.spray_and_wait import SprayAndWaitConfig
from repro.core.protocol import GLRConfig
from repro.experiments.protocols import ProtocolConfig
from repro.experiments.scenarios import Scenario
from repro.experiments.workload import generate_workload
from repro.mobility.base import MobilityModel
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.registry import build_mobility
from repro.seeding import replicate_seed
from repro.sim.adversary import build_adversary_plan
from repro.sim.arraystate import resolve_engine
from repro.sim.mac import MacConfig
from repro.sim.radio import RadioConfig
from repro.sim.stats import SimulationMetrics
from repro.sim.world import World, WorldConfig


def available_protocols() -> list[str]:
    """Names accepted by :func:`run_single`'s ``protocol`` argument.

    Derived from the protocol registry; aliases resolve on use.
    """
    return _available_protocols()


def resolve_run_config(
    protocol: str,
    protocol_config: "ProtocolConfig | object | None" = None,
    glr_config: GLRConfig | None = None,
    epidemic_config: EpidemicConfig | None = None,
    spray_config: SprayAndWaitConfig | None = None,
    warn: bool = False,
) -> object | None:
    """Collapse every config spelling into one concrete config (or None).

    The single translation point between the legacy per-protocol
    keywords and the unified ``protocol_config`` path, so both APIs
    construct bit-identical protocols:

    - a declarative :class:`ProtocolConfig` is validated against the
      protocol and built into its concrete config dataclass;
    - a concrete config instance passes through (the registry
      type-checks it at factory build time);
    - with no ``protocol_config``, the legacy keyword matching the
      protocol is selected and the others are ignored — exactly how the
      old per-protocol branch chain behaved.

    ``warn`` emits a :class:`DeprecationWarning` when legacy keywords
    are in use (the public entry points pass True; internal callers
    translating stored task fields stay quiet).
    """
    canonical = resolve_protocol(protocol)
    legacy = {
        "glr": glr_config,
        "epidemic": epidemic_config,
        "spray_and_wait": spray_config,
    }
    legacy_given = [k for k, v in legacy.items() if v is not None]
    if legacy_given and warn:
        warnings.warn(
            "glr_config/epidemic_config/spray_config are deprecated; "
            "pass the config object via protocol_config instead",
            DeprecationWarning,
            stacklevel=3,
        )
    if protocol_config is not None:
        if legacy_given:
            raise ValueError(
                "pass either protocol_config or a concrete "
                "glr/epidemic/spray config, not both"
            )
        if isinstance(protocol_config, ProtocolConfig):
            # A declarative ProtocolConfig (campaign protocol axis) must
            # name the protocol it configures; accepting a mismatch
            # would make it ambiguous which one a run keyed on.
            if protocol_config.protocol != canonical:
                raise ValueError(
                    f"protocol config is for {protocol_config.protocol!r}, "
                    f"but the run requests {canonical!r}"
                )
            return protocol_config.build()
        return protocol_config
    return legacy.get(canonical)


def _build_scenario_mobility(
    scenario: Scenario, node_ids: list
) -> MobilityModel:
    """The movement model a scenario describes.

    ``scenario.mobility is None`` is the paper's reference path: a
    random waypoint model driven by the scenario's speed/pause fields,
    constructed exactly as before the registry existed so default
    scenarios reproduce seed metrics byte-for-byte.  Any other value is
    resolved through :func:`repro.mobility.registry.build_mobility`.
    """
    if scenario.mobility is None:
        return RandomWaypointMobility(
            node_ids=node_ids,
            region=scenario.region,
            seed=scenario.seed,
            min_speed=scenario.min_speed,
            max_speed=scenario.max_speed,
            pause_time=scenario.pause_time,
        )
    return build_mobility(
        scenario.mobility, node_ids, scenario.region, scenario.seed
    )


def build_world(
    scenario: Scenario,
    protocol: str,
    glr_config: GLRConfig | None = None,
    epidemic_config: EpidemicConfig | None = None,
    spray_config: SprayAndWaitConfig | None = None,
    buffer_limit: int | None = None,
    protocol_config: "ProtocolConfig | object | None" = None,
    profiler=None,
) -> World:
    """Assemble a world for ``scenario`` running ``protocol`` everywhere.

    ``profiler`` (a :class:`repro.telemetry.profile.PhaseProfiler`)
    threads into every subsystem hook; ``None`` means the shared no-op.
    """
    canonical = resolve_protocol(protocol)
    config = resolve_run_config(
        canonical,
        protocol_config,
        glr_config,
        epidemic_config,
        spray_config,
        warn=True,
    )
    node_ids = list(range(scenario.n_nodes))
    mobility = _build_scenario_mobility(scenario, node_ids)
    world_config = WorldConfig(
        radio=RadioConfig(
            range_m=scenario.radius, data_rate_bps=scenario.data_rate_bps
        ),
        mac=MacConfig(queue_limit=scenario.queue_limit),
        beacon_interval=scenario.beacon_interval,
        seed=scenario.seed,
        # Resolved here (explicit scenario value > REPRO_ENGINE > the
        # reference default) so the world is pinned to one engine no
        # matter where it later runs; raises the clear engine error
        # up front when "vectorized" is requested without numpy.
        engine=resolve_engine(scenario.engine),
    )
    factory = protocol_factory(
        canonical, config=config, buffer_limit=buffer_limit
    )
    adversary = build_adversary_plan(
        scenario.adversary, node_ids, scenario.seed
    )
    world = World(
        mobility, factory, world_config, profiler=profiler, adversary=adversary
    )
    for spec in generate_workload(scenario):
        world.schedule_message(
            spec.source,
            spec.dest,
            spec.at_time,
            size_bytes=scenario.payload_bytes,
        )
    return world


def run_single(
    scenario: Scenario,
    protocol: str,
    glr_config: GLRConfig | None = None,
    epidemic_config: EpidemicConfig | None = None,
    spray_config: SprayAndWaitConfig | None = None,
    buffer_limit: int | None = None,
    protocol_config: "ProtocolConfig | object | None" = None,
    profiler=None,
) -> SimulationMetrics:
    """Run one simulation to the scenario horizon."""
    canonical = resolve_protocol(protocol)
    config = resolve_run_config(
        canonical,
        protocol_config,
        glr_config,
        epidemic_config,
        spray_config,
        warn=True,
    )
    world = build_world(
        scenario,
        canonical,
        buffer_limit=buffer_limit,
        protocol_config=config,
        profiler=profiler,
    )
    return world.run(until=scenario.sim_time, protocol_name=canonical)


def run_replicates(
    scenario: Scenario,
    protocol: str,
    runs: int = 10,
    glr_config: GLRConfig | None = None,
    epidemic_config: EpidemicConfig | None = None,
    spray_config: SprayAndWaitConfig | None = None,
    buffer_limit: int | None = None,
    workers: int = 1,
    cache_dir: str | None = None,
) -> list[SimulationMetrics]:
    """Replicate ``scenario`` over ``runs`` seeds (paper: 10 topologies).

    Replicate seeds come from :func:`repro.seeding.replicate_seed`
    (``scenario.seed + 1000 * i``) so populations are disjoint but
    reproducible.  The default serial in-process loop is the reference
    behaviour; ``workers > 1`` and/or ``cache_dir`` route the same
    seeded tasks through the campaign engine
    (:mod:`repro.experiments.campaign`), which returns bit-identical
    metrics because every task's seed is derived before dispatch.
    """
    if runs < 1:
        raise ValueError("need at least one run")
    if workers == 1 and cache_dir is None:
        canonical = resolve_protocol(protocol)
        config = resolve_run_config(
            canonical, None, glr_config, epidemic_config, spray_config
        )
        return [
            run_single(
                scenario.with_seed(replicate_seed(scenario.seed, i)),
                canonical,
                protocol_config=config,
                buffer_limit=buffer_limit,
            )
            for i in range(runs)
        ]
    # Imported lazily: campaign builds on this module's run_single.
    from repro.experiments.campaign import ReplicateSpec, run_replicate_specs

    spec = ReplicateSpec(
        scenario=scenario,
        protocol=protocol,
        runs=runs,
        glr_config=glr_config,
        epidemic_config=epidemic_config,
        spray_config=spray_config,
        buffer_limit=buffer_limit,
    )
    return run_replicate_specs(
        [spec], workers=workers, cache_dir=cache_dir
    )[0]
