"""Experiment harness: scenarios, workloads, runners, and the drivers
that regenerate every table and figure of the paper's evaluation.

See DESIGN.md Section 4 for the experiment-to-module index.
"""

from repro.experiments.campaign import (
    CampaignResult,
    CampaignSpec,
    ReplicateSpec,
    ReplicateTask,
    ResultCache,
    campaign_result_from_records,
    campaign_result_from_stream,
    campaign_spec_hash,
    merge_caches,
    run_campaign,
    run_replicate_specs,
)
from repro.experiments.orchestrator import (
    OrchestratorError,
    OrchestratorResult,
    orchestrate_campaign,
    watch_view,
)
from repro.experiments.protocols import ProtocolConfig, as_protocol_config
from repro.experiments.runner import (
    available_protocols,
    build_world,
    run_replicates,
    run_single,
)
from repro.experiments.stream import (
    StreamError,
    load_stream,
    merge_streams,
    stream_task_count,
    union_records,
)
from repro.experiments.scenarios import PAPER_TABLE1, Scenario
from repro.experiments.suites import (
    available_suites,
    build_suite,
    suite_description,
)
from repro.experiments.workload import WorkloadSpec, generate_workload

__all__ = [
    "PAPER_TABLE1",
    "CampaignResult",
    "CampaignSpec",
    "OrchestratorError",
    "OrchestratorResult",
    "ProtocolConfig",
    "ReplicateSpec",
    "ReplicateTask",
    "ResultCache",
    "Scenario",
    "StreamError",
    "WorkloadSpec",
    "as_protocol_config",
    "available_protocols",
    "available_suites",
    "build_suite",
    "build_world",
    "campaign_result_from_records",
    "campaign_result_from_stream",
    "campaign_spec_hash",
    "generate_workload",
    "load_stream",
    "merge_caches",
    "merge_streams",
    "orchestrate_campaign",
    "run_campaign",
    "run_replicate_specs",
    "run_replicates",
    "run_single",
    "stream_task_count",
    "suite_description",
    "union_records",
    "watch_view",
]
