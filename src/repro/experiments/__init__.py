"""Experiment harness: scenarios, workloads, runners, and the drivers
that regenerate every table and figure of the paper's evaluation.

See DESIGN.md Section 4 for the experiment-to-module index.
"""

from repro.experiments.campaign import (
    CampaignResult,
    CampaignSpec,
    ReplicateSpec,
    ReplicateTask,
    ResultCache,
    run_campaign,
    run_replicate_specs,
)
from repro.experiments.runner import (
    available_protocols,
    build_world,
    run_replicates,
    run_single,
)
from repro.experiments.scenarios import PAPER_TABLE1, Scenario
from repro.experiments.suites import (
    available_suites,
    build_suite,
    suite_description,
)
from repro.experiments.workload import WorkloadSpec, generate_workload

__all__ = [
    "PAPER_TABLE1",
    "CampaignResult",
    "CampaignSpec",
    "ReplicateSpec",
    "ReplicateTask",
    "ResultCache",
    "Scenario",
    "WorkloadSpec",
    "available_protocols",
    "available_suites",
    "build_suite",
    "build_world",
    "generate_workload",
    "run_campaign",
    "run_replicate_specs",
    "run_replicates",
    "run_single",
    "suite_description",
]
