"""Ablation studies for GLR's design choices (DESIGN.md Section 5).

These go beyond the paper's evaluation: each ablation isolates one
mechanism the paper motivates qualitatively, so the benches can show
what it actually buys.

- copy count (1 / 3 / 5 fixed, vs Algorithm 1 adaptive);
- routing spanner (LDTG vs raw UDG neighbours);
- face routing on/off;
- custody retransmit timeout sensitivity;
- baseline protocol comparison (GLR vs epidemic vs spray-and-wait vs
  first-contact vs direct) in one scenario.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.protocol import GLRConfig
from repro.experiments.campaign import ReplicateSpec, run_replicate_specs
from repro.experiments.common import BENCH_EFFORT, Effort, ci_of, fmt_ci
from repro.experiments.scenarios import Scenario
from repro.experiments.tables import TableResult
from repro.mobility.registry import MobilityConfig


def ablation_copies(
    copy_counts: tuple[int, ...] = (1, 3, 5),
    effort: Effort = BENCH_EFFORT,
    radius: float = 50.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """Fixed copy counts vs the Algorithm 1 adaptive decision."""
    result = TableResult(
        experiment="ablation-copies",
        title=f"copy count ablation ({radius:.0f}m, "
        f"{effort.message_count} messages)",
        headers=["copies", "delivery_ratio", "latency_s", "avg_peak_storage"],
    )
    configs: list[tuple[str, GLRConfig]] = [
        (str(c), GLRConfig(copies_override=c)) for c in copy_counts
    ]
    configs.append(("algorithm-1", GLRConfig()))
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"ablation-copies-{label}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol="glr",
            runs=effort.runs,
            glr_config=config,
        )
        for label, config in configs
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for (label, _), runs in zip(configs, cells):
        result.rows.append(
            [
                label,
                fmt_ci(ci_of(runs, "delivery_ratio"), digits=3),
                fmt_ci(ci_of(runs, "average_latency")),
                fmt_ci(ci_of(runs, "average_peak_storage")),
            ]
        )
    return result


def ablation_spanner(
    effort: Effort = BENCH_EFFORT,
    radius: float = 100.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """LDTG routing graph vs raw unit-disk neighbours."""
    result = TableResult(
        experiment="ablation-spanner",
        title=f"routing spanner ablation ({radius:.0f}m, "
        f"{effort.message_count} messages)",
        headers=["spanner", "delivery_ratio", "latency_s", "hops"],
    )
    variants = (("ldt", True), ("udg", False))
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"ablation-spanner-{label}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol="glr",
            runs=effort.runs,
            glr_config=GLRConfig(use_ldt=use_ldt),
        )
        for label, use_ldt in variants
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for (label, _), runs in zip(variants, cells):
        result.rows.append(
            [
                label,
                fmt_ci(ci_of(runs, "delivery_ratio"), digits=3),
                fmt_ci(ci_of(runs, "average_latency")),
                fmt_ci(ci_of(runs, "average_hops")),
            ]
        )
    return result


def ablation_face_routing(
    effort: Effort = BENCH_EFFORT,
    radius: float = 100.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """Face-routing recovery on vs off."""
    result = TableResult(
        experiment="ablation-face",
        title=f"face routing ablation ({radius:.0f}m, "
        f"{effort.message_count} messages)",
        headers=["face_routing", "delivery_ratio", "latency_s", "hops"],
    )
    variants = (True, False)
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"ablation-face-{enabled}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol="glr",
            runs=effort.runs,
            glr_config=GLRConfig(face_routing=enabled),
        )
        for enabled in variants
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for enabled, runs in zip(variants, cells):
        result.rows.append(
            [
                "on" if enabled else "off",
                fmt_ci(ci_of(runs, "delivery_ratio"), digits=3),
                fmt_ci(ci_of(runs, "average_latency")),
                fmt_ci(ci_of(runs, "average_hops")),
            ]
        )
    return result


def ablation_custody_timeout(
    timeouts: tuple[float, ...] = (2.0, 5.0, 10.0, 20.0),
    effort: Effort = BENCH_EFFORT,
    radius: float = 50.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """Sensitivity of delivery to the custody retransmit timeout."""
    result = TableResult(
        experiment="ablation-custody-timeout",
        title=f"custody timeout sensitivity ({radius:.0f}m, "
        f"{effort.message_count} messages)",
        headers=["timeout_s", "delivery_ratio", "latency_s"],
    )
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"ablation-custody-{timeout}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol="glr",
            runs=effort.runs,
            glr_config=GLRConfig(custody_timeout=timeout),
        )
        for timeout in timeouts
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for timeout, runs in zip(timeouts, cells):
        result.rows.append(
            [
                f"{timeout:.0f}",
                fmt_ci(ci_of(runs, "delivery_ratio"), digits=3),
                fmt_ci(ci_of(runs, "average_latency")),
            ]
        )
    return result


def ablation_protocols(
    effort: Effort = BENCH_EFFORT,
    radius: float = 100.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """All implemented protocols side by side in one scenario."""
    result = TableResult(
        experiment="ablation-protocols",
        title=f"protocol comparison ({radius:.0f}m, "
        f"{effort.message_count} messages)",
        headers=[
            "protocol",
            "delivery_ratio",
            "latency_s",
            "hops",
            "avg_peak_storage",
        ],
    )
    protocols = (
        "glr",
        "epidemic",
        "spray_and_wait",
        "first_contact",
        "direct",
    )
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"ablation-protocols-{protocol}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol=protocol,
            runs=effort.runs,
        )
        for protocol in protocols
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for protocol, runs in zip(protocols, cells):
        result.rows.append(
            [
                protocol,
                fmt_ci(ci_of(runs, "delivery_ratio"), digits=3),
                fmt_ci(ci_of(runs, "average_latency")),
                fmt_ci(ci_of(runs, "average_hops")),
                fmt_ci(ci_of(runs, "average_peak_storage")),
            ]
        )
    return result
