"""Traffic generation.

The paper: "A subset of 50 nodes act as sources and destinations, with
each of 45 nodes sending packets to other 44 nodes (1980 messages
total).  Packets are generated every second."

:func:`generate_workload` reproduces that: the ordered pairs among the
``active_nodes`` first nodes are shuffled deterministically and emitted
one per ``message_interval``.  Message counts other than the full 1980
(the "number of messages in transit" sweeps of Figures 4/5) take a
prefix of the shuffled pair list, cycling when the request exceeds the
number of distinct pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.scenarios import Scenario
from repro.seeding import derive_rng


@dataclass(frozen=True)
class WorkloadSpec:
    """One scheduled application message."""

    source: int
    dest: int
    at_time: float


def generate_workload(scenario: Scenario) -> list[WorkloadSpec]:
    """Deterministic message schedule for ``scenario``.

    Node ids are integers 0..n-1; the first ``active_nodes`` of them
    participate in traffic.
    """
    active = list(range(scenario.active_nodes))
    pairs = [(s, d) for s in active for d in active if s != d]
    rng = derive_rng(scenario.seed, "workload")
    rng.shuffle(pairs)

    specs: list[WorkloadSpec] = []
    for i in range(scenario.message_count):
        source, dest = pairs[i % len(pairs)]
        specs.append(
            WorkloadSpec(
                source=source,
                dest=dest,
                at_time=scenario.message_start + i * scenario.message_interval,
            )
        )
    return specs
