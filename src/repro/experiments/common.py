"""Shared helpers for the figure/table experiment drivers."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro.analysis.ci import ConfidenceInterval, mean_confidence_interval
from repro.sim.stats import SimulationMetrics


@dataclass(frozen=True)
class Effort:
    """How much simulation to spend on an experiment.

    The paper's evaluation uses 10 runs of full-length scenarios; the
    benches use a scaled-down effort so the whole suite finishes in
    minutes.  EXPERIMENTS.md records which effort produced which
    numbers.
    """

    runs: int
    sim_time: float
    message_count: int

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("need at least one run")
        if self.sim_time <= 0:
            raise ValueError("sim time must be positive")
        if self.message_count < 1:
            raise ValueError("need at least one message")


#: The paper's full evaluation effort (Table 1: 3800 s, 1980 messages).
PAPER_EFFORT = Effort(runs=10, sim_time=3800.0, message_count=1980)

#: Reduced effort for the pytest-benchmark harness.
BENCH_EFFORT = Effort(runs=2, sim_time=420.0, message_count=120)

#: Middle ground used for EXPERIMENTS.md spot checks.
SPOT_EFFORT = Effort(runs=3, sim_time=1200.0, message_count=400)


def bench_workers(default: int = 1) -> int:
    """Worker count for the benchmark drivers.

    The benches stay serial by default so their timings keep measuring
    the simulator; set ``REPRO_BENCH_WORKERS=N`` to fan the replicate
    loops out over the campaign engine's process pool instead.
    """
    value = os.environ.get("REPRO_BENCH_WORKERS", "")
    try:
        workers = int(value)
    except ValueError:
        return default
    return workers if workers >= 1 else default


def ci_of(
    runs: Sequence[SimulationMetrics], field: str
) -> ConfidenceInterval:
    """Confidence interval of one metric field across replicate runs.

    ``None`` values (e.g. latency in a run that delivered nothing) are
    skipped; if every run lacks the metric a zero interval is returned.
    """
    values = [
        float(v) for r in runs if (v := getattr(r, field)) is not None
    ]
    if not values:
        return ConfidenceInterval(mean=0.0, half_width=0.0, n=0)
    return mean_confidence_interval(values)


def fmt_ci(ci: ConfidenceInterval, digits: int = 1) -> str:
    """Paper-style ``mean±half_width`` formatting."""
    return f"{ci.mean:.{digits}f}±{ci.half_width:.{digits}f}"
