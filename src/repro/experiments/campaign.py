"""Campaign engine: parallel replicated sweeps with a resumable cache.

The paper's evaluation is a grid — scenarios x protocols x replicate
seeds — and every figure/table driver walks some slice of that grid.
This module is the one place that executes such grids:

- :class:`ReplicateSpec` describes one grid cell (a scenario, a
  protocol, per-protocol configs, and a replicate count); it expands to
  :class:`ReplicateTask` leaves whose seeds come from
  :func:`repro.seeding.replicate_seed`, the same rule the serial
  reference path uses, so parallel results are bit-identical to serial.
- :func:`execute_tasks` fans tasks out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``workers > 1``) or
  runs them inline (``workers == 1``, the reference behaviour).
- :class:`ResultCache` is a content-addressed on-disk JSON store keyed
  by the code-relevant task parameters (scenario fields minus the
  display name, protocol, configs, seed, cache format version), so an
  interrupted campaign resumes where it stopped and repeated benches
  skip finished work.  Corrupt or partial entries are detected and
  recomputed, never silently loaded.
- :class:`CampaignSpec` is the declarative top layer: a base scenario,
  a field grid, protocols, and a replicate count.  :func:`run_campaign`
  executes it and aggregates with :mod:`repro.analysis.aggregate` /
  :mod:`repro.analysis.ci`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.analysis.aggregate import MetricSummary, summarize_metrics
from repro.analysis.render import render_table
from repro.baselines.epidemic import EpidemicConfig
from repro.baselines.spray_and_wait import SprayAndWaitConfig
from repro.core.protocol import GLRConfig
from repro.experiments.common import ci_of, fmt_ci
from repro.experiments.runner import available_protocols, run_single
from repro.experiments.scenarios import Scenario
from repro.mobility.registry import MobilityConfig, as_mobility_config
from repro.seeding import replicate_seed
from repro.sim.stats import SimulationMetrics

#: Bump whenever simulation semantics change in a way that invalidates
#: previously cached metrics (it is part of every cache key).
#: 2: Scenario grew the ``mobility`` field (cache keys now cover the
#:    movement model configuration).
CACHE_FORMAT = 2


# ---------------------------------------------------------------------------
# Tasks and specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReplicateTask:
    """One simulation leaf: a fully seeded scenario plus its protocol."""

    scenario: Scenario
    protocol: str
    replicate: int
    glr_config: GLRConfig | None = None
    epidemic_config: EpidemicConfig | None = None
    spray_config: SprayAndWaitConfig | None = None
    buffer_limit: int | None = None


@dataclass(frozen=True)
class ReplicateSpec:
    """One grid cell: ``runs`` replicates of (scenario, protocol)."""

    scenario: Scenario
    protocol: str
    runs: int = 10
    glr_config: GLRConfig | None = None
    epidemic_config: EpidemicConfig | None = None
    spray_config: SprayAndWaitConfig | None = None
    buffer_limit: int | None = None

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("need at least one run")

    def tasks(self) -> list[ReplicateTask]:
        """Expand to seeded per-replicate tasks (deterministic order)."""
        return [
            ReplicateTask(
                scenario=self.scenario.with_seed(
                    replicate_seed(self.scenario.seed, i)
                ),
                protocol=self.protocol,
                replicate=i,
                glr_config=self.glr_config,
                epidemic_config=self.epidemic_config,
                spray_config=self.spray_config,
                buffer_limit=self.buffer_limit,
            )
            for i in range(self.runs)
        ]


# ---------------------------------------------------------------------------
# Content-addressed cache
# ---------------------------------------------------------------------------

def _canonical(value: object) -> object:
    """A JSON-serialisable canonical form of configs and scenarios."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Mapping):
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for cache key")


def task_payload(task: ReplicateTask) -> dict:
    """The code-relevant parameters a task's cache key is built from.

    The scenario's display ``name`` is excluded so renaming a sweep
    does not invalidate its cached simulations.
    """
    scenario = _canonical(task.scenario)
    scenario.pop("name", None)
    return {
        "format": CACHE_FORMAT,
        "scenario": scenario,
        "protocol": task.protocol,
        "glr_config": _canonical(task.glr_config),
        "epidemic_config": _canonical(task.epidemic_config),
        "spray_config": _canonical(task.spray_config),
        "buffer_limit": task.buffer_limit,
    }


def task_key(task: ReplicateTask) -> str:
    """Content hash addressing one task's cached metrics."""
    blob = json.dumps(
        task_payload(task), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


_METRIC_FIELDS = frozenset(
    f.name for f in dataclasses.fields(SimulationMetrics)
)


def _decode_metrics(payload: object, task: ReplicateTask) -> SimulationMetrics | None:
    """Rebuild metrics from a cache payload; ``None`` if anything is off."""
    if not isinstance(payload, dict):
        return None
    if payload.get("format") != CACHE_FORMAT:
        return None
    data = payload.get("metrics")
    if not isinstance(data, dict) or set(data) != _METRIC_FIELDS:
        return None
    data = dict(data)
    peaks = data.get("per_node_peak_storage")
    latencies = data.get("latencies")
    hops = data.get("hop_counts")
    if not isinstance(peaks, dict):
        return None
    if not isinstance(latencies, list) or not isinstance(hops, list):
        return None
    try:
        data["per_node_peak_storage"] = {
            int(k): int(v) for k, v in peaks.items()
        }
        data["latencies"] = [float(v) for v in latencies]
        data["hop_counts"] = [int(v) for v in hops]
        metrics = SimulationMetrics(**data)
    except (TypeError, ValueError):
        return None
    if metrics.protocol != task.protocol:
        return None
    if not isinstance(metrics.messages_created, int):
        return None
    if not isinstance(metrics.delivery_ratio, (int, float)):
        return None
    return metrics


class ResultCache:
    """On-disk JSON store of per-task metrics, addressed by content hash.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is
    :func:`task_key`.  Each file holds the format version, the full key
    payload (for human inspection), and the serialised metrics.  Writes
    are atomic (temp file + rename) so a killed campaign never leaves a
    half-written entry that a resume would trust; loads validate the
    payload and fall back to recomputation on any mismatch.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (existing or not)."""
        return self.root / key[:2] / f"{key}.json"

    def load(self, task: ReplicateTask) -> SimulationMetrics | None:
        """Cached metrics for ``task``, or ``None`` (counted as a miss)."""
        path = self.path_for(task_key(task))
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError, UnicodeDecodeError):
            self.misses += 1
            return None
        metrics = _decode_metrics(payload, task)
        if metrics is None:
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def store(self, task: ReplicateTask, metrics: SimulationMetrics) -> None:
        """Atomically persist ``metrics`` under ``task``'s key."""
        path = self.path_for(task_key(task))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "key": task_payload(task),
            "metrics": dataclasses.asdict(metrics),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8"
        )
        os.replace(tmp, path)

    @property
    def lookups(self) -> int:
        """Total load attempts so far."""
        return self.hits + self.misses


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TaskProgress:
    """One progress tick: ``done`` of ``total`` tasks finished."""

    done: int
    total: int
    task: ReplicateTask
    cached: bool


ProgressCallback = Callable[[TaskProgress], None]


def _run_task(task: ReplicateTask) -> SimulationMetrics:
    """Simulate one task (module-level so it pickles into worker procs)."""
    return run_single(
        task.scenario,
        task.protocol,
        glr_config=task.glr_config,
        epidemic_config=task.epidemic_config,
        spray_config=task.spray_config,
        buffer_limit=task.buffer_limit,
    )


def execute_tasks(
    tasks: Sequence[ReplicateTask],
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
) -> list[SimulationMetrics]:
    """Run every task, in input order, using cache and process pool.

    Each task is an independent simulation with a pre-derived seed, so
    the result list is identical whatever ``workers`` is; parallelism
    only changes wall-clock time.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    results: list[SimulationMetrics | None] = [None] * len(tasks)
    done = 0

    def tick(index: int, cached: bool) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(TaskProgress(done, len(tasks), tasks[index], cached))

    pending: list[int] = []
    for i, task in enumerate(tasks):
        metrics = cache.load(task) if cache is not None else None
        if metrics is not None:
            results[i] = metrics
            tick(i, cached=True)
        else:
            pending.append(i)

    if pending and workers > 1 and len(pending) > 1:
        pool_size = min(workers, len(pending))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                pool.submit(_run_task, tasks[i]): i for i in pending
            }
            for future in as_completed(futures):
                i = futures[future]
                metrics = future.result()
                if cache is not None:
                    cache.store(tasks[i], metrics)
                results[i] = metrics
                tick(i, cached=False)
    else:
        for i in pending:
            metrics = _run_task(tasks[i])
            if cache is not None:
                cache.store(tasks[i], metrics)
            results[i] = metrics
            tick(i, cached=False)

    return [r for r in results if r is not None]


def run_replicate_specs(
    specs: Sequence[ReplicateSpec],
    workers: int = 1,
    cache_dir: str | Path | None = None,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
) -> list[list[SimulationMetrics]]:
    """Execute a batch of grid cells; one metrics list per input spec.

    All cells' tasks are flattened into one pool so parallelism spans
    the whole sweep rather than one cell at a time.  This is the entry
    the figure/table/ablation drivers route their replicate loops
    through.
    """
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    tasks: list[ReplicateTask] = []
    bounds: list[tuple[int, int]] = []
    for spec in specs:
        start = len(tasks)
        tasks.extend(spec.tasks())
        bounds.append((start, len(tasks)))
    flat = execute_tasks(tasks, workers=workers, cache=cache, progress=progress)
    return [flat[start:stop] for start, stop in bounds]


# ---------------------------------------------------------------------------
# Declarative campaigns
# ---------------------------------------------------------------------------

_SCENARIO_FIELDS = frozenset(f.name for f in dataclasses.fields(Scenario))


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: base scenario x field grid x protocols.

    ``grid`` is an ordered tuple of ``(scenario_field, values)`` pairs;
    the campaign runs the cartesian product of all value axes, each
    combination under every protocol, ``replicates`` times.  Grid
    scenarios are named ``<name>/<field>=<value>,...`` for reporting.

    A ``mobility`` axis sweeps movement models: its values may be model
    names (``"gauss-markov"``), mappings, or
    :class:`~repro.mobility.registry.MobilityConfig` objects — all are
    coerced on construction so the cache keys on the resolved config.
    """

    name: str
    base: Scenario = field(default_factory=Scenario)
    grid: tuple[tuple[str, tuple], ...] = ()
    protocols: tuple[str, ...] = ("glr",)
    replicates: int = 3
    buffer_limit: int | None = None

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError("need at least one replicate")
        if not self.protocols:
            raise ValueError("need at least one protocol")
        known = available_protocols()
        for protocol in self.protocols:
            if protocol not in known:
                raise ValueError(
                    f"unknown protocol {protocol!r}; choose from {known}"
                )
        if any(fname == "mobility" for fname, _ in self.grid):
            # Coerce before validation so name strings / mappings
            # dedupe against equivalent MobilityConfig values.
            object.__setattr__(
                self,
                "grid",
                tuple(
                    (fname, tuple(as_mobility_config(v) for v in values))
                    if fname == "mobility"
                    else (fname, values)
                    for fname, values in self.grid
                ),
            )
        for fname, values in self.grid:
            if fname == "name" or fname not in _SCENARIO_FIELDS:
                raise ValueError(f"unknown scenario grid field {fname!r}")
            if not values:
                raise ValueError(f"grid field {fname!r} has no values")
            if len(set(values)) != len(values):
                # Duplicate values would produce identically named cells
                # that silently overwrite each other in the result map.
                raise ValueError(f"grid field {fname!r} has duplicate values")

    def scenarios(self) -> list[Scenario]:
        """The scenario grid, in deterministic sweep order."""
        if not self.grid:
            return [self.base.but(name=self.name)]
        fields = [fname for fname, _ in self.grid]
        axes = [values for _, values in self.grid]
        scenarios = []
        for combo in itertools.product(*axes):
            overrides = dict(zip(fields, combo))
            label = ",".join(f"{k}={v}" for k, v in overrides.items())
            scenarios.append(
                self.base.but(name=f"{self.name}/{label}", **overrides)
            )
        return scenarios

    def specs(self) -> list[ReplicateSpec]:
        """One :class:`ReplicateSpec` per (scenario, protocol) cell."""
        return [
            ReplicateSpec(
                scenario=scenario,
                protocol=protocol,
                runs=self.replicates,
                buffer_limit=self.buffer_limit,
            )
            for scenario in self.scenarios()
            for protocol in self.protocols
        ]

    def total_tasks(self) -> int:
        """Number of simulation leaves the campaign expands to."""
        return len(self.scenarios()) * len(self.protocols) * self.replicates

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        base = dataclasses.asdict(self.base)
        region = base.pop("region")
        base["region"] = [region["width"], region["height"]]
        base.pop("mobility")
        if self.base.mobility is not None:
            base["mobility"] = self.base.mobility.to_json()
        return {
            "name": self.name,
            "base": base,
            "grid": {
                fname: [
                    v.to_json() if isinstance(v, MobilityConfig) else v
                    for v in values
                ]
                for fname, values in self.grid
            },
            "protocols": list(self.protocols),
            "replicates": self.replicates,
            "buffer_limit": self.buffer_limit,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        """Build a spec from a JSON document.

        ``base`` holds :class:`Scenario` field overrides (``region`` as
        a ``[width, height]`` pair, ``mobility`` as a model name or
        ``{"model": ..., "params": {...}}`` mapping); ``grid`` maps
        scenario fields to value lists — a ``mobility`` axis takes the
        same name/mapping forms.
        """
        from repro.mobility.base import Region

        base_overrides = dict(data.get("base", {}))
        unknown = set(base_overrides) - _SCENARIO_FIELDS
        if unknown:
            raise ValueError(f"unknown scenario fields {sorted(unknown)}")
        if "region" in base_overrides:
            width, height = base_overrides["region"]
            base_overrides["region"] = Region(float(width), float(height))
        grid = tuple(
            (fname, tuple(values))
            for fname, values in dict(data.get("grid", {})).items()
        )
        return cls(
            name=str(data.get("name", "campaign")),
            base=Scenario().but(**base_overrides),
            grid=grid,
            protocols=tuple(data.get("protocols", ("glr",))),
            replicates=int(data.get("replicates", 3)),
            buffer_limit=data.get("buffer_limit"),
        )


@dataclass
class CampaignResult:
    """Executed campaign: per-cell replicate metrics plus cache stats."""

    spec: CampaignSpec
    metrics: dict[tuple[str, str], list[SimulationMetrics]]
    cache_hits: int = 0
    cache_misses: int = 0
    cache_enabled: bool = False

    def summaries(self) -> dict[tuple[str, str], MetricSummary]:
        """90% CI summary per (scenario name, protocol) cell."""
        return {
            cell: summarize_metrics(runs)
            for cell, runs in self.metrics.items()
        }

    def cache_line(self) -> str:
        """Human-readable cache statistics for progress output."""
        if not self.cache_enabled:
            return "cache: disabled"
        total = self.cache_hits + self.cache_misses
        rate = 100.0 * self.cache_hits / total if total else 0.0
        return (
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses "
            f"({rate:.1f}% hit rate)"
        )

    def render(self) -> str:
        """Paper-style summary table of every campaign cell."""
        rows = []
        for (scenario_name, protocol), runs in self.metrics.items():
            rows.append(
                [
                    scenario_name,
                    protocol,
                    fmt_ci(ci_of(runs, "delivery_ratio"), digits=3),
                    fmt_ci(ci_of(runs, "average_latency")),
                    fmt_ci(ci_of(runs, "average_hops"), digits=2),
                    fmt_ci(ci_of(runs, "average_peak_storage")),
                ]
            )
        return render_table(
            f"campaign {self.spec.name}: {self.spec.replicates} replicates",
            [
                "scenario",
                "protocol",
                "delivery_ratio",
                "latency_s",
                "hops",
                "avg_peak_storage",
            ],
            rows,
        )


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressCallback | None = None,
) -> CampaignResult:
    """Execute a declarative campaign and aggregate its grid."""
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    cell_specs = spec.specs()
    per_cell = run_replicate_specs(
        cell_specs, workers=workers, cache=cache, progress=progress
    )
    metrics = {
        (cell.scenario.name, cell.protocol): runs
        for cell, runs in zip(cell_specs, per_cell)
    }
    return CampaignResult(
        spec=spec,
        metrics=metrics,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        cache_enabled=cache is not None,
    )
