"""Campaign engine v2: parallel, shardable sweeps with streamed metrics.

The paper's evaluation is a grid — scenarios x protocol configs x
replicate seeds — and every figure/table driver walks some slice of
that grid.  This module is the one place that executes such grids:

- :class:`ReplicateSpec` describes one grid cell (a scenario, a
  protocol variant, and a replicate count); it expands to
  :class:`ReplicateTask` leaves whose seeds come from
  :func:`repro.seeding.replicate_seed`, the same rule the serial
  reference path uses, so parallel results are bit-identical to serial.
- :func:`execute_tasks` fans tasks out over a
  :class:`~concurrent.futures.ProcessPoolExecutor` (``workers > 1``) or
  runs them inline (``workers == 1``, the reference behaviour).
- :class:`ResultCache` is a content-addressed on-disk JSON store keyed
  by the code-relevant task parameters (scenario fields minus the
  display name, protocol + protocol config, seed, cache format
  version), so an interrupted campaign resumes where it stopped and
  repeated benches skip finished work.  Corrupt or partial entries are
  detected and recomputed, never silently loaded.
- :class:`CampaignSpec` is the declarative top layer: a base scenario,
  a field grid, a protocol axis
  (:class:`~repro.experiments.protocols.ProtocolConfig` values —
  protocol variants with swept config fields), and a replicate count.
  :func:`run_campaign` executes it and aggregates with
  :mod:`repro.analysis.aggregate` / :mod:`repro.analysis.ci`.
- A campaign can **stream** per-task metrics to an append-only JSONL
  file (:mod:`repro.experiments.stream`) and can run as one **shard**
  of a multi-machine sweep (``shard_index``/``shard_count``; tasks are
  partitioned by content key via :func:`repro.seeding.stable_shard`).
  Shard streams merge with :func:`~repro.experiments.stream
  .merge_streams` and aggregate with
  :func:`campaign_result_from_stream` — bit-identically to an
  unsharded run.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.analysis.aggregate import MetricSummary, summarize_cells
from repro.analysis.render import render_table
from repro.baselines.epidemic import EpidemicConfig
from repro.baselines.spray_and_wait import SprayAndWaitConfig
from repro.core.protocol import GLRConfig
from repro.experiments.common import ci_of, fmt_ci
from repro.experiments.protocols import ProtocolConfig, as_protocol_config
from repro.experiments.runner import (
    available_protocols,
    resolve_run_config,
    run_single,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.scheduler import (
    AssignmentIdleTimeout,
    SchedulerError,
    read_assignment,
)
from repro.experiments.stream import (
    append_record,
    init_stream,
    load_stream,
    make_task_record,
    merge_streams,
)
from repro.mobility.registry import MobilityConfig, as_mobility_config
from repro.mobility.traces import trace_file_digest
from repro.sim.adversary import AdversaryConfig, as_adversary_config
from repro.seeding import replicate_seed, stable_shard
from repro.sim.stats import SimulationMetrics
from repro.telemetry.profile import make_profiler

__all__ = [
    "CACHE_FORMAT",
    "CHAOS_TASK_SLEEP_ENV",
    "CampaignResult",
    "CampaignSpec",
    "ReplicateSpec",
    "ReplicateTask",
    "ResultCache",
    "TaskProgress",
    "campaign_result_from_records",
    "campaign_result_from_stream",
    "campaign_spec_hash",
    "execute_tasks",
    "merge_caches",
    "merge_streams",
    "run_campaign",
    "run_replicate_specs",
    "task_key",
    "task_payload",
]

#: Bump whenever simulation semantics change in a way that invalidates
#: previously cached metrics (it is part of every cache key).
#: 2: Scenario grew the ``mobility`` field (cache keys now cover the
#:    movement model configuration).
#: 3: tasks grew the ``protocol_config`` axis, and trace mobility keys
#:    switched from the path string to the file's content hash.  v2
#:    entries for tasks unaffected by either change (no protocol
#:    config, no trace mobility) are migrated on read — see
#:    :meth:`ResultCache.load`.
CACHE_FORMAT = 3

#: The previous format, still readable via the migration path.
_LEGACY_CACHE_FORMAT = 2


# ---------------------------------------------------------------------------
# Tasks and specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ReplicateTask:
    """One simulation leaf: a fully seeded scenario plus its protocol."""

    scenario: Scenario
    protocol: str
    replicate: int
    glr_config: GLRConfig | None = None
    epidemic_config: EpidemicConfig | None = None
    spray_config: SprayAndWaitConfig | None = None
    buffer_limit: int | None = None
    protocol_config: ProtocolConfig | None = None

    @property
    def protocol_label(self) -> str:
        """The reporting label: ``glr`` or ``glr(custody=False)``."""
        if self.protocol_config is not None and self.protocol_config.params:
            return str(self.protocol_config)
        return self.protocol


@dataclass(frozen=True)
class ReplicateSpec:
    """One grid cell: ``runs`` replicates of (scenario, protocol)."""

    scenario: Scenario
    protocol: str
    runs: int = 10
    glr_config: GLRConfig | None = None
    epidemic_config: EpidemicConfig | None = None
    spray_config: SprayAndWaitConfig | None = None
    buffer_limit: int | None = None
    protocol_config: ProtocolConfig | None = None

    def __post_init__(self) -> None:
        if self.runs < 1:
            raise ValueError("need at least one run")
        if self.protocol_config is not None:
            # Coerce strings / mappings so specs can name variants
            # directly, and catch config conflicts at spec build time
            # rather than inside a worker mid-campaign.
            object.__setattr__(
                self,
                "protocol_config",
                as_protocol_config(self.protocol_config),
            )
            if self.protocol_config.protocol != self.protocol:
                raise ValueError(
                    f"protocol config {self.protocol_config} does not "
                    f"match spec protocol {self.protocol!r}"
                )
            if (
                self.glr_config is not None
                or self.epidemic_config is not None
                or self.spray_config is not None
            ):
                raise ValueError(
                    "pass either protocol_config or a concrete "
                    "glr/epidemic/spray config, not both"
                )
            if not self.protocol_config.params:
                # A paramless config IS the bare protocol; normalising
                # to None keeps the cache key and stream identity
                # identical whichever way the spec was written.
                object.__setattr__(self, "protocol_config", None)

    def tasks(self) -> list[ReplicateTask]:
        """Expand to seeded per-replicate tasks (deterministic order)."""
        return [
            ReplicateTask(
                scenario=self.scenario.with_seed(
                    replicate_seed(self.scenario.seed, i)
                ),
                protocol=self.protocol,
                replicate=i,
                glr_config=self.glr_config,
                epidemic_config=self.epidemic_config,
                spray_config=self.spray_config,
                buffer_limit=self.buffer_limit,
                protocol_config=self.protocol_config,
            )
            for i in range(self.runs)
        ]


# ---------------------------------------------------------------------------
# Content-addressed cache
# ---------------------------------------------------------------------------

def _canonical(value: object) -> object:
    """A JSON-serialisable canonical form of configs and scenarios."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Mapping):
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for cache key")


def _is_trace_mobility(scenario: Scenario) -> bool:
    return scenario.mobility is not None and scenario.mobility.model == "trace"


def _canonical_scenario(task: ReplicateTask, content_hash: bool) -> dict:
    """The scenario part of a cache key payload.

    With ``content_hash`` (the v3 behaviour), trace mobility is keyed
    on the trace *file content* instead of its path string: editing a
    trace in place invalidates cached simulations, while renaming or
    copying an identical file still hits.
    """
    scenario = _canonical(task.scenario)
    scenario.pop("name", None)
    # Engines are bit-identical, so an unset engine (= whatever
    # REPRO_ENGINE picks at run time) keys exactly like it did before
    # the field existed — pre-existing caches stay valid, and results
    # computed under either env default are interchangeable.  An
    # *explicit* engine stays in the key: pinning it is a deliberate
    # part of the task's identity (e.g. an --engines cross-check grid
    # must not collapse to one cell).
    if scenario.get("engine") is None:
        scenario.pop("engine", None)
    # No adversary keys exactly like the field never existed, so
    # pre-axis caches stay valid — and since a zero fraction coerces to
    # None at scenario construction, "no adversary" has exactly one key
    # however it was spelled.
    if scenario.get("adversary") is None:
        scenario.pop("adversary", None)
    if content_hash and _is_trace_mobility(task.scenario):
        params = dict(scenario["mobility"]["params"])
        path = params.pop("path", None)
        if path is not None:
            params["content_sha256"] = trace_file_digest(path)
        scenario["mobility"]["params"] = sorted(
            [k, v] for k, v in params.items()
        )
    return scenario


def task_payload(task: ReplicateTask) -> dict:
    """The code-relevant parameters a task's cache key is built from.

    The scenario's display ``name`` is excluded so renaming a sweep
    does not invalidate its cached simulations.
    """
    return {
        "format": CACHE_FORMAT,
        "scenario": _canonical_scenario(task, content_hash=True),
        "protocol": task.protocol,
        "glr_config": _canonical(task.glr_config),
        "epidemic_config": _canonical(task.epidemic_config),
        "spray_config": _canonical(task.spray_config),
        "buffer_limit": task.buffer_limit,
        "protocol_config": _canonical(task.protocol_config),
    }


def legacy_task_payload(task: ReplicateTask) -> dict | None:
    """The v2 (``CACHE_FORMAT == 2``) payload of a task, if one exists.

    Only tasks untouched by the v3 key changes have a legacy identity:
    no protocol config, and no trace mobility (v2 keyed traces on the
    path string, which says nothing about the file's content — those
    entries are untrustworthy by construction and are never migrated).
    """
    if task.protocol_config is not None:
        return None
    if _is_trace_mobility(task.scenario):
        return None
    if task.scenario.engine is not None:
        # Explicit engine pins postdate v2 keys; nothing to migrate.
        return None
    if task.scenario.adversary is not None:
        # Adversary injection postdates v2 keys too.
        return None
    return {
        "format": _LEGACY_CACHE_FORMAT,
        "scenario": _canonical_scenario(task, content_hash=False),
        "protocol": task.protocol,
        "glr_config": _canonical(task.glr_config),
        "epidemic_config": _canonical(task.epidemic_config),
        "spray_config": _canonical(task.spray_config),
        "buffer_limit": task.buffer_limit,
    }


def _payload_key(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def task_key(task: ReplicateTask) -> str:
    """Content hash addressing one task's cached metrics."""
    return _payload_key(task_payload(task))


def legacy_task_key(task: ReplicateTask) -> str | None:
    """The v2-era content hash of a task, or ``None`` (no v2 identity)."""
    payload = legacy_task_payload(task)
    return _payload_key(payload) if payload is not None else None


def _decode_metrics(
    payload: object,
    task: ReplicateTask,
    expected_format: int = CACHE_FORMAT,
) -> SimulationMetrics | None:
    """Rebuild metrics from a cache payload; ``None`` if anything is off."""
    if not isinstance(payload, dict):
        return None
    if payload.get("format") != expected_format:
        return None
    try:
        metrics = SimulationMetrics.from_json(payload.get("metrics"))
    except ValueError:
        return None
    if metrics.protocol != task.protocol:
        return None
    return metrics


class ResultCache:
    """On-disk JSON store of per-task metrics, addressed by content hash.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is
    :func:`task_key`.  Each file holds the format version, the full key
    payload (for human inspection), and the serialised metrics.  Writes
    are atomic (temp file + rename) so a killed campaign never leaves a
    half-written entry that a resume would trust; loads validate the
    payload and fall back to recomputation on any mismatch.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        # Key derivation is a full canonical JSON dump + sha256 (plus
        # a stat for trace mobility); load+store on a miss would pay
        # it twice per task without this memo.
        self._key_memo: dict[ReplicateTask, str] = {}

    def _key(self, task: ReplicateTask) -> str:
        if _is_trace_mobility(task.scenario):
            # Trace keys hash the trace *file*, which can change under
            # a long-lived cache; memoising would pin the stale key and
            # defeat the content-hash invalidation.
            return task_key(task)
        key = self._key_memo.get(task)
        if key is None:
            key = task_key(task)
            self._key_memo[task] = key
        return key

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (existing or not)."""
        return self.root / key[:2] / f"{key}.json"

    def _read(self, key: str) -> object | None:
        try:
            return json.loads(
                self.path_for(key).read_text(encoding="utf-8")
            )
        except (OSError, ValueError, UnicodeDecodeError):
            return None

    def load(self, task: ReplicateTask) -> SimulationMetrics | None:
        """Cached metrics for ``task``, or ``None`` (counted as a miss).

        Falls back to the task's v2-era key when the v3 entry is
        missing (read-path migration): a valid legacy entry is
        re-stored under the current key so the next lookup is a direct
        hit, and old caches keep their value across the format bump.
        """
        metrics = _decode_metrics(self._read(self._key(task)), task)
        if metrics is None:
            legacy_key = legacy_task_key(task)
            if legacy_key is not None:
                metrics = _decode_metrics(
                    self._read(legacy_key),
                    task,
                    expected_format=_LEGACY_CACHE_FORMAT,
                )
                if metrics is not None:
                    self.store(task, metrics)
        if metrics is None:
            self.misses += 1
            return None
        self.hits += 1
        return metrics

    def store(self, task: ReplicateTask, metrics: SimulationMetrics) -> None:
        """Atomically persist ``metrics`` under ``task``'s key."""
        path = self.path_for(self._key(task))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": CACHE_FORMAT,
            "key": task_payload(task),
            # The same canonical serialisation the load path validates
            # with from_json (and the metrics stream writes).
            "metrics": metrics.to_json(),
        }
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True, indent=1), encoding="utf-8"
        )
        os.replace(tmp, path)

    @property
    def lookups(self) -> int:
        """Total load attempts so far."""
        return self.hits + self.misses


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TaskProgress:
    """One progress tick: ``done`` of ``total`` tasks finished."""

    done: int
    total: int
    task: ReplicateTask
    cached: bool
    #: Where the result came from: ``"ran"``, ``"cache"``, or
    #: ``"stream"`` (already recorded in a metrics stream and skipped).
    source: str = ""


ProgressCallback = Callable[[TaskProgress], None]

#: ``record(index, task, metrics, cached, wall_time_s, phase_profile)``
#: — called once per finished task (the metrics-stream hook); ``index``
#: is the task's position in the list handed to :func:`execute_tasks`,
#: so callers can correlate results with precomputed per-task state
#: (cache keys) without relying on object identity.  ``phase_profile``
#: is the per-phase seconds dict when ``REPRO_PROFILE_PHASES`` is set,
#: else ``None`` (cache hits are always ``None`` — nothing ran).
RecordCallback = Callable[
    [int, ReplicateTask, SimulationMetrics, bool, float, "dict | None"],
    None,
]


def _run_task(task: ReplicateTask, profiler=None) -> SimulationMetrics:
    """Simulate one task (module-level so it pickles into worker procs).

    Task fields keep the historical per-protocol config slots (they are
    part of the persisted cache-key schema); they are translated onto
    the unified ``protocol_config`` path here, quietly — stored tasks
    are not deprecated API use.
    """
    config = resolve_run_config(
        task.protocol,
        task.protocol_config,
        task.glr_config,
        task.epidemic_config,
        task.spray_config,
    )
    return run_single(
        task.scenario,
        task.protocol,
        buffer_limit=task.buffer_limit,
        protocol_config=config,
        profiler=profiler,
    )


#: Fault-injection knob for tests and CI: a float number of seconds to
#: sleep after every finished task.  The orchestrator's
#: ``--chaos-slow-shard`` sets it in one worker's environment to
#: simulate a slow machine (the scenario task stealing exists for);
#: process-pool children inherit it, so every simulation in that worker
#: is slowed uniformly.
CHAOS_TASK_SLEEP_ENV = "REPRO_CHAOS_TASK_SLEEP_S"


def _chaos_task_sleep() -> float:
    try:
        return max(0.0, float(os.environ.get(CHAOS_TASK_SLEEP_ENV, 0.0)))
    except (TypeError, ValueError):
        return 0.0


def _run_task_timed(
    task: ReplicateTask,
) -> tuple[SimulationMetrics, float, dict | None]:
    """Simulate one task: (metrics, wall seconds, phase profile or None).

    Timed inside the worker so the wall time measures the simulation,
    not pool queueing.  The phase profiler is created here (per task,
    from the ``REPRO_PROFILE_PHASES`` environment, which process-pool
    children inherit) so its snapshot pickles back with the result.
    """
    profiler = make_profiler()
    start = time.perf_counter()
    metrics = _run_task(task, profiler=profiler)
    delay = _chaos_task_sleep()
    if delay:
        time.sleep(delay)
    wall = time.perf_counter() - start
    profile = profiler.snapshot() if profiler.enabled else None
    return metrics, wall, profile


def execute_tasks(
    tasks: Sequence[ReplicateTask],
    workers: int = 1,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    record: RecordCallback | None = None,
) -> list[SimulationMetrics]:
    """Run every task, in input order, using cache and process pool.

    Each task is an independent simulation with a pre-derived seed, so
    the result list is identical whatever ``workers`` is; parallelism
    only changes wall-clock time.  ``record`` (if given) is called once
    per finished task with its metrics and wall time, in completion
    order — the hook the campaign metrics stream appends through.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    results: list[SimulationMetrics | None] = [None] * len(tasks)
    done = 0

    def tick(index: int, cached: bool) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(
                TaskProgress(
                    done,
                    len(tasks),
                    tasks[index],
                    cached,
                    source="cache" if cached else "ran",
                )
            )

    def finish(index: int, metrics: SimulationMetrics,
               cached: bool, wall: float,
               profile: dict | None = None) -> None:
        results[index] = metrics
        if record is not None:
            record(index, tasks[index], metrics, cached, wall, profile)
        tick(index, cached=cached)

    pending: list[int] = []
    for i, task in enumerate(tasks):
        metrics = cache.load(task) if cache is not None else None
        if metrics is not None:
            finish(i, metrics, cached=True, wall=0.0)
        else:
            pending.append(i)

    if pending and workers > 1 and len(pending) > 1:
        pool_size = min(workers, len(pending))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            futures = {
                pool.submit(_run_task_timed, tasks[i]): i for i in pending
            }
            for future in as_completed(futures):
                i = futures[future]
                metrics, wall, profile = future.result()
                if cache is not None:
                    cache.store(tasks[i], metrics)
                finish(i, metrics, cached=False, wall=wall, profile=profile)
    else:
        for i in pending:
            metrics, wall, profile = _run_task_timed(tasks[i])
            if cache is not None:
                cache.store(tasks[i], metrics)
            finish(i, metrics, cached=False, wall=wall, profile=profile)

    return [r for r in results if r is not None]


def run_replicate_specs(
    specs: Sequence[ReplicateSpec],
    workers: int = 1,
    cache_dir: str | Path | None = None,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
) -> list[list[SimulationMetrics]]:
    """Execute a batch of grid cells; one metrics list per input spec.

    All cells' tasks are flattened into one pool so parallelism spans
    the whole sweep rather than one cell at a time.  This is the entry
    the figure/table/ablation drivers route their replicate loops
    through.
    """
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    tasks: list[ReplicateTask] = []
    bounds: list[tuple[int, int]] = []
    for spec in specs:
        start = len(tasks)
        tasks.extend(spec.tasks())
        bounds.append((start, len(tasks)))
    flat = execute_tasks(tasks, workers=workers, cache=cache, progress=progress)
    return [flat[start:stop] for start, stop in bounds]


# ---------------------------------------------------------------------------
# Declarative campaigns
# ---------------------------------------------------------------------------

_SCENARIO_FIELDS = frozenset(f.name for f in dataclasses.fields(Scenario))

#: Grid axes whose values are coerced into config objects at spec
#: build time (so caches key on the resolved configuration, and
#: equivalent spellings dedupe).
_AXIS_COERCERS: dict[str, Callable] = {
    "mobility": as_mobility_config,
    "adversary": as_adversary_config,
}


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative sweep: base scenario x field grid x protocol axis.

    ``grid`` is an ordered tuple of ``(scenario_field, values)`` pairs;
    the campaign runs the cartesian product of all value axes, each
    combination under every protocol variant, ``replicates`` times.
    Grid scenarios are named ``<name>/<field>=<value>,...`` for
    reporting.

    A ``mobility`` axis sweeps movement models: its values may be model
    names (``"gauss-markov"``), mappings, or
    :class:`~repro.mobility.registry.MobilityConfig` objects — all are
    coerced on construction so the cache keys on the resolved config.

    ``protocols`` is likewise an axis of *protocol variants*: names
    (``"glr"``), mappings, or
    :class:`~repro.experiments.protocols.ProtocolConfig` values with
    swept config fields (``ProtocolConfig.of("glr", custody=False)``).
    All are coerced and validated on construction, so a typo'd or
    out-of-range config parameter fails at spec load, not mid-campaign.
    Variants with parameters are labelled ``glr(custody=False)`` in
    results.
    """

    name: str
    base: Scenario = field(default_factory=Scenario)
    grid: tuple[tuple[str, tuple], ...] = ()
    protocols: tuple = ("glr",)
    replicates: int = 3
    buffer_limit: int | None = None

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError("need at least one replicate")
        if not self.protocols:
            raise ValueError("need at least one protocol")
        object.__setattr__(
            self,
            "protocols",
            tuple(as_protocol_config(p) for p in self.protocols),
        )
        if len(set(self.protocols)) != len(self.protocols):
            # Duplicate variants would produce identically labelled
            # cells that silently overwrite each other in the result
            # map ("glr" and ProtocolConfig.of("glr") are the same).
            raise ValueError("protocol axis has duplicate variants")
        known = available_protocols()
        for config in self.protocols:
            if config.protocol not in known:
                raise ValueError(
                    f"unknown protocol {config.protocol!r}; "
                    f"choose from {known}"
                )
        if any(fname in ("mobility", "adversary") for fname, _ in self.grid):
            # Coerce before validation so name strings / mappings
            # dedupe against equivalent config values.  A zero-fraction
            # adversary coerces to None — the honest cell — so a
            # fraction sweep naturally includes its own control.
            object.__setattr__(
                self,
                "grid",
                tuple(
                    (fname, tuple(_AXIS_COERCERS[fname](v) for v in values))
                    if fname in _AXIS_COERCERS
                    else (fname, values)
                    for fname, values in self.grid
                ),
            )
        for fname, values in self.grid:
            if fname == "name" or fname not in _SCENARIO_FIELDS:
                raise ValueError(f"unknown scenario grid field {fname!r}")
            if not values:
                raise ValueError(f"grid field {fname!r} has no values")
            if len(set(values)) != len(values):
                # Duplicate values would produce identically named cells
                # that silently overwrite each other in the result map.
                raise ValueError(f"grid field {fname!r} has duplicate values")

    def scenarios(self) -> list[Scenario]:
        """The scenario grid, in deterministic sweep order."""
        if not self.grid:
            return [self.base.but(name=self.name)]
        fields = [fname for fname, _ in self.grid]
        axes = [values for _, values in self.grid]
        scenarios = []
        for combo in itertools.product(*axes):
            overrides = dict(zip(fields, combo))
            # A coerced zero-fraction adversary is None (the honest
            # control cell); label it "none" so the cell name round-
            # trips through as_adversary_config.
            label = ",".join(
                f"{k}={'none' if v is None else v}"
                for k, v in overrides.items()
            )
            scenarios.append(
                self.base.but(name=f"{self.name}/{label}", **overrides)
            )
        return scenarios

    def cells(self) -> list[tuple[Scenario, ProtocolConfig]]:
        """Every (scenario, protocol variant) cell, in sweep order."""
        return [
            (scenario, config)
            for scenario in self.scenarios()
            for config in self.protocols
        ]

    def cell_label(
        self, scenario: Scenario, config: ProtocolConfig
    ) -> tuple[str, str]:
        """The reporting key of one cell: (scenario name, protocol label)."""
        return (scenario.name, str(config))

    def cell_specs(self) -> list[tuple[tuple[str, str], ReplicateSpec]]:
        """(cell label, :class:`ReplicateSpec`) pairs, in sweep order.

        The single expansion point: labels and specs come out of one
        loop, so consumers never have to keep two independently built
        lists index-aligned.
        """
        return [
            (
                self.cell_label(scenario, config),
                ReplicateSpec(
                    scenario=scenario,
                    protocol=config.protocol,
                    runs=self.replicates,
                    buffer_limit=self.buffer_limit,
                    # ReplicateSpec normalises a paramless config to
                    # None itself, keeping task identities equal
                    # however the cell is spelled.
                    protocol_config=config,
                ),
            )
            for scenario, config in self.cells()
        ]

    def specs(self) -> list[ReplicateSpec]:
        """One :class:`ReplicateSpec` per (scenario, protocol) cell."""
        return [cell_spec for _, cell_spec in self.cell_specs()]

    def total_tasks(self) -> int:
        """Number of simulation leaves the campaign expands to."""
        return len(self.scenarios()) * len(self.protocols) * self.replicates

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        base = dataclasses.asdict(self.base)
        region = base.pop("region")
        base["region"] = [region["width"], region["height"]]
        base.pop("mobility")
        if self.base.mobility is not None:
            base["mobility"] = self.base.mobility.to_json()
        # Unset engine is omitted (like unset mobility) so spec hashes
        # — and therefore existing stream headers — are unchanged from
        # before the field existed.
        if base.get("engine") is None:
            base.pop("engine", None)
        # Same rule for the adversary axis: unset is omitted, set is
        # serialised via its own JSON form.
        base.pop("adversary", None)
        if self.base.adversary is not None:
            base["adversary"] = self.base.adversary.to_json()
        return {
            "name": self.name,
            "base": base,
            # An ordered list of [field, values] pairs, not an object:
            # JSON consumers (the stream header encodes with sorted
            # keys) must not be able to reorder the sweep axes, which
            # would rename every grid cell.
            "grid": [
                [
                    fname,
                    [
                        v.to_json()
                        if isinstance(v, (MobilityConfig, AdversaryConfig))
                        else v
                        for v in values
                    ],
                ]
                for fname, values in self.grid
            ],
            "protocols": [
                p.to_json() if p.params else p.protocol
                for p in self.protocols
            ],
            "replicates": self.replicates,
            "buffer_limit": self.buffer_limit,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        """Build a spec from a JSON document.

        ``base`` holds :class:`Scenario` field overrides (``region`` as
        a ``[width, height]`` pair, ``mobility`` as a model name or
        ``{"model": ..., "params": {...}}`` mapping); ``grid`` is
        either a mapping of scenario fields to value lists (hand-written
        specs) or an ordered list of ``[field, values]`` pairs (the
        :meth:`to_dict` form) — a ``mobility`` axis takes the same
        name/mapping forms, and ``protocols`` entries may be names or
        ``{"protocol": ..., "params": {...}}`` mappings.
        """
        from repro.mobility.base import Region

        base_overrides = dict(data.get("base", {}))
        unknown = set(base_overrides) - _SCENARIO_FIELDS
        if unknown:
            raise ValueError(f"unknown scenario fields {sorted(unknown)}")
        if "region" in base_overrides:
            width, height = base_overrides["region"]
            base_overrides["region"] = Region(float(width), float(height))
        grid_doc = data.get("grid", {})
        grid_pairs = (
            grid_doc.items() if isinstance(grid_doc, Mapping) else grid_doc
        )
        grid = tuple(
            (fname, tuple(values)) for fname, values in grid_pairs
        )
        return cls(
            name=str(data.get("name", "campaign")),
            base=Scenario().but(**base_overrides),
            grid=grid,
            protocols=tuple(data.get("protocols", ("glr",))),
            replicates=int(data.get("replicates", 3)),
            buffer_limit=data.get("buffer_limit"),
        )


@dataclass
class CampaignResult:
    """Executed campaign: per-cell replicate metrics plus cache stats."""

    spec: CampaignSpec
    metrics: dict[tuple[str, str], list[SimulationMetrics]]
    cache_hits: int = 0
    cache_misses: int = 0
    cache_enabled: bool = False
    #: Tasks skipped because a metrics stream already recorded them.
    stream_hits: int = 0
    #: Undecodable stream lines skipped when this result was rebuilt
    #: from a stream (read-only paths never repair; non-zero means
    #: some tasks' records were unreadable and are missing here).
    stream_damaged: int = 0

    def summaries(self) -> dict[tuple[str, str], MetricSummary]:
        """90% CI summary per (scenario name, protocol) cell."""
        return summarize_cells(self.metrics)

    def cache_line(self) -> str:
        """Human-readable cache statistics for progress output."""
        stream = (
            f"; stream: {self.stream_hits} tasks resumed"
            if self.stream_hits
            else ""
        )
        if not self.cache_enabled:
            return f"cache: disabled{stream}"
        total = self.cache_hits + self.cache_misses
        rate = 100.0 * self.cache_hits / total if total else 0.0
        return (
            f"cache: {self.cache_hits} hits, {self.cache_misses} misses "
            f"({rate:.1f}% hit rate){stream}"
        )

    def render(self) -> str:
        """Paper-style summary table of every campaign cell.

        The ``runs`` column shows how many replicates each cell's
        statistics actually aggregate — on a shard run or a partial
        stream it is less than the spec's replicate count, so half the
        data can never silently read as the full result.
        """
        rows = []
        for (scenario_name, protocol), runs in self.metrics.items():
            rows.append(
                [
                    scenario_name,
                    protocol,
                    str(len(runs)),
                    fmt_ci(ci_of(runs, "delivery_ratio"), digits=3),
                    fmt_ci(ci_of(runs, "average_latency")),
                    fmt_ci(ci_of(runs, "average_hops"), digits=2),
                    fmt_ci(ci_of(runs, "average_peak_storage")),
                ]
            )
        return render_table(
            f"campaign {self.spec.name}: {self.spec.replicates} replicates",
            [
                "scenario",
                "protocol",
                "runs",
                "delivery_ratio",
                "latency_s",
                "hops",
                "avg_peak_storage",
            ],
            rows,
        )


def campaign_spec_hash(spec: CampaignSpec) -> str:
    """Content hash identifying a campaign spec (stream/shard identity).

    Two shard runs belong to the same campaign exactly when their spec
    hashes match; :func:`~repro.experiments.stream.merge_streams`
    refuses anything else.  The hash covers the full declarative spec
    plus :data:`CACHE_FORMAT`, so a simulator-semantics bump separates
    streams the same way it separates caches.
    """
    blob = json.dumps(
        {"format": CACHE_FORMAT, "spec": spec.to_dict()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


#: One expanded campaign leaf: (cell label, task, content key).  The
#: key is derived once per task here and reused for shard selection,
#: stream resume, stream records, and the final stream rebuild —
#: task_key is a full canonical JSON dump + sha256 (plus a stat for
#: trace mobility), too expensive to recompute per use.
_CampaignEntry = tuple[tuple[str, str], ReplicateTask, str]


def _select_shard(
    entries: list[_CampaignEntry],
    shard_index: int | None,
    shard_count: int | None,
) -> list[_CampaignEntry]:
    if (shard_index is None) != (shard_count is None):
        raise ValueError(
            "shard_index and shard_count must be given together"
        )
    if shard_count is None:
        return entries
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard_index must be in [0, {shard_count}), got {shard_index}"
        )
    return [
        entry
        for entry in entries
        if stable_shard(entry[2], shard_count) == shard_index
    ]


def run_campaign(
    spec: CampaignSpec,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    progress: ProgressCallback | None = None,
    stream_path: str | Path | None = None,
    shard_index: int | None = None,
    shard_count: int | None = None,
    tasks_file: str | Path | None = None,
    wait_interval: float = 0.5,
    wait_timeout: float | None = None,
    on_wait: Callable[[], None] | None = None,
) -> CampaignResult:
    """Execute a declarative campaign and aggregate its grid.

    With ``stream_path``, every finished task appends one JSONL record
    to the campaign's metrics stream, tasks already recorded there are
    skipped entirely (stream resume), and the returned result is built
    *from the stream* — the stream is the source of truth, not
    in-memory state.  The stream is the campaign's primary resume
    medium: a killed run relaunched with the same ``stream_path`` runs
    only the tasks its stream does not hold yet, no result cache
    required.  ``cache_dir`` is an opt-in *second* layer whose value is
    cross-campaign reuse — per-task entries keyed by content survive
    spec renames and feed other sweeps that share tasks — not
    within-campaign resume.  With ``shard_index``/``shard_count``, only
    this shard's deterministic subset of tasks runs (partitioned by
    content key via :func:`repro.seeding.stable_shard`); shard streams
    are merged with :func:`~repro.experiments.stream.merge_streams` and
    aggregated with :func:`campaign_result_from_stream`.
    :func:`repro.experiments.orchestrator.orchestrate_campaign` wraps
    the whole fan-out (launch shards, supervise, merge) in one call.

    With ``tasks_file``, the worker executes the *explicit task-key
    list* a scheduler assignment file holds instead of a hash-derived
    shard: keys run in batches of the file's ``batch`` size, and the
    file is re-read between batches, so leases the supervisor reclaims
    (work stealing) are dropped before the worker reaches them and
    leases it grants mid-run are picked up.  When the file has no
    pending keys but is not ``closed``, the worker waits (calling
    ``on_wait`` each ``wait_interval`` poll — the CLI touches its
    heartbeat there) for more leases; a ``closed`` file with nothing
    pending ends the run.  ``wait_timeout`` bounds that wait: a live
    supervisor freshens the assignment file's mtime every supervision
    tick, so a file that stays untouched for ``wait_timeout`` seconds
    while the worker is idle means the supervisor died without closing
    it — the worker raises
    :class:`~repro.experiments.scheduler.AssignmentIdleTimeout` instead
    of polling forever as an orphan (``None``: wait indefinitely).
    Requires ``stream_path`` and conflicts with
    ``shard_index``/``shard_count``.

    Args:
        spec: the validated campaign (grid x protocols x replicates).
        workers: process-pool size for replicate simulations (1 =
            in-process serial execution).
        cache_dir: opt-in cross-campaign per-task result cache.
        progress: callback invoked per finished task.
        stream_path: JSONL metrics stream to append to and resume from.
        shard_index / shard_count: run only this hash-partitioned
            shard of the task set (both or neither; needs
            ``stream_path``).
        tasks_file: scheduler assignment file naming the exact task
            keys to run (the stealing orchestrator's worker mode).
        wait_interval: seconds between assignment-file polls while idle.
        wait_timeout: idle seconds on an untouched, unclosed assignment
            file before giving up (``None``: wait forever).
        on_wait: callback invoked once per idle poll.

    Returns:
        The aggregated :class:`CampaignResult`.  With ``stream_path``
        it is rebuilt from the stream (the source of truth), so cached,
        resumed, and freshly-run tasks are indistinguishable in it.

    Raises:
        ValueError: conflicting arguments (``tasks_file`` with shard
            args, shard args without ``stream_path``, or half a shard
            pair).
        StreamError: ``stream_path`` exists but is not this campaign's
            stream (bad header or mismatched spec hash).
        repro.experiments.scheduler.AssignmentIdleTimeout: the
            ``tasks_file`` supervisor went quiet past ``wait_timeout``.
    """
    if tasks_file is not None:
        if shard_index is not None or shard_count is not None:
            raise ValueError(
                "tasks_file and shard_index/shard_count both fix the "
                "task subset; pass one or the other"
            )
        if stream_path is None:
            raise ValueError(
                "tasks_file campaigns need stream_path: the stream is "
                "how the scheduler sees recorded tasks"
            )
        return _run_tasks_campaign(
            spec,
            tasks_file=tasks_file,
            stream_path=stream_path,
            workers=workers,
            cache_dir=cache_dir,
            progress=progress,
            wait_interval=wait_interval,
            wait_timeout=wait_timeout,
            on_wait=on_wait,
        )
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    # Entry keys feed shard selection and the stream (resume map,
    # records, rebuild); when neither is in play, skip the derivation
    # entirely (the cache memoises its own).
    need_keys = stream_path is not None or shard_count is not None
    entries: list[_CampaignEntry] = []
    for label, cell_spec in spec.cell_specs():
        entries.extend(
            (label, task, task_key(task) if need_keys else "")
            for task in cell_spec.tasks()
        )
    entries = _select_shard(entries, shard_index, shard_count)

    recorded: dict[str, dict] = {}
    record: RecordCallback | None = None
    if stream_path is not None:
        spec_hash = campaign_spec_hash(spec)
        info = init_stream(stream_path, spec_hash, spec.to_dict())
        recorded = {r["key"]: r for r in info.records}

        def record(index: int, task: ReplicateTask,
                   metrics: SimulationMetrics,
                   cached: bool, wall: float,
                   profile: dict | None = None) -> None:
            append_record(
                stream_path,
                make_task_record(
                    # pending is what execute_tasks runs, in order, so
                    # the callback index addresses its precomputed key.
                    key=pending[index][2],
                    scenario=task.scenario.name,
                    protocol=task.protocol_label,
                    replicate=task.replicate,
                    seed=task.scenario.seed,
                    metrics_json=metrics.to_json(),
                    cached=cached,
                    wall_time_s=wall,
                    phase_profile=profile,
                ),
            )

    pending: list[_CampaignEntry] = []
    stream_hits = 0
    done = 0
    total = len(entries)
    for label, task, key in entries:
        if recorded and key in recorded:
            stream_hits += 1
            done += 1
            if progress is not None:
                progress(
                    TaskProgress(
                        done, total, task, cached=True, source="stream"
                    )
                )
        else:
            pending.append((label, task, key))

    def shifted_progress(event: TaskProgress) -> None:
        if progress is not None:
            progress(
                dataclasses.replace(
                    event, done=event.done + stream_hits, total=total
                )
            )

    executed = execute_tasks(
        [task for _, task, _ in pending],
        workers=workers,
        cache=cache,
        progress=shifted_progress if progress is not None else None,
        record=record,
    )

    metrics: dict[tuple[str, str], list[SimulationMetrics]] = {}
    if stream_path is not None:
        # Aggregation consumes the stream: reload it so the result is
        # exactly what a later `campaign aggregate` would see.  No
        # repair here — our own records are fsync'd and complete, and
        # deleting someone else's in-flight line is the resume path's
        # call, not ours.
        info = load_stream(
            stream_path, campaign_spec_hash(spec), quarantine=False
        )
        by_key = {r["key"]: r for r in info.records}
        for label, _, key in entries:
            metrics.setdefault(label, []).append(
                SimulationMetrics.from_json(by_key[key]["metrics"])
            )
    else:
        # execute_tasks preserves input order, so results line up with
        # the pending entries one-to-one.
        for (label, _, _), run_metrics in zip(pending, executed):
            metrics.setdefault(label, []).append(run_metrics)

    return CampaignResult(
        spec=spec,
        metrics=metrics,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        cache_enabled=cache is not None,
        stream_hits=stream_hits,
    )


def _run_tasks_campaign(
    spec: CampaignSpec,
    tasks_file: str | Path,
    stream_path: str | Path,
    workers: int,
    cache_dir: str | Path | None,
    progress: ProgressCallback | None,
    wait_interval: float,
    wait_timeout: float | None,
    on_wait: Callable[[], None] | None,
) -> CampaignResult:
    """The ``--tasks FILE`` worker loop: lease batches until closed.

    The assignment file is the supervisor's half of the work-stealing
    protocol (:mod:`repro.experiments.scheduler`); this is the worker's
    half.  Strictly a reader of the file and an appender to its own
    stream — all coordination state lives in those two files.
    """
    if wait_interval <= 0:
        raise ValueError("wait_interval must be positive")
    if wait_timeout is not None and wait_timeout <= 0:
        raise ValueError("wait_timeout must be positive (or None)")
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    spec_hash = campaign_spec_hash(spec)
    entries: list[_CampaignEntry] = []
    for label, cell_spec in spec.cell_specs():
        entries.extend(
            (label, task, task_key(task)) for task in cell_spec.tasks()
        )
    by_key = {key: (label, task) for label, task, key in entries}

    info = init_stream(stream_path, spec_hash, spec.to_dict())
    recorded: set[str] = {record["key"] for record in info.records}
    #: Keys we have emitted a progress event for (skipped or executed).
    counted: set[str] = set()
    stream_hits = 0
    # Supervisor-liveness clock for the wait loop below: any sign of a
    # live supervisor — a rewrite (version) or even a bare mtime
    # freshen (the supervision loop touches every assignment file each
    # tick) — resets it.
    idle_since: float | None = None
    last_beacon: tuple[int, int] | None = None

    while True:
        doc = read_assignment(tasks_file)
        if doc.spec_hash != spec_hash:
            raise SchedulerError(
                f"assignment {tasks_file} belongs to spec hash "
                f"{doc.spec_hash[:12]}..., this campaign is "
                f"{spec_hash[:12]}...; refusing to mix campaigns"
            )
        unknown = [key for key in doc.keys if key not in by_key]
        if unknown:
            raise SchedulerError(
                f"assignment {tasks_file} lists {len(unknown)} task "
                f"key(s) this campaign does not expand to "
                f"(first: {unknown[0][:12]}...)"
            )
        pending = [key for key in doc.keys if key not in recorded]
        # `counted` spans every assignment version this worker has seen,
        # while the supervisor prunes done keys out of the file on each
        # rewrite — so the honest denominator is "everything ever
        # counted plus what is pending now", not the file's key count.
        total = len(counted) + len(pending)
        for key in doc.keys:
            if key in recorded and key not in counted:
                # Already in our stream (resume): skip it, visibly.
                counted.add(key)
                stream_hits += 1
                total = len(counted) + len(pending)
                if progress is not None:
                    progress(
                        TaskProgress(
                            len(counted), total, by_key[key][1],
                            cached=True, source="stream",
                        )
                    )
        if not pending:
            if doc.closed:
                break
            if wait_timeout is not None:
                try:
                    beacon = (
                        os.stat(tasks_file).st_mtime_ns, doc.version
                    )
                except OSError:
                    beacon = (0, doc.version)
                now = time.monotonic()
                if beacon != last_beacon or idle_since is None:
                    last_beacon = beacon
                    idle_since = now
                elif now - idle_since > wait_timeout:
                    raise AssignmentIdleTimeout(
                        f"assignment {tasks_file} has no pending tasks, "
                        f"is not closed, and went untouched for "
                        f"{now - idle_since:.0f}s (> wait_timeout "
                        f"{wait_timeout:.0f}s); assuming the supervisor "
                        f"died without closing it"
                    )
            if on_wait is not None:
                on_wait()
            time.sleep(wait_interval)
            continue
        idle_since = None
        last_beacon = None

        batch = pending[: doc.batch]
        batch_tasks = [by_key[key][1] for key in batch]
        done_before = len(counted)

        def record(index: int, task: ReplicateTask,
                   metrics: SimulationMetrics,
                   cached: bool, wall: float,
                   profile: dict | None = None) -> None:
            append_record(
                stream_path,
                make_task_record(
                    key=batch[index],
                    scenario=task.scenario.name,
                    protocol=task.protocol_label,
                    replicate=task.replicate,
                    seed=task.scenario.seed,
                    metrics_json=metrics.to_json(),
                    cached=cached,
                    wall_time_s=wall,
                    phase_profile=profile,
                ),
            )

        def batch_progress(event: TaskProgress) -> None:
            if progress is not None:
                progress(
                    dataclasses.replace(
                        event, done=done_before + event.done, total=total
                    )
                )

        execute_tasks(
            batch_tasks,
            workers=workers,
            cache=cache,
            progress=batch_progress if progress is not None else None,
            record=record,
        )
        recorded.update(batch)
        counted.update(batch)

    # The stream is the source of truth, exactly as in shard mode.  It
    # may hold keys later stolen *away* from this worker (we ran them
    # before the lease moved) — still valid records of this campaign.
    info = load_stream(stream_path, spec_hash, quarantine=False)
    by_stream = {record["key"]: record for record in info.records}
    metrics: dict[tuple[str, str], list[SimulationMetrics]] = {}
    for label, _, key in entries:
        record_doc = by_stream.get(key)
        if record_doc is not None:
            metrics.setdefault(label, []).append(
                SimulationMetrics.from_json(record_doc["metrics"])
            )
    return CampaignResult(
        spec=spec,
        metrics=metrics,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
        cache_enabled=cache is not None,
        stream_hits=stream_hits,
    )


def campaign_result_from_records(
    spec: CampaignSpec,
    records: Sequence[dict],
    stream_damaged: int = 0,
    source: str = "stream",
) -> CampaignResult:
    """Aggregate task records (stream lines) into a :class:`CampaignResult`.

    The shared rebuild step behind :func:`campaign_result_from_stream`
    (one finished stream) and the live watcher (an in-memory union of
    *growing* shard streams re-aggregated every tick).  Cells are
    ordered exactly as the live campaign orders them, so a complete
    record set renders byte-identically to the run that produced it;
    cells with no records yet are simply absent (the ``runs`` column
    makes partial coverage visible).  ``source`` names where the
    records came from, for error messages.
    """
    by_cell: dict[tuple[str, str], list[dict]] = {}
    for record in records:
        cell = (record["scenario"], record["protocol"])
        by_cell.setdefault(cell, []).append(record)
    known_cells = [
        spec.cell_label(scenario, config)
        for scenario, config in spec.cells()
    ]
    metrics: dict[tuple[str, str], list[SimulationMetrics]] = {}
    for cell in known_cells:
        cell_records = by_cell.pop(cell, None)
        if not cell_records:
            continue  # a shard/partial stream covers only part of the grid
        cell_records.sort(key=lambda r: r["replicate"])
        replicates = [r["replicate"] for r in cell_records]
        if len(set(replicates)) != len(replicates):
            # Two records for one (cell, replicate) under different
            # task keys means the stream holds multiple *generations*
            # of the campaign (e.g. a trace file edited in place, keys
            # rehashed, tasks rerun into the same stream).  There is no
            # way to know which generation is current from the stream
            # alone; aggregating both would silently skew the CIs.
            raise ValueError(
                f"{source} holds multiple records for cell "
                f"{cell} at the same replicate index — superseded task "
                f"generations; rerun the campaign with a fresh stream"
            )
        metrics[cell] = [
            SimulationMetrics.from_json(r["metrics"]) for r in cell_records
        ]
    if by_cell:
        raise ValueError(
            f"{source} has records for cells the spec does "
            f"not define: {sorted(by_cell)[:3]}"
        )
    return CampaignResult(
        spec=spec,
        metrics=metrics,
        stream_hits=len(records),
        stream_damaged=stream_damaged,
    )


def campaign_result_from_stream(
    stream_path: str | Path,
) -> CampaignResult:
    """Rebuild a campaign's aggregate purely from its metrics stream.

    The stream header carries the full spec document, so this works on
    a different machine than the one that ran the campaign — the
    decoupling sharded sweeps rely on: shards stream, one place merges
    and aggregates.  Cells are ordered exactly as the live campaign
    orders them, so a complete stream renders byte-identically to the
    run that produced it.
    """
    # Read-only: never repair a stream another process may be writing.
    info = load_stream(stream_path, quarantine=False)
    spec = CampaignSpec.from_dict(info.header["spec"])
    if campaign_spec_hash(spec) != info.spec_hash:
        raise ValueError(
            f"stream {stream_path} header is inconsistent: its spec "
            f"document does not hash to its spec_hash"
        )
    return campaign_result_from_records(
        spec,
        info.records,
        stream_damaged=info.quarantined,
        source=f"stream {stream_path}",
    )


def merge_caches(
    out_dir: str | Path, in_dirs: Sequence[str | Path]
) -> int:
    """Union shard result caches into ``out_dir``; returns entries copied.

    Entries are content-addressed, so a union is just copying files the
    target does not have yet; existing entries win (they are identical
    by construction when keys collide).
    """
    copied = 0
    out_root = Path(out_dir)
    for in_dir in in_dirs:
        root = Path(in_dir)
        if not root.is_dir():
            raise ValueError(f"cache dir {root} does not exist")
        for entry in sorted(root.glob("*/*.json")):
            target = out_root / entry.parent.name / entry.name
            if target.exists():
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
            tmp.write_bytes(entry.read_bytes())
            os.replace(tmp, target)
            copied += 1
    return copied
