"""Run-directory layout: the single authority for every artifact path.

An orchestrated campaign's run dir holds one spec document, one
stream/heartbeat/log/assignment file per shard slot, the merged output
stream, and (for multi-host runs) the elastic-membership hosts file.
Before this module those names were spelled independently in
``orchestrator.py``, ``scheduler.py``, and the ``campaign`` CLI — the
classic path-drift bug surface (one renamed artifact silently breaking
resume or ``watch --dir``).  :class:`RunLayout` is now the one place a
shard path is spelled:

- the *name* functions define the naming convention (pure strings, no
  filesystem), shared by local run dirs and the remote roots a
  :class:`~repro.experiments.transport.Transport` addresses — a
  supervisor's mirror copy of ``shard0.jsonl`` and the worker's copy on
  the remote host are the same name under two roots;
- the *path* accessors resolve names under this layout's root.

The names are frozen history: PR 4/5 run dirs already on disk use
exactly these strings, and resume reads them, so changing any of them
is a format break (``tests/experiments/test_layout.py`` pins them).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["RunLayout"]


@dataclass(frozen=True)
class RunLayout:
    """All artifact paths of one campaign run directory.

    Construct with any root — a local supervisor run dir, or the root a
    transport maps onto a remote host — and every artifact path follows.
    """

    root: Path

    def __init__(self, root: str | Path) -> None:
        object.__setattr__(self, "root", Path(root))

    # -- the naming convention (pure, no filesystem) --------------------

    @staticmethod
    def spec_name() -> str:
        """The campaign spec document handed to every worker."""
        return "spec.json"

    @staticmethod
    def merged_name() -> str:
        """The final merged stream the aggregate is built from."""
        return "campaign.jsonl"

    @staticmethod
    def hosts_name() -> str:
        """The elastic-membership file the supervisor polls for joins."""
        return "hosts.json"

    @staticmethod
    def stream_name(shard: int) -> str:
        """Shard ``shard``'s append-only JSONL metrics stream."""
        return f"shard{shard}.jsonl"

    @staticmethod
    def heartbeat_name(shard: int) -> str:
        """The file shard ``shard``'s worker touches per finished task."""
        return f"shard{shard}.heartbeat"

    @staticmethod
    def log_name(shard: int) -> str:
        """Shard ``shard``'s worker stdout/stderr log."""
        return f"shard{shard}.log"

    @staticmethod
    def assignment_name(shard: int) -> str:
        """Shard ``shard``'s scheduler assignment (lease) file."""
        return f"shard{shard}.tasks.json"

    @staticmethod
    def events_name() -> str:
        """The supervisor's (and, after merge, the run's) event log."""
        return "events.jsonl"

    @staticmethod
    def shard_events_name(shard: int) -> str:
        """Shard ``shard``'s worker-side event log.

        Deliberately **not** ``.jsonl`` — it must never match
        :data:`STREAM_GLOB`, or the merge would try to union events
        into the metric stream.
        """
        return f"shard{shard}.events"

    #: Glob matching every shard stream (and nothing else) in a run dir.
    STREAM_GLOB = "shard*.jsonl"

    # -- paths under this root ------------------------------------------

    @property
    def spec(self) -> Path:
        return self.root / self.spec_name()

    @property
    def merged_stream(self) -> Path:
        return self.root / self.merged_name()

    @property
    def hosts_file(self) -> Path:
        return self.root / self.hosts_name()

    def stream(self, shard: int) -> Path:
        return self.root / self.stream_name(shard)

    def heartbeat(self, shard: int) -> Path:
        return self.root / self.heartbeat_name(shard)

    def log(self, shard: int) -> Path:
        return self.root / self.log_name(shard)

    def assignment(self, shard: int) -> Path:
        return self.root / self.assignment_name(shard)

    @property
    def events(self) -> Path:
        return self.root / self.events_name()

    def shard_events(self, shard: int) -> Path:
        return self.root / self.shard_events_name(shard)

    def shard_streams(self) -> list[Path]:
        """Every existing shard stream under the root, in shard order.

        Lexicographic sort is wrong past 9 shards (``shard10`` sorts
        before ``shard2``), so order by the parsed shard index.
        """
        def index(path: Path) -> tuple[int, str]:
            digits = path.name[len("shard"):-len(".jsonl")]
            return (int(digits), path.name) if digits.isdigit() else (
                10**9, path.name
            )

        return sorted(self.root.glob(self.STREAM_GLOB), key=index)

    def ensure(self) -> "RunLayout":
        """Create the root directory (parents included); returns self."""
        self.root.mkdir(parents=True, exist_ok=True)
        return self
