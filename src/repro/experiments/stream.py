"""Streamed per-task campaign metrics: append-only JSONL files.

A campaign *stream* is the durable record of a campaign run: one JSON
line per finished simulation task, preceded by a header line carrying
the campaign spec and its content hash.  Streams replace monolithic
whole-campaign JSON results — each task appends its own record the
moment it finishes, so

- a killed campaign has lost nothing but the task that was in flight;
- a resumed campaign skips every task already recorded;
- shard runs on different machines each write their own stream, and
  :func:`merge_streams` unions them into one (refusing streams built
  from different specs and deduplicating overlap by task key);
- aggregation (:func:`repro.experiments.campaign
  .campaign_result_from_stream`) consumes the stream, not in-memory
  state, so "run" and "report" fully decouple.

Appends are crash-safe, not transactional: each record is a single
``write`` of one ``\\n``-terminated line followed by a flush+fsync, so
the only possible damage from a crash or a full disk is a torn *tail*.
:func:`load_stream` detects any undecodable line, moves the raw bytes
to a ``<stream>.quarantined`` sidecar, and atomically rewrites the
stream with the surviving records — a resume then recomputes exactly
the quarantined tasks.

Record schema (``kind == "task"``)::

    {"kind": "task", "key": <task content hash>,
     "scenario": <cell scenario name>, "protocol": <protocol label>,
     "replicate": <int>, "seed": <int>, "cached": <bool>,
     "wall_time_s": <float>, "metrics": {<SimulationMetrics JSON>}}

Header (first line, ``kind == "header"``)::

    {"kind": "header", "format": 1, "spec_hash": <sha256 hex>,
     "spec": {<CampaignSpec JSON document>}}
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.sim.stats import SimulationMetrics

#: Bump when the stream record schema changes incompatibly.
STREAM_FORMAT = 1

#: Fields every task record must carry to be loadable.
_TASK_FIELDS = frozenset(
    {"key", "scenario", "protocol", "replicate", "metrics"}
)


class StreamError(ValueError):
    """A stream file is unusable as a whole (bad header, wrong spec)."""


@dataclass(frozen=True)
class StreamInfo:
    """A loaded stream: its header, task records, and repair count."""

    path: Path
    header: dict
    records: list[dict]
    quarantined: int = 0

    @property
    def spec_hash(self) -> str:
        """The campaign spec hash the stream was built from."""
        return self.header["spec_hash"]

    def keys(self) -> set[str]:
        """Task content keys already recorded in the stream."""
        return {record["key"] for record in self.records}


def _encode_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def make_header(spec_hash: str, spec_doc: dict) -> dict:
    """The header record for a new stream."""
    return {
        "kind": "header",
        "format": STREAM_FORMAT,
        "spec_hash": spec_hash,
        "spec": spec_doc,
    }


def make_task_record(
    key: str,
    scenario: str,
    protocol: str,
    replicate: int,
    seed: int,
    metrics_json: dict,
    cached: bool,
    wall_time_s: float,
    phase_profile: dict | None = None,
) -> dict:
    """One task's stream record.

    ``phase_profile`` (per-phase seconds from the opt-in telemetry
    profiler) is provenance, like ``wall_time_s``/``cached``: it rides
    beside the metrics payload, never inside it, so profiler-on streams
    stay metric-identical to profiler-off ones.  The key is simply
    absent when profiling is off — readers tolerate extra fields
    (:data:`_TASK_FIELDS` is a subset check), so no format bump.
    """
    record = {
        "kind": "task",
        "key": key,
        "scenario": scenario,
        "protocol": protocol,
        "replicate": replicate,
        "seed": seed,
        "cached": cached,
        "wall_time_s": wall_time_s,
        "metrics": metrics_json,
    }
    if phase_profile is not None:
        record["phase_profile"] = phase_profile
    return record


def init_stream(
    path: str | Path, spec_hash: str, spec_doc: dict
) -> StreamInfo:
    """Open a stream for appending: create it, or validate and repair.

    A missing or empty file gets a fresh header.  An existing stream is
    loaded (quarantining any torn tail) and must carry ``spec_hash`` —
    appending records of one campaign to another campaign's stream is
    refused rather than silently mixing incomparable results.
    """
    target = Path(path)
    if target.exists() and target.stat().st_size > 0:
        return load_stream(target, expected_spec_hash=spec_hash)
    target.parent.mkdir(parents=True, exist_ok=True)
    header = make_header(spec_hash, spec_doc)
    _atomic_write(target, [header])
    return StreamInfo(path=target, header=header, records=[])


def append_record(path: str | Path, record: dict) -> None:
    """Append one record, crash-safely.

    One line, one ``write``, then flush+fsync: a crash can tear only
    the final line, which the next :func:`load_stream` quarantines.
    """
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(_encode_line(record))
        handle.flush()
        os.fsync(handle.fileno())


def _parse_line(line: str) -> dict | None:
    """A validated record, or ``None`` for anything undecodable."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict):
        return None
    kind = record.get("kind")
    if kind == "header":
        if record.get("format") != STREAM_FORMAT:
            return None
        if not isinstance(record.get("spec_hash"), str):
            return None
        if not isinstance(record.get("spec"), dict):
            return None
        return record
    if kind == "task":
        if not _TASK_FIELDS <= set(record):
            return None
        try:
            # Validate as strictly as the aggregation that will consume
            # the record.  A line that decodes as JSON but carries an
            # unusable metrics payload must count as damage *here* —
            # otherwise resume would trust its key, skip the task, and
            # every later rebuild would fail on it forever.
            SimulationMetrics.from_json(record.get("metrics"))
        except ValueError:
            return None
        return record
    return None


def load_stream(
    path: str | Path,
    expected_spec_hash: str | None = None,
    quarantine: bool = True,
) -> StreamInfo:
    """Load a stream, quarantining undecodable lines.

    The common damage is a torn tail from a crash mid-append; any line
    that does not decode into a valid record is moved (raw) to
    ``<stream>.quarantined`` and the stream is atomically rewritten
    with the surviving records, so the quarantined tasks simply rerun
    on resume.  A missing/invalid header or a ``spec_hash`` mismatch
    raises :class:`StreamError` — that is not damage, it is the wrong
    file.

    Pass ``quarantine=False`` on read-only paths (aggregation, merge):
    when the stream's campaign is still running, a reader can catch the
    final line mid-append, and repairing would *delete* a record whose
    writer completes it a moment later.  Only the stream's own writer
    (the resume path) should repair.
    """
    target = Path(path)
    try:
        text = target.read_text(encoding="utf-8", errors="surrogateescape")
    except OSError as exc:
        raise StreamError(f"cannot read stream {target}: {exc}") from exc

    header: dict | None = None
    records: list[dict] = []
    bad_lines: list[str] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = _parse_line(line)
        if record is None:
            bad_lines.append(line)
        elif record["kind"] == "header":
            if header is None:
                header = record
            else:
                # A second header is noise (e.g. a botched manual cat).
                bad_lines.append(line)
        else:
            records.append(record)

    if header is None:
        raise StreamError(
            f"stream {target} has no valid header line; not a campaign "
            f"stream (or format {STREAM_FORMAT} mismatch)"
        )
    if (
        expected_spec_hash is not None
        and header["spec_hash"] != expected_spec_hash
    ):
        raise StreamError(
            f"stream {target} was built from spec hash "
            f"{header['spec_hash'][:12]}..., expected "
            f"{expected_spec_hash[:12]}...; refusing to mix campaigns"
        )

    if bad_lines and quarantine:
        sidecar = target.with_name(target.name + ".quarantined")
        with open(sidecar, "a", encoding="utf-8",
                  errors="surrogateescape") as handle:
            for line in bad_lines:
                handle.write(line + "\n")
        _atomic_write(target, [header, *records])

    return StreamInfo(
        path=target,
        header=header,
        records=records,
        quarantined=len(bad_lines),
    )


def _atomic_write(path: Path, records: Sequence[dict]) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(_encode_line(record))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _record_sort_key(record: dict) -> tuple:
    return (
        record["scenario"],
        record["protocol"],
        record["replicate"],
        record["key"],
    )


def stream_task_count(path: str | Path) -> int:
    """How many *complete* task lines ``path`` holds right now, cheaply.

    A monitoring probe, not a loader: it counts ``\\n``-terminated lines
    (minus the header) without JSON-decoding anything.  An in-flight
    tail (no trailing newline yet) is simply not counted.  Missing or
    empty files count as zero — the worker has not started writing.
    For repeated polling of a growing stream use
    :class:`StreamTailCounter`, which reads only the appended suffix.
    """
    try:
        with open(path, "rb") as handle:
            lines = handle.read().count(b"\n")
    except OSError:
        return 0
    return max(0, lines - 1)


class _TailCursor:
    """The shared suffix-reading mechanics of the stream tail pollers.

    One delicate invariant, implemented once: read only the bytes
    appended since the last call, never advance past the last complete
    line (an in-flight tail is re-examined next time, not mis-read),
    and start over when the file shrinks or vanishes (a relaunched
    worker's resume repaired a torn tail and atomically rewrote the
    stream).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._offset = 0

    def advance(self) -> tuple[bytes, bool]:
        """``(newly completed line bytes, started_over)``.

        ``started_over`` is True when the cursor reset to byte zero
        (shrunk or missing file), in which case the returned bytes —
        this call's or a later one's — re-cover content a previous
        call already returned.
        """
        try:
            size = os.stat(self.path).st_size
        except OSError:
            reset = self._offset > 0
            self._offset = 0
            return b"", reset
        reset = False
        if size < self._offset:
            self._offset = 0
            reset = True
        if size <= self._offset:
            return b"", reset
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read(size - self._offset)
        last_newline = chunk.rfind(b"\n")
        if last_newline < 0:
            return b"", reset
        self._offset += last_newline + 1
        return chunk[: last_newline + 1], reset


class StreamTailCounter:
    """Incremental :func:`stream_task_count` for an append-only stream.

    A supervisor polls worker streams several times a second for the
    whole campaign; re-reading a growing file from byte zero each tick
    would make supervision I/O quadratic in stream size.  This counter
    counts only the appended suffix (see :class:`_TailCursor` for the
    offset discipline) and recounts from scratch when the stream was
    rewritten shorter underneath it.
    """

    def __init__(self, path: str | Path) -> None:
        self._cursor = _TailCursor(path)
        self.path = self._cursor.path
        self._newlines = 0

    def count(self) -> int:
        """Complete task lines in the stream right now (header excluded)."""
        chunk, reset = self._cursor.advance()
        if reset:
            self._newlines = 0
        self._newlines += chunk.count(b"\n")
        return max(0, self._newlines - 1)


class StreamTailKeys:
    """Incremental reader of the task *keys* appended to a live stream.

    The work-stealing supervisor needs more than a line count: deciding
    which leases are safe to reclaim from a slow worker requires knowing
    *which* tasks its stream already records.  Built on the same
    :class:`_TailCursor` suffix discipline as :class:`StreamTailCounter`.
    Complete lines that do not decode into a task record (the header,
    damage) are skipped — classifying damage is the writer's resume
    path's job, not the supervisor's.  After a shrink-reset, keys are
    re-emitted from scratch; callers keep keys in a set, so that is
    harmless.
    """

    def __init__(self, path: str | Path) -> None:
        self._cursor = _TailCursor(path)
        self.path = self._cursor.path

    def poll(self) -> list[str]:
        """Task keys on complete lines appended since the last poll."""
        chunk, _ = self._cursor.advance()
        keys = []
        for raw in chunk.splitlines():
            line = raw.decode("utf-8", errors="surrogateescape")
            record = _parse_line(line)
            if record is not None and record["kind"] == "task":
                keys.append(record["key"])
        return keys


def union_records(infos: Sequence[StreamInfo]) -> list[dict]:
    """Union already-loaded streams' records, deduplicating by task key.

    The in-memory half of :func:`merge_streams`, shared with the live
    watcher (which unions *growing* shard streams every tick without
    writing anything).  All inputs must carry the same spec hash;
    duplicate keys collapse to one record, but records that *disagree*
    about a task's metrics raise :class:`StreamError` rather than pick
    a winner.  Duplicates that agree on metrics may still differ in
    provenance (``wall_time_s``, ``cached`` — one shard simulated the
    task, another cache-resumed it); the lexicographically smallest
    encoded record wins, so the output is invariant to input order.
    Records come back sorted by (scenario, protocol, replicate, key).
    """
    if not infos:
        raise StreamError("nothing to union: no input streams")
    first = infos[0]
    for info in infos[1:]:
        if info.spec_hash != first.spec_hash:
            raise StreamError(
                f"cannot merge {info.path} (spec hash "
                f"{info.spec_hash[:12]}...) into a merge of {first.path} "
                f"(spec hash {first.spec_hash[:12]}...); shards must come "
                f"from the same campaign spec"
            )
    by_key: dict[str, dict] = {}
    for info in infos:
        for record in info.records:
            existing = by_key.get(record["key"])
            if existing is None:
                by_key[record["key"]] = record
            elif existing["metrics"] != record["metrics"]:
                raise StreamError(
                    f"shards disagree on task {record['key'][:12]}... "
                    f"({record['scenario']} {record['protocol']} "
                    f"#{record['replicate']}); refusing to merge "
                    f"conflicting metrics"
                )
            elif _encode_line(record) < _encode_line(existing):
                by_key[record["key"]] = record
    return sorted(by_key.values(), key=_record_sort_key)


def discover_streams(path: str | Path) -> list[Path]:
    """The stream files behind ``path``, a stream file or a run dir.

    The read-side entry point shared by the result store and the
    ``report`` CLI: a stream file stands for itself; a run directory
    resolves through :class:`~repro.experiments.layout.RunLayout` to
    its merged stream when one exists (the orchestrator wrote it at
    collection), else to every non-empty shard stream (a mid-run or
    uncollected dir).  Raises :class:`StreamError` when the directory
    holds no stream data at all, and for a missing file path.
    """
    target = Path(path)
    if target.is_dir():
        from repro.experiments.layout import RunLayout

        layout = RunLayout(target)
        merged = layout.merged_stream
        if merged.exists() and merged.stat().st_size > 0:
            return [merged]
        shards = [
            p for p in layout.shard_streams() if p.stat().st_size > 0
        ]
        if not shards:
            raise StreamError(
                f"run directory {target} holds no campaign streams "
                f"(no {layout.merged_name()}, no non-empty "
                f"{RunLayout.STREAM_GLOB})"
            )
        return shards
    if not target.exists():
        raise StreamError(f"no stream file or run directory at {target}")
    return [target]


def load_union(
    paths: Sequence[str | Path],
    expected_spec_hash: str | None = None,
) -> StreamInfo:
    """Load and union several streams without writing anything.

    The in-memory counterpart of :func:`merge_streams` for read-only
    consumers (the result store, one-shot reports): every input is
    loaded with ``quarantine=False`` — a live writer may be mid-append
    — and deduplicated through :func:`union_records`, so the returned
    record list is exactly what a :func:`merge_streams` output file
    would hold.  The returned info's ``path`` is the first input and
    its ``quarantined`` count sums undecodable lines across all inputs
    (those tasks are missing from the union).
    """
    if not paths:
        raise StreamError("nothing to load: no input streams")
    infos = [
        load_stream(p, expected_spec_hash=expected_spec_hash,
                    quarantine=False)
        for p in paths
    ]
    return StreamInfo(
        path=infos[0].path,
        header=infos[0].header,
        records=union_records(infos),
        quarantined=sum(info.quarantined for info in infos),
    )


def merge_streams(
    out_path: str | Path, in_paths: Sequence[str | Path]
) -> StreamInfo:
    """Union shard streams into one file, deduplicating by task key.

    All inputs must carry the same spec hash (shards of one campaign);
    anything else raises :class:`StreamError` naming the offending
    file.  Dedup/conflict semantics are :func:`union_records`'s; the
    (scenario, protocol, replicate, key) output sort plus its canonical
    duplicate winner mean merging the same shards in any order produces
    byte-identical files.
    """
    if not in_paths:
        raise StreamError("nothing to merge: no input streams")
    # Read-only with respect to the inputs: a shard stream may still be
    # live (its campaign appending); repair belongs to the writer's
    # resume path, not to a reader that might catch a line mid-append.
    infos = [load_stream(p, quarantine=False) for p in in_paths]
    merged = union_records(infos)
    target = Path(out_path)
    target.parent.mkdir(parents=True, exist_ok=True)
    _atomic_write(target, [infos[0].header, *merged])
    return StreamInfo(
        path=target,
        header=infos[0].header,
        records=merged,
        # Undecodable lines skipped across the inputs: the caller
        # should surface this — those tasks are absent from the merge.
        quarantined=sum(info.quarantined for info in infos),
    )
