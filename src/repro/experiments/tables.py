"""Drivers regenerating the paper's tables.

Same contract as :mod:`repro.experiments.figures`: each driver runs the
simulations behind one table and returns rows directly comparable to the
paper's, scaled by an :class:`repro.experiments.common.Effort`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from pathlib import Path

from repro.analysis.render import render_table
from repro.core.location import LocationMode
from repro.core.protocol import GLRConfig
from repro.experiments.campaign import ReplicateSpec, run_replicate_specs
from repro.experiments.common import BENCH_EFFORT, Effort, ci_of, fmt_ci
from repro.experiments.scenarios import Scenario
from repro.mobility.registry import MobilityConfig


@dataclass
class TableResult:
    """One table's rows (already formatted paper-style)."""

    experiment: str
    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list[str]] = field(default_factory=list)

    def render(self) -> str:
        """Paper-comparable ASCII rendering."""
        return render_table(
            f"{self.experiment}: {self.title}", self.headers, self.rows
        )


# ---------------------------------------------------------------------------
# Table 2 — location-information availability
# ---------------------------------------------------------------------------

def table2_location(
    effort: Effort = BENCH_EFFORT,
    radius: float = 100.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """Table 2: delivery under four destination-knowledge situations.

    Rows (as in the paper):
      1 copy  / all nodes know (oracle)
      3 copies / only source knows
      1 copy  / only source knows
      3 copies / no nodes know (random initial guess)

    Expected ordering: oracle fastest; 3-copies-source beats
    1-copy-source (controlled flooding reduces latency); no-knowledge is
    slowest and may miss deliveries within the horizon.
    """
    situations = [
        ("1 copy", "all nodes know", 1, LocationMode.ORACLE),
        ("3 copies", "only source knows", 3, LocationMode.SOURCE),
        ("1 copy", "only source knows", 1, LocationMode.SOURCE),
        ("3 copies", "no nodes know", 3, LocationMode.NONE),
    ]
    result = TableResult(
        experiment="table2",
        title="message delivery under location information availability "
        f"({effort.message_count} messages, {radius:.0f}m)",
        headers=[
            "copies",
            "dest location",
            "delivery_rate",
            "latency_s",
            "hops",
            "avg_peak_storage",
        ],
    )
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"table2-{copies}-{mode.value}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol="glr",
            runs=effort.runs,
            glr_config=GLRConfig(copies_override=copies, location_mode=mode),
        )
        for _, _, copies, mode in situations
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for (copies_label, knowledge, _, _), runs in zip(situations, cells):
        result.rows.append(
            [
                copies_label,
                knowledge,
                fmt_ci(ci_of(runs, "delivery_ratio"), digits=3),
                fmt_ci(ci_of(runs, "average_latency")),
                fmt_ci(ci_of(runs, "average_hops")),
                fmt_ci(ci_of(runs, "average_peak_storage")),
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Table 3 — custody transfer on/off
# ---------------------------------------------------------------------------

def table3_custody(
    effort: Effort = BENCH_EFFORT,
    radius: float = 50.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """Table 3: delivery ratio with vs without custody transfer (50 m).

    Paper numbers (890 messages, 1200 s): 84.7%±1 without custody,
    97.9%±1 with.  The shape to reproduce: custody transfer recovers the
    deliveries lost to contention and link breakage.
    """
    result = TableResult(
        experiment="table3",
        title=f"delivery ratio with/without custody transfer "
        f"({effort.message_count} messages, {radius:.0f}m)",
        headers=["custody transfer", "delivery_ratio", "latency_s"],
    )
    custody_values = (False, True)
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"table3-custody-{custody}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol="glr",
            runs=effort.runs,
            glr_config=GLRConfig(custody=custody),
        )
        for custody in custody_values
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for custody, runs in zip(custody_values, cells):
        result.rows.append(
            [
                "with" if custody else "without",
                fmt_ci(ci_of(runs, "delivery_ratio"), digits=3),
                fmt_ci(ci_of(runs, "average_latency")),
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Table 4 — storage requirement vs message count
# ---------------------------------------------------------------------------

def table4_storage_vs_load(
    loads: tuple[int, ...] = (400, 600, 890, 1180, 1980),
    effort: Effort = BENCH_EFFORT,
    radius: float = 50.0,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """Table 4: GLR peak storage vs number of messages (50 m, 3 copies).

    Shape: both max and average peak grow sublinearly with load and stay
    far below epidemic's requirement (≈ every message in transit).
    """
    result = TableResult(
        experiment="table4",
        title=f"GLR storage requirement vs message count ({radius:.0f}m, "
        "3 copies)",
        headers=["messages", "max_peak_storage", "avg_peak_storage"],
    )
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"table4-{load}",
                radius=radius,
                message_count=load,
                sim_time=max(effort.sim_time, 1.5 * load),
                seed=seed,
                mobility=mobility,
            ),
            protocol="glr",
            runs=effort.runs,
            glr_config=GLRConfig(copies_override=3),
        )
        for load in loads
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for load, runs in zip(loads, cells):
        result.rows.append(
            [
                str(load),
                fmt_ci(ci_of(runs, "max_peak_storage")),
                fmt_ci(ci_of(runs, "average_peak_storage")),
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Table 5 — storage requirement vs radius
# ---------------------------------------------------------------------------

def table5_storage_vs_radius(
    radii: tuple[float, ...] = (250.0, 200.0, 150.0, 100.0, 50.0),
    effort: Effort = BENCH_EFFORT,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """Table 5: GLR peak storage vs radius (paper: 1980 messages).

    Copy counts follow Algorithm 1 (3 copies at 50/100 m, 1 copy at
    150/200/250 m), exactly as the paper configures this table.
    Shape: the longer the radius, the smaller the storage requirement.
    """
    result = TableResult(
        experiment="table5",
        title=f"GLR storage requirement vs radius "
        f"({effort.message_count} messages)",
        headers=["radius_m", "max_peak_storage", "avg_peak_storage"],
    )
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"table5-{radius}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol="glr",
            runs=effort.runs,
        )
        for radius in radii
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for radius, runs in zip(radii, cells):
        result.rows.append(
            [
                f"{radius:.0f}",
                fmt_ci(ci_of(runs, "max_peak_storage")),
                fmt_ci(ci_of(runs, "average_peak_storage")),
            ]
        )
    return result


# ---------------------------------------------------------------------------
# Table 6 — hop counts
# ---------------------------------------------------------------------------

def table6_hops(
    radii: tuple[float, ...] = (250.0, 200.0, 150.0, 100.0, 50.0),
    effort: Effort = BENCH_EFFORT,
    seed: int = 1,
    workers: int = 1,
    cache_dir: str | Path | None = None,
    mobility: MobilityConfig | str | None = None,
) -> TableResult:
    """Table 6: average hop count, GLR vs epidemic, across radii.

    Shape: GLR's hop counts exceed epidemic's (it re-forwards whenever
    relative positions change) and grow sharply as the radius shrinks,
    while epidemic's stay small (a message rides its carrier and jumps
    only on contact).
    """
    result = TableResult(
        experiment="table6",
        title=f"hop counts ({effort.message_count} messages)",
        headers=["radius_m", "glr_hops", "epidemic_hops"],
    )
    specs = [
        ReplicateSpec(
            scenario=Scenario(
                name=f"table6-{radius}",
                radius=radius,
                message_count=effort.message_count,
                sim_time=effort.sim_time,
                seed=seed,
                mobility=mobility,
            ),
            protocol=protocol,
            runs=effort.runs,
        )
        for radius in radii
        for protocol in ("glr", "epidemic")
    ]
    cells = run_replicate_specs(specs, workers=workers, cache_dir=cache_dir)
    for radius, glr_runs, epidemic_runs in zip(
        radii, cells[0::2], cells[1::2]
    ):
        result.rows.append(
            [
                f"{radius:.0f}",
                fmt_ci(ci_of(glr_runs, "average_hops"), digits=2),
                fmt_ci(ci_of(epidemic_runs, "average_hops"), digits=2),
            ]
        )
    return result
