"""Contention MAC: queues, backoff, collisions, half-duplex senders.

This is the abstraction of 802.11 DCF that carries the paper's central
mechanism — *contention grows with concurrent senders, and contention is
why uncontrolled flooding gets slow* (Sections 1, 2.2, 3.4).  What is
modelled, and why:

- **Per-node FIFO transmit queue** with a drop-tail limit (Table 1's
  "link layer queue length 150").  Queueing delay under load is the
  dominant latency term for epidemic routing at high message counts.
- **Carrier-sense backoff**: before each attempt the sender samples how
  many transmissions are active within its carrier-sense range and draws
  a uniform backoff from a contention window that doubles per retry and
  widens with the sensed load — the DCF feedback loop in expectation.
- **Collision loss**: each concurrent transmission near the *receiver*
  independently corrupts the frame with a fixed probability, so loss
  rises with local load (hidden terminals included, since the medium
  check is at the receiver).
- **Half-duplex**: a node transmits one frame at a time.
- **Mobility-aware delivery**: the receiver must still be in range at
  the *end* of the airtime; long backoffs under load let links break
  mid-exchange, as in the paper's "message was lost during transfer".

What is deliberately not modelled: RTS/CTS, capture effect, bitrate
adaptation, and PHY preambles beyond a fixed header.  None of these
change the direction of the load–latency relationship the evaluation
depends on.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.sim.engine import Simulator
from repro.sim.messages import Frame, FrameKind
from repro.sim.radio import RadioConfig
from repro.telemetry.profile import NULL_PROFILER, PHASE_MAC


@dataclass(frozen=True)
class MacConfig:
    """MAC behaviour knobs.

    Attributes:
        queue_limit: transmit-queue capacity in frames (Table 1: 150).
        slot_time: backoff slot in seconds (802.11b long slot: 20 us).
        cw_min: minimum contention window in slots.
        retry_limit: transmission attempts per frame before drop.
        collision_probability: per-interferer chance of corrupting a
            frame that overlaps it at the receiver.
    """

    queue_limit: int = 150
    slot_time: float = 20e-6
    cw_min: int = 32
    retry_limit: int = 4
    collision_probability: float = 0.12

    def __post_init__(self) -> None:
        if self.queue_limit <= 0:
            raise ValueError("queue limit must be positive")
        if self.slot_time <= 0:
            raise ValueError("slot time must be positive")
        if self.cw_min < 1:
            raise ValueError("cw_min must be >= 1")
        if self.retry_limit < 1:
            raise ValueError("retry limit must be >= 1")
        if not 0.0 <= self.collision_probability <= 1.0:
            raise ValueError("collision probability must be in [0, 1]")


@dataclass
class _ActiveTransmission:
    sender: NodeId
    position: Point
    start_time: float
    end_time: float


class Medium:
    """Shared-channel bookkeeping: who is on the air, and where.

    A registered transmission occupies the channel during
    ``[start_time, end_time)`` only.  Sensing is causal: a transmission
    whose backoff has not ended yet is invisible to other stations (DCF
    cannot see the future), so deferral never cascades through frames
    that are themselves still waiting.
    """

    def __init__(self, sim: Simulator, radio: RadioConfig):
        self._sim = sim
        self._radio = radio
        self._active: list[_ActiveTransmission] = []

    #: How long finished transmissions are kept for overlap queries.
    #: Completion-time collision checks look back over the frame's own
    #: airtime, so records must outlive their end by the longest frame.
    _GRACE = 1.0

    def _purge(self) -> None:
        horizon = self._sim.now - self._GRACE
        if any(t.end_time <= horizon for t in self._active):
            self._active = [t for t in self._active if t.end_time > horizon]

    def register(
        self,
        sender: NodeId,
        position: Point,
        start_time: float,
        end_time: float,
    ) -> None:
        """Record a transmission on air during ``[start_time, end_time)``."""
        self._purge()
        self._active.append(
            _ActiveTransmission(
                sender=sender,
                position=position,
                start_time=start_time,
                end_time=end_time,
            )
        )

    def _sensed(self, position: Point, exclude: NodeId | None):
        now = self._sim.now
        for t in self._active:
            if t.start_time > now or t.end_time <= now:
                continue
            if exclude is not None and t.sender == exclude:
                continue
            if self._radio.in_carrier_sense_range(t.position, position):
                yield t

    def contention_at(self, position: Point, exclude: NodeId | None = None) -> int:
        """Number of transmissions on air right now sensed at ``position``."""
        self._purge()
        return sum(1 for _ in self._sensed(position, exclude))

    def busy_until(self, position: Point, exclude: NodeId | None = None) -> float:
        """End of the latest currently-on-air transmission sensed there.

        Returns the current time when the medium is idle.  This is what
        DCF deferral waits for before starting its backoff.
        """
        self._purge()
        latest = self._sim.now
        for t in self._sensed(position, exclude):
            latest = max(latest, t.end_time)
        return latest

    def interferers_at(
        self, position: Point, start: float, end: float, exclude: NodeId | None = None
    ) -> int:
        """Transmissions overlapping ``[start, end)`` sensed at ``position``.

        Used for receiver-side collision checks at frame completion.
        """
        self._purge()
        count = 0
        for t in self._active:
            if exclude is not None and t.sender == exclude:
                continue
            if t.end_time <= start or t.start_time >= end:
                continue
            if self._radio.in_carrier_sense_range(t.position, position):
                count += 1
        return count

    def active_count(self) -> int:
        """Transmissions on air right now (diagnostics)."""
        self._purge()
        return sum(
            1
            for t in self._active
            if t.start_time <= self._sim.now < t.end_time
        )


class MacStats:
    """Counters one MAC instance accumulates (merged by the collector)."""

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost_collision = 0
        self.frames_lost_range = 0
        self.frames_dropped_queue = 0
        self.retries = 0
        self.bytes_sent = 0


class NodeMac:
    """One node's transmit path.

    ``deliver`` is invoked (via the event calendar) when a frame lands
    successfully at its receiver; loss is silent at this layer — custody
    transfer and anti-entropy provide recovery above it, exactly as in
    the paper.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        radio: RadioConfig,
        config: MacConfig,
        node_id: NodeId,
        position_fn: Callable[[NodeId, float], Point],
        deliver: Callable[[Frame], None],
        rng: random.Random,
        stats: Optional[MacStats] = None,
        profiler=NULL_PROFILER,
    ):
        self._sim = sim
        self._medium = medium
        self._radio = radio
        self._config = config
        self.node_id = node_id
        self._position_fn = position_fn
        self._deliver = deliver
        self._rng = rng
        self.stats = stats if stats is not None else MacStats()
        self._profiler = profiler
        self._queue: deque[Frame] = deque()
        self._busy = False

    def queue_length(self) -> int:
        """Frames waiting (not counting one in flight)."""
        return len(self._queue)

    def enqueue(self, frame: Frame) -> bool:
        """Queue a frame for transmission.

        Returns False (and drops the frame) when the transmit queue is at
        the Table 1 limit.  Acknowledgement frames jump the queue: 802.11
        sends control responses after a SIFS, ahead of any queued data,
        and custody transfer depends on ACKs not rotting behind a full
        data backlog.
        """
        if frame.sender != self.node_id:
            raise ValueError("frame sender must match the owning node")
        if len(self._queue) >= self._config.queue_limit:
            self.stats.frames_dropped_queue += 1
            return False
        if frame.kind is FrameKind.ACK:
            self._queue.appendleft(frame)
        else:
            self._queue.append(frame)
        if not self._busy:
            self._start_next()
        return True

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        frame = self._queue.popleft()
        self._attempt(frame, attempt=1)

    def _attempt(self, frame: Frame, attempt: int) -> None:
        t_prof = self._profiler.start()
        now = self._sim.now
        my_pos = self._position_fn(self.node_id, now)
        sensed = self._medium.contention_at(my_pos, exclude=self.node_id)
        # DCF deferral: wait out anything currently on the air in our
        # carrier-sense domain, then back off.  The deferral serializes
        # transmissions within a domain, which is where queueing delay
        # (the paper's contention effect) actually comes from; the
        # random backoff resolves ties among stations released together.
        idle_at = self._medium.busy_until(my_pos, exclude=self.node_id)
        cw = self._config.cw_min * (2 ** (attempt - 1)) * (1 + sensed)
        backoff = self._config.slot_time * self._rng.uniform(0, cw)
        airtime = self._radio.airtime(frame.airtime_bytes)
        start = max(now, idle_at) + backoff
        end = start + airtime
        self._medium.register(self.node_id, my_pos, start, end)
        self.stats.frames_sent += 1
        self.stats.bytes_sent += frame.airtime_bytes
        self._sim.schedule_at(
            end, lambda: self._complete(frame, attempt, start, end)
        )
        self._profiler.add(PHASE_MAC, t_prof)

    def _complete(
        self, frame: Frame, attempt: int, start: float, end: float
    ) -> None:
        # Profiling brackets close before _retry_or_drop/_deliver: the
        # retry's _attempt and the protocol's frame handling charge
        # their own phases, so MAC time here is just the completion
        # checks themselves.
        t_prof = self._profiler.start()
        now = self._sim.now
        my_pos = self._position_fn(self.node_id, now)
        try:
            peer_pos = self._position_fn(frame.receiver, now)
        except KeyError:
            peer_pos = None

        if peer_pos is None or not self._radio.in_range(my_pos, peer_pos):
            # Link broke during backoff + airtime (node moved away).
            self.stats.frames_lost_range += 1
            self._profiler.add(PHASE_MAC, t_prof)
            self._retry_or_drop(frame, attempt)
            return

        interferers = self._medium.interferers_at(
            peer_pos, start, end, exclude=self.node_id
        )
        p_survive = (1.0 - self._config.collision_probability) ** interferers
        if self._rng.random() > p_survive:
            self.stats.frames_lost_collision += 1
            self._profiler.add(PHASE_MAC, t_prof)
            self._retry_or_drop(frame, attempt)
            return

        self.stats.frames_delivered += 1
        self._profiler.add(PHASE_MAC, t_prof)
        self._deliver(frame)
        self._start_next()

    def _retry_or_drop(self, frame: Frame, attempt: int) -> None:
        if attempt < self._config.retry_limit:
            self.stats.retries += 1
            self._attempt(frame, attempt + 1)
        else:
            self._start_next()
