"""World orchestration: nodes, protocols, and the run loop.

A :class:`World` wires together one mobility model, one radio/MAC stack,
one neighbour service and one routing protocol instance per node, then
runs the event calendar.  Protocols interact with the world exclusively
through their :class:`NodeApi`, which scopes every query to the owning
node — a protocol cannot peek at another node's buffers, only at what
the beacon layer legitimately tells it (the oracle location query is the
single, clearly-marked exception, used for Table 2's "all nodes know the
destination location" row).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import MobilityModel
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.arraystate import ENGINES
from repro.sim.mac import MacConfig, MacStats, Medium, NodeMac
from repro.sim.messages import Frame, Message
from repro.sim.neighbors import LocationRecord, NeighborService
from repro.sim.radio import RadioConfig
from repro.seeding import derive_rng
from repro.sim.stats import MetricsCollector, SimulationMetrics
from repro.telemetry.profile import (
    NULL_PROFILER,
    PHASE_DELIVERY,
    PHASE_PROTOCOL,
)


@dataclass(frozen=True)
class WorldConfig:
    """Simulation-wide parameters (paper Table 1 defaults).

    Attributes:
        radio: physical layer settings.
        mac: MAC settings (queue limit, backoff, collisions).
        beacon_interval: neighbour/location refresh period (IMEP tick).
        ldt_k: locality parameter of the LDTG construction (paper: 2).
        seed: master seed; per-node RNGs derive from it.
        storage_sample_interval: cadence of occupancy sampling.
        engine: simulation core ("reference"/"vectorized"); ``None``
            defers to the ``REPRO_ENGINE`` environment variable.
    """

    radio: RadioConfig = field(default_factory=RadioConfig)
    mac: MacConfig = field(default_factory=MacConfig)
    beacon_interval: float = 1.0
    ldt_k: int = 2
    seed: int = 0
    storage_sample_interval: float = 5.0
    engine: str | None = None

    def __post_init__(self) -> None:
        if self.beacon_interval <= 0:
            raise ValueError("beacon interval must be positive")
        if self.ldt_k < 1:
            raise ValueError("ldt_k must be >= 1")
        if self.storage_sample_interval <= 0:
            raise ValueError("storage sample interval must be positive")
        if self.engine is not None and self.engine not in ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; choose one of "
                + ", ".join(ENGINES)
            )


class Protocol(abc.ABC):
    """Per-node routing protocol instance.

    Lifecycle: constructed by the factory, :meth:`attach`-ed to its node
    API, :meth:`start`-ed when the world begins running, then driven by
    :meth:`on_message_created` (locally generated traffic) and
    :meth:`on_frame` (frames arriving from the MAC).
    """

    name: str = "abstract"

    def __init__(self) -> None:
        self.api: "NodeApi | None" = None

    def attach(self, api: "NodeApi") -> None:
        """Bind this protocol instance to its node."""
        self.api = api

    @abc.abstractmethod
    def start(self) -> None:
        """Schedule timers; called once before the run."""

    @abc.abstractmethod
    def on_message_created(self, message: Message) -> None:
        """A message originated at this node."""

    @abc.abstractmethod
    def on_frame(self, frame: Frame) -> None:
        """A frame addressed to this node arrived."""

    @abc.abstractmethod
    def storage_occupancy(self) -> int:
        """Messages currently held (for storage metrics)."""

    @abc.abstractmethod
    def storage_peak(self) -> int:
        """High-water mark of messages held."""

    def sample_storage(self, now: float) -> None:
        """Record a time-weighted occupancy sample (optional)."""

    def storage_time_average(self, horizon: float) -> float:
        """Time-averaged occupancy over the run (optional)."""
        return 0.0


class NodeApi:
    """The window through which one protocol instance sees the world."""

    def __init__(self, world: "World", node_id: NodeId):
        self._world = world
        self.node_id = node_id
        self.rng = derive_rng(world.config.seed, repr(node_id), "node")

    # -- time and scheduling -------------------------------------------

    def now(self) -> float:
        """Current simulation time."""
        return self._world.sim.now

    def schedule(self, delay: float, callback: Callable[[], None]):
        """One-shot timer."""
        return self._world.sim.schedule(delay, callback)

    def periodic(
        self, interval: float, callback: Callable[[], None], jitter: float = 0.0
    ) -> PeriodicTask:
        """Self-rescheduling timer with optional jitter from the node RNG."""
        return PeriodicTask(
            self._world.sim,
            interval,
            callback,
            jitter=jitter,
            uniform=self.rng.uniform,
            start_offset=self.rng.uniform(0.0, interval),
        )

    # -- communication ---------------------------------------------------

    def send(self, frame: Frame) -> bool:
        """Hand a frame to the MAC; False when the transmit queue is full."""
        return self._world.macs[self.node_id].enqueue(frame)

    def mac_queue_length(self) -> int:
        """Frames waiting in this node's transmit queue."""
        return self._world.macs[self.node_id].queue_length()

    # -- neighbourhood (beacon-fresh, i.e. possibly stale) ---------------

    def neighbors(self) -> set[NodeId]:
        """One-hop neighbours as of the last beacon."""
        return self._world.neighbor_service.neighbors(self.node_id)

    def neighbor_positions(self) -> dict[NodeId, Point]:
        """Beaconed positions of one-hop neighbours."""
        return self._world.neighbor_service.neighbor_positions(self.node_id)

    def k_hop(self, k: int) -> set[NodeId]:
        """k-hop neighbourhood from the beacon snapshot."""
        return self._world.neighbor_service.k_hop(self.node_id, k)

    def ldt_neighbors(self) -> set[NodeId]:
        """This node's k-LDTG neighbours for the current beacon epoch."""
        return self._world.neighbor_service.ldt_neighbors(self.node_id)

    def beacon_epoch(self) -> int:
        """Monotone counter of beacon refreshes (topology-change hint)."""
        return self._world.neighbor_service.epoch

    def beacon_position(self, node: NodeId) -> Point:
        """Another node's position as of the last beacon epoch."""
        return self._world.neighbor_service.beacon_position(node)

    # -- own position (GPS) ----------------------------------------------

    def position(self) -> Point:
        """This node's true current position (GPS assumption)."""
        return self._world.mobility.position(self.node_id, self.now())

    # -- location tables (diffusion) --------------------------------------

    def location_of(self, subject: NodeId) -> LocationRecord | None:
        """This node's belief about ``subject``'s location."""
        return self._world.neighbor_service.location_of(self.node_id, subject)

    def learn_location(self, subject: NodeId, record: LocationRecord) -> bool:
        """Adopt a location belief if fresher.  Returns True on update."""
        return self._world.neighbor_service.learn_location(
            self.node_id, subject, record
        )

    def oracle_position_of(self, node: NodeId) -> Point:
        """True current position of any node.

        This bypasses every information constraint and exists solely for
        the "all nodes know the destination location" row of Table 2.
        """
        return self._world.mobility.position(node, self.now())

    # -- environment -------------------------------------------------------

    @property
    def config(self) -> WorldConfig:
        """World-level configuration."""
        return self._world.config

    @property
    def metrics(self) -> MetricsCollector:
        """Shared metrics collector."""
        return self._world.metrics

    @property
    def n_nodes(self) -> int:
        """Total node population (Algorithm 1 density input)."""
        return len(self._world.mobility.node_ids)

    @property
    def region_area(self) -> float:
        """Deployment area in m^2 (Algorithm 1 density input)."""
        return self._world.mobility.region.area


class World:
    """A complete simulation: mobility + stack + protocols + metrics."""

    def __init__(
        self,
        mobility: MobilityModel,
        protocol_factory: Callable[[NodeId], Protocol],
        config: WorldConfig | None = None,
        profiler=None,
        adversary=None,
    ):
        self.config = config if config is not None else WorldConfig()
        self.mobility = mobility
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self.sim = Simulator()
        self.metrics = MetricsCollector(profiler=self.profiler)
        self.medium = Medium(self.sim, self.config.radio)
        self.neighbor_service = NeighborService(
            self.sim,
            mobility,
            self.config.radio,
            beacon_interval=self.config.beacon_interval,
            ldt_k=self.config.ldt_k,
            on_control_bytes=self.metrics.on_control_bytes,
            profiler=self.profiler,
            engine=self.config.engine,
        )
        #: The resolved engine actually driving rebuilds ("reference"
        #: or "vectorized"), after env-var fallback.
        self.engine = self.neighbor_service.engine

        self.protocols: dict[NodeId, Protocol] = {}
        self.macs: dict[NodeId, NodeMac] = {}
        self._mac_stats: dict[NodeId, MacStats] = {}
        self._started = False
        self._message_seq: dict[NodeId, int] = {}
        #: The adversary plan in force (an
        #: :class:`repro.sim.adversary.AdversaryPlan`) and the wrapper
        #: instances it installed, keyed by compromised node — honest
        #: worlds leave both empty.
        self.adversary = adversary
        self.adversaries: dict[NodeId, Protocol] = {}

        for node in mobility.node_ids:
            protocol = protocol_factory(node)
            if adversary is not None and node in adversary.nodes:
                protocol = adversary.wrap(node, protocol)
                self.adversaries[node] = protocol
            api = NodeApi(self, node)
            protocol.attach(api)
            self.protocols[node] = protocol
            stats = MacStats()
            self._mac_stats[node] = stats
            self.macs[node] = NodeMac(
                sim=self.sim,
                medium=self.medium,
                radio=self.config.radio,
                config=self.config.mac,
                node_id=node,
                position_fn=mobility.position,
                deliver=self._dispatch,
                rng=derive_rng(self.config.seed, repr(node), "mac"),
                stats=stats,
                profiler=self.profiler,
            )
            self._message_seq[node] = 0

        self._sampler = PeriodicTask(
            self.sim,
            self.config.storage_sample_interval,
            self._sample_storage,
        )

    # ------------------------------------------------------------------

    def _dispatch(self, frame: Frame) -> None:
        protocol = self.protocols.get(frame.receiver)
        if protocol is None:
            raise KeyError(f"frame addressed to unknown node {frame.receiver!r}")
        t0 = self.profiler.start()
        protocol.on_frame(frame)
        self.profiler.add(PHASE_PROTOCOL, t0)

    def _sample_storage(self) -> None:
        now = self.sim.now
        t0 = self.profiler.start()
        for protocol in self.protocols.values():
            protocol.sample_storage(now)
        self.profiler.add(PHASE_DELIVERY, t0)

    # ------------------------------------------------------------------

    def schedule_message(
        self, source: NodeId, dest: NodeId, at_time: float, size_bytes: int = 1000
    ) -> None:
        """Schedule creation of one application message."""
        if source not in self.protocols or dest not in self.protocols:
            raise KeyError("source and destination must be world nodes")

        def create() -> None:
            seq = self._message_seq[source]
            self._message_seq[source] = seq + 1
            message = Message.create(
                source=source,
                dest=dest,
                seq=seq,
                created_at=self.sim.now,
                size_bytes=size_bytes,
            )
            self.metrics.on_created(message)
            t0 = self.profiler.start()
            self.protocols[source].on_message_created(message)
            self.profiler.add(PHASE_PROTOCOL, t0)

        self.sim.schedule_at(at_time, create)

    def run(self, until: float, protocol_name: str | None = None) -> SimulationMetrics:
        """Start protocols, run to the horizon, and return the metrics."""
        if not self._started:
            for protocol in self.protocols.values():
                protocol.start()
            self._started = True
        self.sim.run(until=until)

        t0 = self.profiler.start()
        for node, protocol in self.protocols.items():
            protocol.sample_storage(self.sim.now)
            self.metrics.record_storage(
                node,
                protocol.storage_peak(),
                protocol.storage_time_average(self.sim.now),
            )

        totals: dict[str, int] = {}
        for stats in self._mac_stats.values():
            for key in (
                "frames_sent",
                "frames_delivered",
                "frames_lost_collision",
                "frames_lost_range",
                "frames_dropped_queue",
                "retries",
                "bytes_sent",
            ):
                totals[key] = totals.get(key, 0) + getattr(stats, key)

        name = protocol_name
        if name is None:
            first = next(iter(self.protocols.values()), None)
            name = first.name if first is not None else "none"
        metrics = self.metrics.snapshot(
            protocol=name,
            duration=self.sim.now,
            mac_totals=totals,
            events_processed=self.sim.events_processed,
        )
        self.profiler.add(PHASE_DELIVERY, t0)
        return metrics
