"""Metrics collection.

Collects exactly the quantities the paper's evaluation reports:

- **delivery ratio** — delivered / generated (Sections 3.5, 3.6);
- **average delivery latency** — creation to *first* arrival at the
  destination (Sections 3.2–3.4);
- **average hop count** — link transmissions of the first-delivered copy
  (Section 3.8);
- **storage** — per-node peak occupancy, reported as the max and the
  mean across nodes (Tables 2, 4, 5), plus time-averaged occupancy;
- MAC/control diagnostics (frames, drops, collisions, control bytes)
  used by Figure 3's control-overhead trade-off discussion.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Optional

from repro.graphs.udg import NodeId
from repro.sim.messages import Message
from repro.telemetry.profile import NULL_PROFILER, PHASE_DELIVERY


@dataclass
class SimulationMetrics:
    """Frozen summary of one simulation run."""

    protocol: str
    duration: float
    messages_created: int
    messages_delivered: int
    delivery_ratio: float
    average_latency: Optional[float]
    average_hops: Optional[float]
    max_peak_storage: int
    average_peak_storage: float
    time_average_storage: float
    frames_sent: int
    frames_delivered: int
    frames_lost_collision: int
    frames_lost_range: int
    frames_dropped_queue: int
    retries: int
    data_bytes_sent: int
    control_bytes_sent: int
    events_processed: int
    per_node_peak_storage: dict[NodeId, int] = field(default_factory=dict)
    latencies: list[float] = field(default_factory=list)
    hop_counts: list[int] = field(default_factory=list)

    def to_json(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_json`).

        Round-trips exactly: Python's JSON encoder emits ``repr``-exact
        floats, so ``from_json(json.loads(json.dumps(m.to_json())))``
        equals ``m`` bit-for-bit — the property the campaign cache and
        the JSONL metrics stream both rely on.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, data: object) -> "SimulationMetrics":
        """Rebuild metrics from :meth:`to_json` output, strictly.

        Raises :class:`ValueError` when fields are missing, extra, or
        of the wrong shape, so cache/stream consumers never silently
        trust a truncated or tampered payload.
        """
        field_names = {f.name for f in dataclasses.fields(cls)}
        if not isinstance(data, dict) or set(data) != field_names:
            raise ValueError("metrics payload has wrong field set")
        data = dict(data)
        peaks = data.get("per_node_peak_storage")
        latencies = data.get("latencies")
        hops = data.get("hop_counts")
        if not isinstance(peaks, dict):
            raise ValueError("per_node_peak_storage must be a mapping")
        if not isinstance(latencies, list) or not isinstance(hops, list):
            raise ValueError("latencies/hop_counts must be lists")
        try:
            # JSON object keys are strings; node ids are ints.
            data["per_node_peak_storage"] = {
                int(k): int(v) for k, v in peaks.items()
            }
            data["latencies"] = [float(v) for v in latencies]
            data["hop_counts"] = [int(v) for v in hops]
            metrics = cls(**data)
        except (TypeError, ValueError) as exc:
            raise ValueError(f"bad metrics payload: {exc}") from exc
        if not isinstance(metrics.messages_created, int):
            raise ValueError("messages_created must be an int")
        if not isinstance(metrics.delivery_ratio, (int, float)):
            raise ValueError("delivery_ratio must be a number")
        return metrics


class MetricsCollector:
    """Accumulates observations during a run and snapshots them after."""

    def __init__(self, profiler=NULL_PROFILER) -> None:
        self._created: dict[int, Message] = {}
        self._delivered: dict[int, tuple[float, int]] = {}
        self.control_bytes = 0
        self._storage_peaks: dict[NodeId, int] = {}
        self._storage_time_avg: dict[NodeId, float] = {}
        self._profiler = profiler

    # -- message lifecycle --------------------------------------------

    def on_created(self, message: Message) -> None:
        """Record a generated message."""
        self._created[message.uid] = message

    def on_delivered(self, message: Message, now: float, hops: int) -> None:
        """Record a delivery; only the first arrival of a message counts."""
        t0 = self._profiler.start()
        try:
            if message.uid in self._delivered:
                return
            if message.uid not in self._created:
                raise ValueError(
                    f"delivery recorded for unknown message uid {message.uid}"
                )
            latency = now - message.created_at
            if latency < 0:
                raise ValueError("delivery before creation — clock error")
            self._delivered[message.uid] = (latency, hops)
        finally:
            self._profiler.add(PHASE_DELIVERY, t0)

    def is_delivered(self, uid: int) -> bool:
        """True when the message has already reached its destination."""
        return uid in self._delivered

    def delivered_uids(self) -> set[int]:
        """Uids of delivered messages (used by receipt extensions)."""
        return set(self._delivered)

    # -- storage and control -------------------------------------------

    def on_control_bytes(self, count: int) -> None:
        """Accumulate control-plane bytes (beacons, summaries...)."""
        self.control_bytes += count

    def record_storage(
        self, node: NodeId, peak: int, time_average: float
    ) -> None:
        """Record a node's final storage statistics."""
        self._storage_peaks[node] = peak
        self._storage_time_avg[node] = time_average

    # -- snapshot -------------------------------------------------------

    def snapshot(
        self,
        protocol: str,
        duration: float,
        mac_totals: dict[str, int],
        events_processed: int,
    ) -> SimulationMetrics:
        """Produce the immutable summary of the run."""
        created = len(self._created)
        delivered = len(self._delivered)
        latencies = [lat for lat, _ in self._delivered.values()]
        hops = [h for _, h in self._delivered.values()]
        peaks = list(self._storage_peaks.values())
        return SimulationMetrics(
            protocol=protocol,
            duration=duration,
            messages_created=created,
            messages_delivered=delivered,
            delivery_ratio=(delivered / created) if created else 1.0,
            average_latency=(sum(latencies) / delivered) if delivered else None,
            average_hops=(sum(hops) / delivered) if delivered else None,
            max_peak_storage=max(peaks) if peaks else 0,
            average_peak_storage=(sum(peaks) / len(peaks)) if peaks else 0.0,
            time_average_storage=(
                sum(self._storage_time_avg.values()) / len(self._storage_time_avg)
                if self._storage_time_avg
                else 0.0
            ),
            frames_sent=mac_totals.get("frames_sent", 0),
            frames_delivered=mac_totals.get("frames_delivered", 0),
            frames_lost_collision=mac_totals.get("frames_lost_collision", 0),
            frames_lost_range=mac_totals.get("frames_lost_range", 0),
            frames_dropped_queue=mac_totals.get("frames_dropped_queue", 0),
            retries=mac_totals.get("retries", 0),
            data_bytes_sent=mac_totals.get("bytes_sent", 0),
            control_bytes_sent=self.control_bytes,
            events_processed=events_processed,
            per_node_peak_storage=dict(self._storage_peaks),
            latencies=latencies,
            hop_counts=hops,
        )
