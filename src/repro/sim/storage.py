"""Bounded message stores with eviction and occupancy tracking.

The paper's storage model (Sections 2.3.2, 3.6, 3.7):

- Epidemic nodes hold one FIFO buffer; when it fills, "old messages are
  dropped when new messages come in".
- GLR nodes hold two areas — the **Store** (messages waiting to be sent)
  and the **Cache** (messages sent and awaiting custody ACK).  Under
  pressure, "message in the Cache is dropped first".
- Tables 4/5 report *max peak* and *average peak* storage across nodes,
  measured in messages.

:class:`MessageStore` implements one bounded FIFO area and records its
own high-water mark; :class:`DualStore` composes Store + Cache with the
paper's eviction priority and reports their combined occupancy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterator, Optional


class StoreFullError(Exception):
    """Raised by :meth:`MessageStore.add` when eviction is disabled."""


class MessageStore:
    """A FIFO message area with optional capacity (in messages).

    Keys are arbitrary hashables (message uids or copy ids); values are
    the stored items.  Insertion order is preserved; eviction removes the
    oldest entry.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.capacity = capacity
        self._items: "OrderedDict[Hashable, object]" = OrderedDict()
        self.peak_occupancy = 0
        self.evictions = 0
        self._occupancy_time_product = 0.0
        self._last_sample_time = 0.0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._items)

    def keys(self) -> list[Hashable]:
        """Stored keys, oldest first."""
        return list(self._items)

    def values(self) -> list[object]:
        """Stored items, oldest first."""
        return list(self._items.values())

    def get(self, key: Hashable) -> object | None:
        """Item for ``key`` or None."""
        return self._items.get(key)

    @property
    def is_full(self) -> bool:
        """True when at capacity (never for unbounded stores)."""
        return self.capacity is not None and len(self._items) >= self.capacity

    def add(self, key: Hashable, item: object, evict: bool = True) -> list[object]:
        """Insert ``item`` under ``key``; returns any evicted items.

        With ``evict=False`` a full store raises :class:`StoreFullError`
        instead of displacing old entries.  Re-adding an existing key
        refreshes the item but keeps its queue position.
        """
        evicted: list[object] = []
        if key in self._items:
            self._items[key] = item
            return evicted
        while self.is_full:
            if not evict:
                raise StoreFullError(f"store at capacity {self.capacity}")
            _, old = self._items.popitem(last=False)
            self.evictions += 1
            evicted.append(old)
        self._items[key] = item
        self.peak_occupancy = max(self.peak_occupancy, len(self._items))
        return evicted

    def pop(self, key: Hashable) -> object | None:
        """Remove and return the item under ``key`` (None if absent)."""
        return self._items.pop(key, None)

    def pop_oldest(self) -> object | None:
        """Remove and return the oldest item (None when empty)."""
        if not self._items:
            return None
        _, item = self._items.popitem(last=False)
        return item

    def sample(self, now: float) -> None:
        """Record a time-weighted occupancy sample at time ``now``."""
        dt = max(0.0, now - self._last_sample_time)
        self._occupancy_time_product += dt * len(self._items)
        self._last_sample_time = now

    def time_average_occupancy(self, horizon: float) -> float:
        """Time-weighted mean occupancy over ``[0, horizon]``."""
        if horizon <= 0:
            return float(len(self._items))
        return self._occupancy_time_product / horizon


class DualStore:
    """GLR's Store + Cache pair with the paper's eviction priority.

    The combined capacity is shared: when an insert would exceed it, the
    Cache is evicted first (oldest first); only when the Cache is empty
    are Store entries displaced.  Peak occupancy counts both areas —
    that is what Tables 4/5 measure for GLR.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive (or None)")
        self.capacity = capacity
        self.store = MessageStore(capacity=None)
        self.cache = MessageStore(capacity=None)
        self.peak_occupancy = 0
        self.evictions = 0

    def occupancy(self) -> int:
        """Total messages across Store and Cache."""
        return len(self.store) + len(self.cache)

    def _note_peak(self) -> None:
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy())

    def _make_room(self) -> list[object]:
        evicted: list[object] = []
        if self.capacity is None:
            return evicted
        while self.occupancy() >= self.capacity:
            victim = self.cache.pop_oldest()
            if victim is None:
                victim = self.store.pop_oldest()
            if victim is None:
                break
            self.evictions += 1
            evicted.append(victim)
        return evicted

    def add_to_store(self, key: Hashable, item: object) -> list[object]:
        """Insert into the Store area; returns evicted items."""
        if key in self.store:
            self.store.add(key, item)
            return []
        evicted = self._make_room()
        self.store.add(key, item)
        self._note_peak()
        return evicted

    def move_to_cache(self, key: Hashable) -> bool:
        """Move ``key`` from Store to Cache (message sent, awaiting ACK)."""
        item = self.store.pop(key)
        if item is None:
            return False
        self.cache.add(key, item)
        self._note_peak()
        return True

    def return_to_store(self, key: Hashable) -> bool:
        """Move ``key`` from Cache back to Store (ACK timeout — paper
        Section 2.3.2: "the message is moved from Cache to Store for
        another round of transfer rescheduling")."""
        item = self.cache.pop(key)
        if item is None:
            return False
        self.store.add(key, item)
        return True

    def acknowledge(self, key: Hashable) -> bool:
        """Delete ``key`` from the Cache (custody ACK received)."""
        return self.cache.pop(key) is not None

    def drop(self, key: Hashable) -> bool:
        """Remove ``key`` from whichever area holds it."""
        return self.store.pop(key) is not None or self.cache.pop(key) is not None

    def sample(self, now: float) -> None:
        """Record occupancy samples on both areas."""
        self.store.sample(now)
        self.cache.sample(now)

    def time_average_occupancy(self, horizon: float) -> float:
        """Combined time-weighted mean occupancy."""
        return self.store.time_average_occupancy(
            horizon
        ) + self.cache.time_average_occupancy(horizon)
