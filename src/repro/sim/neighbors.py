"""Neighbour discovery and location diffusion — the IMEP stand-in.

The paper layers GLR over IMEP, whose link/connection status sensing
gives each node a periodically refreshed view of its neighbourhood, with
locations piggybacked in the (modified) IMEP header.  Two consequences
the paper calls out, both preserved here:

- neighbour/location information is only as fresh as the last beacon
  ("the IMEP layer updates neighbor information at specified time
  interval, the location information is not accurate");
- whenever two nodes are in range they exchange timestamped locations,
  which is the transport for **location diffusion** (Section 2.3.1).

Implementation: every ``beacon_interval`` the service snapshots true
node positions, rebuilds the unit-disk graph over that snapshot, and
updates each node's timestamped location table with its in-range
neighbours.  Between beacons all queries answer from the snapshot —
stale by up to one interval, exactly like IMEP.

The service also owns the per-epoch **LDTG cache**: the k-local Delaunay
triangulation over the beacon snapshot, computed lazily on first query
in an epoch.  All nodes acting on the same beacon epoch see mutually
consistent local triangulations, which is what the k-local construction
guarantees when neighbourhood information is synchronized.

Beacon frames themselves are not pushed through the MAC — they are
small, periodic, and identical across compared protocols, so simulating
their airtime would add cost without changing any comparison.  Their
byte volume is still accounted in the metrics as control overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.geometry.primitives import Point
from repro.graphs.ldt import local_delaunay_graph
from repro.graphs.udg import NodeId, SpatialGraph, unit_disk_graph
from repro.mobility.base import MobilityModel
from repro.sim.arraystate import (
    ENGINE_REFERENCE,
    ENGINE_VECTORIZED,
    ArrayState,
    resolve_engine,
)
from repro.sim.engine import PeriodicTask, Simulator
from repro.sim.radio import RadioConfig
from repro.telemetry.profile import (
    NULL_PROFILER,
    PHASE_MOBILITY,
    PHASE_UDG,
)

#: Approximate bytes of one beacon (IMEP header + location + id).
BEACON_BYTES = 32


@dataclass(frozen=True)
class LocationRecord:
    """A timestamped location belief about some node."""

    position: Point
    timestamp: float


class NeighborService:
    """Beacon-driven neighbourhood, location tables, and LDTG cache."""

    def __init__(
        self,
        sim: Simulator,
        mobility: MobilityModel,
        radio: RadioConfig,
        beacon_interval: float = 1.0,
        ldt_k: int = 2,
        on_control_bytes: Callable[[int], None] | None = None,
        profiler=NULL_PROFILER,
        engine: str | None = None,
    ):
        if beacon_interval <= 0:
            raise ValueError("beacon interval must be positive")
        self._sim = sim
        self._mobility = mobility
        self._radio = radio
        self.beacon_interval = beacon_interval
        self.ldt_k = ldt_k
        self._on_control_bytes = on_control_bytes
        self._profiler = profiler
        # ``None`` falls back to REPRO_ENGINE (then "reference"), so an
        # env-flipped run covers directly constructed worlds too.
        # resolve_engine also checks numpy imports for "vectorized" — a
        # world built on a numpy-less box fails here with the clear
        # engine error instead of an ImportError mid-run.
        self.engine = resolve_engine(engine)

        self.epoch = 0
        self._snapshot: SpatialGraph = SpatialGraph()
        self._array_state: ArrayState | None = None
        self._ldt_cache: SpatialGraph | None = None
        self._location_tables: dict[NodeId, dict[NodeId, LocationRecord]] = {
            node: {} for node in mobility.node_ids
        }
        self._rebuild()  # epoch 0 snapshot at t=0
        self._task = PeriodicTask(
            sim,
            beacon_interval,
            self._on_beacon_tick,
            start_offset=beacon_interval,  # epoch 0 is built above
        )

    # ------------------------------------------------------------------
    # Beacon cycle
    # ------------------------------------------------------------------

    def _on_beacon_tick(self) -> None:
        self.epoch += 1
        self._rebuild()

    def _rebuild(self) -> None:
        now = self._sim.now
        if self.engine == ENGINE_VECTORIZED:
            t0 = self._profiler.start()
            state = ArrayState.from_mobility(self._mobility, now)
            self._profiler.add(PHASE_MOBILITY, t0)
            t0 = self._profiler.start()
            self._array_state = state
            snapshot = state.unit_disk_snapshot(self._radio.range_m)
            self._snapshot = snapshot
            self._ldt_cache = None
            positions = snapshot.positions
            tables = self._location_tables
            ids = snapshot.ids
            # Location diffusion leg 1, driven by the edge-index array
            # so the lazy snapshot's per-node neighbour sets stay
            # unmaterialized until a protocol actually queries them.
            # Same records in the same tables as the reference loop;
            # only dict insertion order differs, and location tables
            # are only ever read by key.
            records = {
                node: LocationRecord(position=positions[node], timestamp=now)
                for node in ids
            }
            for i, j in snapshot.edge_indices.tolist():
                a = ids[i]
                b = ids[j]
                tables[b][a] = records[a]
                tables[a][b] = records[b]
            for node in ids:
                # A node always knows its own current position (GPS).
                tables[node][node] = records[node]
            beacons = len(ids)
        else:
            t0 = self._profiler.start()
            scalar_positions = self._mobility.positions(now)
            self._profiler.add(PHASE_MOBILITY, t0)
            t0 = self._profiler.start()
            self._snapshot = unit_disk_graph(
                scalar_positions, self._radio.range_m
            )
            positions = self._snapshot.positions
            self._ldt_cache = None
            # Location diffusion leg 1: beacon exchange between
            # neighbours.
            beacons = 0
            for node in self._snapshot.nodes():
                record = LocationRecord(
                    position=positions[node], timestamp=now
                )
                table_updates = self._snapshot.neighbors(node)
                beacons += 1
                for nbr in table_updates:
                    self._location_tables[nbr][node] = record
                # A node always knows its own current position (GPS).
                self._location_tables[node][node] = record
        if self._on_control_bytes is not None:
            self._on_control_bytes(beacons * BEACON_BYTES)
        self._profiler.add(PHASE_UDG, t0)

    # ------------------------------------------------------------------
    # Queries (all answer from the latest beacon snapshot)
    # ------------------------------------------------------------------

    def snapshot_graph(self) -> SpatialGraph:
        """The beacon-epoch unit-disk graph."""
        return self._snapshot

    def array_state(self) -> ArrayState | None:
        """The epoch's read-only ``(N, 2)`` position array state.

        ``None`` on the reference engine, which never materializes
        arrays.  The array is write-protected, so stats/analysis code
        can hold views without risking the snapshot.
        """
        return self._array_state

    def neighbors(self, node: NodeId) -> set[NodeId]:
        """One-hop neighbours as of the last beacon."""
        return set(self._snapshot.neighbors(node))

    def neighbor_positions(self, node: NodeId) -> dict[NodeId, Point]:
        """Beaconed positions of the node's one-hop neighbours."""
        return {
            n: self._snapshot.positions[n]
            for n in self._snapshot.neighbors(node)
        }

    def k_hop(self, node: NodeId, k: int) -> set[NodeId]:
        """k-hop neighbourhood (excluding ``node``) from the snapshot."""
        return self._snapshot.k_hop_neighborhood(node, k)

    def beacon_position(self, node: NodeId) -> Point:
        """Position of ``node`` as of the last beacon."""
        return self._snapshot.positions[node]

    def ldt_neighbors(self, node: NodeId) -> set[NodeId]:
        """LDTG neighbours of ``node`` for the current epoch.

        Computed lazily once per epoch for the whole snapshot; every node
        then reads its own adjacency, modelling each node running the
        k-local construction on consistent beacon data.
        """
        if self._ldt_cache is None:
            # Charged to the UDG/graph-rebuild phase: the LDTG is the
            # other per-epoch graph construction over the same snapshot.
            t0 = self._profiler.start()
            self._ldt_cache = local_delaunay_graph(
                self._snapshot.positions,
                self._radio.range_m,
                k=self.ldt_k,
                udg=self._snapshot,
            )
            self._profiler.add(PHASE_UDG, t0)
        return set(self._ldt_cache.neighbors(node))

    def ldt_graph(self) -> SpatialGraph:
        """Entire cached LDTG for the current epoch (analysis hooks)."""
        if self._ldt_cache is None:
            self.ldt_neighbors(next(iter(self._snapshot.positions)))
        assert self._ldt_cache is not None
        return self._ldt_cache

    # ------------------------------------------------------------------
    # Location tables (diffusion legs 2 and 3 happen in the protocol)
    # ------------------------------------------------------------------

    def location_of(self, owner: NodeId, subject: NodeId) -> LocationRecord | None:
        """``owner``'s current belief about ``subject``'s location."""
        return self._location_tables[owner].get(subject)

    def learn_location(
        self, owner: NodeId, subject: NodeId, record: LocationRecord
    ) -> bool:
        """Install a location belief if it is fresher than the current one.

        Returns True when the table was updated.  This is the primitive
        both diffusion directions use: a data packet carrying a fresher
        destination location teaches the receiving relay, and a relay
        with fresher knowledge refreshes the packet (paper 2.3.1).
        """
        current = self._location_tables[owner].get(subject)
        if current is None or record.timestamp > current.timestamp:
            self._location_tables[owner][subject] = record
            return True
        return False

    def stop(self) -> None:
        """Stop the beacon task (end of simulation)."""
        self._task.stop()
