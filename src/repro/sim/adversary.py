"""Byzantine adversary injection: configs, node selection, wrappers.

BeRGeR-style robustness experiments (arXiv 2403.12256) ask how much of
a protocol's delivery ratio survives when a fraction of nodes
misbehave.  This module makes that a first-class, sweepable scenario
axis:

- :class:`AdversaryConfig` is a pure value — mode name, compromised
  fraction, scalar parameters — hashable and JSON-friendly, so
  scenarios carry it, campaign grids sweep it, and the result cache
  keys on it.
- **Node selection is seed-derived** (:func:`adversary_node_set`,
  via :func:`repro.seeding.derive_rng`): which nodes are compromised is
  a pure function of the scenario seed, so parallel, sharded, and
  work-stealing campaign runs agree bit-for-bit with serial ones.
- **Wrappers** decorate the selected nodes' protocol instances inside
  :class:`repro.sim.world.World`; honest nodes run the unmodified
  protocol, so one simulation mixes honest and Byzantine behaviour.

Built-in modes (aliases in parentheses)::

    blackhole                 participates, then silently swallows
                              every received frame (data, acks,
                              summaries) — the strongest sink.
    selective_drop (greyhole) drops received DATA frames with
                              probability ``drop_rate`` (default 0.5);
                              control frames pass, keeping the node
                              attractive to its neighbours.
    location_lying (liar)     forwards normally but rewrites the
                              destination location carried in outgoing
                              DATA headers by a uniform offset up to
                              ``offset_m`` (default 300 m), stamped
                              fresh — poisoning the location diffusion
                              geographic protocols steer by.

Third-party modes register with :func:`register_adversary_mode`.
"""

from __future__ import annotations

import dataclasses
import inspect
from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.params import ParamValue, canonicalise_params, normalize_name
from repro.seeding import derive_rng
from repro.sim.messages import Frame, FrameKind, Message, MessageCopy
from repro.sim.world import Protocol

_normalize = normalize_name


@dataclass(frozen=True)
class AdversaryConfig:
    """A declarative adversary: mode, compromised fraction, parameters.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so
    equal configs hash equal regardless of construction order, and the
    campaign cache key (which canonicalises dataclasses field-by-field)
    is stable.  ``fraction`` must be in ``(0, 1]`` — a zero fraction is
    *no adversary* and coerces to ``None`` (see
    :func:`as_adversary_config`), keeping its cache keys identical to
    runs that never had the axis.
    """

    mode: str
    fraction: float
    params: tuple[tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        if not self.mode or not isinstance(self.mode, str):
            raise ValueError("adversary mode must be a non-empty string")
        object.__setattr__(self, "mode", resolve_adversary_mode(self.mode))
        if isinstance(self.fraction, bool) or not isinstance(
            self.fraction, (int, float)
        ):
            raise ValueError("adversary fraction must be a number")
        if not 0.0 < float(self.fraction) <= 1.0:
            raise ValueError(
                f"adversary fraction must be in (0, 1], got {self.fraction}"
            )
        # Integral floats collapse to ints (shared canonicalisation
        # rule): 1 and 1.0 must produce one cache key, not two.
        fraction = float(self.fraction)
        object.__setattr__(
            self,
            "fraction",
            int(fraction) if fraction.is_integer() else fraction,
        )
        items = canonicalise_params(dict(self.params))
        object.__setattr__(self, "params", tuple(sorted(items.items())))
        validate_adversary_params(self.mode, dict(self.params))

    @classmethod
    def of(
        cls, mode: str, fraction: float, **params: ParamValue
    ) -> "AdversaryConfig":
        """Keyword constructor: ``AdversaryConfig.of("blackhole", 0.2)``."""
        return cls(mode=mode, fraction=fraction, params=tuple(params.items()))

    def params_dict(self) -> dict[str, ParamValue]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def to_json(self) -> dict:
        """JSON-ready form (inverse of :func:`as_adversary_config`)."""
        return {
            "mode": self.mode,
            "fraction": self.fraction,
            "params": self.params_dict(),
        }

    def __str__(self) -> str:
        # Round-trips through as_adversary_config, so grid cell labels
        # ("adversary=blackhole:0.2") are themselves valid axis values.
        text = f"{self.mode}:{self.fraction}"
        if self.params:
            text += ":" + ",".join(f"{k}={v}" for k, v in self.params)
        return text


# ---------------------------------------------------------------------------
# Mode registry
# ---------------------------------------------------------------------------

#: A mode builder maps (inner protocol, node_id, rng, **params) to the
#: wrapped protocol instance for one compromised node.
AdversaryBuilder = Callable[..., Protocol]

_MODES: dict[str, AdversaryBuilder] = {}
_MODE_ALIASES: dict[str, str] = {}


def register_adversary_mode(
    name: str,
    builder: AdversaryBuilder,
    aliases: Sequence[str] = (),
) -> None:
    """Register an adversary mode (same contract as the other registries:
    re-registering replaces, direct names win over aliases, and
    registrations are per-process)."""
    canonical = _normalize(name)
    _MODES[canonical] = builder
    for alias in aliases:
        _MODE_ALIASES[_normalize(alias)] = canonical


def available_adversary_modes() -> list[str]:
    """Canonical names of every registered adversary mode."""
    return sorted(_MODES)


def resolve_adversary_mode(name: str) -> str:
    """Canonical mode name for ``name``; raises for unknown modes."""
    normalized = _normalize(name)
    if normalized not in _MODES:
        normalized = _MODE_ALIASES.get(normalized, normalized)
    if normalized not in _MODES:
        raise ValueError(
            f"unknown adversary mode {name!r}; choose from "
            f"{available_adversary_modes()}"
        )
    return normalized


#: Leading builder parameters supplied positionally by the plan
#: (inner, node_id, rng) — mirrors the mobility registry's convention.
_BUILDER_POSITIONALS = 3


def validate_adversary_params(mode: str, params: Mapping[str, object]) -> None:
    """Check param names against the mode builder's signature, so a bad
    campaign spec fails at load, not mid-campaign inside a worker."""
    canonical = resolve_adversary_mode(mode)
    try:
        signature = inspect.signature(_MODES[canonical])
    except (TypeError, ValueError):  # builtins/odd callables: trust them
        return
    accepted = set()
    required = set()
    for index, parameter in enumerate(signature.parameters.values()):
        if parameter.kind in (
            inspect.Parameter.VAR_KEYWORD,
            inspect.Parameter.VAR_POSITIONAL,
        ):
            return
        if index < _BUILDER_POSITIONALS:
            continue
        accepted.add(parameter.name)
        if parameter.default is inspect.Parameter.empty:
            required.add(parameter.name)
    unknown = sorted(set(params) - accepted)
    if unknown:
        raise ValueError(
            f"adversary mode {canonical!r} does not accept parameters "
            f"{unknown}; choose from {sorted(accepted)}"
        )
    missing = sorted(required - set(params))
    if missing:
        raise ValueError(
            f"adversary mode {canonical!r} requires parameters {missing}"
        )


def as_adversary_config(
    value: "AdversaryConfig | str | Mapping | None",
) -> AdversaryConfig | None:
    """Coerce user input into a validated :class:`AdversaryConfig`.

    Accepts ``None`` / ``"none"`` / ``"off"`` (no adversary), a string
    of the form ``"mode:fraction"`` (optionally
    ``"mode:fraction:key=value,key=value"``), a mapping with ``mode``
    and ``fraction`` keys (parameters inline or under ``"params"``), or
    an existing config.  A fraction of zero — however spelled — returns
    ``None``: zero compromised nodes *is* the honest run, and must key
    identically in the cache and the campaign spec hash.
    """
    if value is None:
        return None
    if isinstance(value, AdversaryConfig):
        return value
    if isinstance(value, str):
        text = value.strip()
        if _normalize(text) in ("", "none", "off"):
            return None
        parts = text.split(":", 2)
        if len(parts) < 2:
            raise ValueError(
                f"adversary {value!r} needs a fraction: 'mode:fraction'"
            )
        mode, fraction_text = parts[0], parts[1]
        try:
            fraction = float(fraction_text)
        except ValueError as exc:
            raise ValueError(
                f"bad adversary fraction {fraction_text!r} in {value!r}"
            ) from exc
        params: dict[str, ParamValue] = {}
        if len(parts) == 3 and parts[2]:
            for item in parts[2].split(","):
                key, sep, raw = item.partition("=")
                if not sep or not key:
                    raise ValueError(
                        f"bad adversary parameter {item!r} in {value!r} "
                        "(expected key=value)"
                    )
                try:
                    number = float(raw)
                except ValueError as exc:
                    raise ValueError(
                        f"bad adversary parameter value {raw!r} in {value!r}"
                    ) from exc
                params[key] = number
        if fraction == 0.0:
            return None
        return AdversaryConfig.of(mode, fraction, **params)
    if isinstance(value, Mapping):
        data = dict(value)
        mode = data.pop("mode", None)
        if mode is None:
            raise ValueError("adversary mapping needs a 'mode' key")
        fraction = data.pop("fraction", None)
        if fraction is None:
            raise ValueError("adversary mapping needs a 'fraction' key")
        params = data.pop("params", None)
        if params is None:
            params = data
        elif data:
            raise ValueError(
                f"unexpected adversary keys {sorted(data)} next to 'params'"
            )
        elif not isinstance(params, Mapping):
            raise ValueError(
                f"adversary 'params' must be a mapping, got "
                f"{type(params).__name__}"
            )
        if fraction == 0:
            return None
        return AdversaryConfig.of(str(mode), fraction, **dict(params))
    raise ValueError(
        f"cannot interpret {type(value).__name__} as an adversary config"
    )


# ---------------------------------------------------------------------------
# Seed-derived node selection and the per-world plan
# ---------------------------------------------------------------------------

def adversary_node_set(
    config: AdversaryConfig,
    node_ids: Sequence[NodeId],
    seed: int,
) -> frozenset:
    """Which nodes ``config`` compromises in a world seeded ``seed``.

    A pure function of ``(seed, fraction)``: the population is sorted
    deterministically and sampled with an RNG derived from the scenario
    seed, so every execution strategy (serial, process pool, shards,
    stealing, remote hosts) selects the same nodes.  The count rounds
    half-up, so ``fraction=0.2`` of 50 nodes is exactly 10.
    """
    ordered = sorted(node_ids, key=repr)
    count = int(float(config.fraction) * len(ordered) + 0.5)
    if count == 0:
        return frozenset()
    rng = derive_rng(seed, "adversary", "selection")
    return frozenset(rng.sample(ordered, count))


@dataclass(frozen=True)
class AdversaryPlan:
    """A resolved adversary for one world: node set + wrapper factory."""

    config: AdversaryConfig
    nodes: frozenset
    seed: int

    def wrap(self, node_id: NodeId, protocol: Protocol) -> Protocol:
        """The wrapped (Byzantine) protocol instance for ``node_id``."""
        builder = _MODES[self.config.mode]
        rng = derive_rng(
            self.seed, "adversary", self.config.mode, repr(node_id)
        )
        return builder(protocol, node_id, rng, **self.config.params_dict())


def build_adversary_plan(
    config: "AdversaryConfig | None",
    node_ids: Sequence[NodeId],
    seed: int,
) -> AdversaryPlan | None:
    """Resolve a scenario's adversary config into a world plan."""
    if config is None:
        return None
    return AdversaryPlan(
        config=config,
        nodes=adversary_node_set(config, node_ids, seed),
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Wrappers
# ---------------------------------------------------------------------------

class AdversaryWrapper(Protocol):
    """Base wrapper: behaves exactly like the wrapped protocol.

    Subclasses override single hooks to misbehave; everything else —
    timers, storage metrics, traffic origination — delegates, so a
    compromised node is indistinguishable until the attack fires.
    ``frames_dropped``/``frames_poisoned`` count the damage for
    diagnostics and tests.
    """

    def __init__(self, inner: Protocol, node_id: NodeId, rng):
        super().__init__()
        self.inner = inner
        self.node_id = node_id
        self.rng = rng
        self.name = inner.name
        self.frames_dropped = 0
        self.frames_poisoned = 0

    def attach(self, api) -> None:
        self.api = api
        self.inner.attach(api)

    def start(self) -> None:
        self.inner.start()

    def on_message_created(self, message: Message) -> None:
        self.inner.on_message_created(message)

    def on_frame(self, frame: Frame) -> None:
        self.inner.on_frame(frame)

    def storage_occupancy(self) -> int:
        return self.inner.storage_occupancy()

    def storage_peak(self) -> int:
        return self.inner.storage_peak()

    def sample_storage(self, now: float) -> None:
        self.inner.sample_storage(now)

    def storage_time_average(self, horizon: float) -> float:
        return self.inner.storage_time_average(horizon)


class BlackholeWrapper(AdversaryWrapper):
    """Swallows every received frame; never stores, relays, or acks.

    The node still beacons (the beacon layer is below the protocol), so
    geographic neighbours keep routing traffic into it — a sink.  Its
    own originated traffic still leaves via the inner protocol.
    """

    def on_frame(self, frame: Frame) -> None:
        self.frames_dropped += 1


class SelectiveDropWrapper(AdversaryWrapper):
    """Drops received DATA frames with probability ``drop_rate``.

    Control traffic (acks, summaries, requests) passes, so the node
    keeps looking cooperative — the classic greyhole.
    """

    def __init__(
        self, inner: Protocol, node_id: NodeId, rng, drop_rate: float = 0.5
    ):
        if not 0.0 < drop_rate <= 1.0:
            raise ValueError(
                f"drop_rate must be in (0, 1], got {drop_rate}"
            )
        super().__init__(inner, node_id, rng)
        self.drop_rate = drop_rate

    def on_frame(self, frame: Frame) -> None:
        if frame.kind is FrameKind.DATA and self.rng.random() < self.drop_rate:
            self.frames_dropped += 1
            return
        self.inner.on_frame(frame)


class LocationLyingWrapper(AdversaryWrapper):
    """Poisons the destination location in outgoing DATA headers.

    Every forwarded copy's believed destination location is displaced
    by a uniform offset up to ``offset_m`` per axis and stamped with the
    current time, so downstream relays adopt the lie as *fresher* than
    the truth (location diffusion works against itself).  Receiving
    and relaying otherwise proceed normally — the damage is epistemic.
    """

    def __init__(
        self, inner: Protocol, node_id: NodeId, rng, offset_m: float = 300.0
    ):
        if offset_m <= 0:
            raise ValueError(f"offset_m must be positive, got {offset_m}")
        super().__init__(inner, node_id, rng)
        self.offset_m = offset_m

    def attach(self, api) -> None:
        self.api = api
        self.inner.attach(_LyingApi(api, self))

    def poison(self, frame: Frame) -> Frame:
        if frame.kind is not FrameKind.DATA:
            return frame
        copy = frame.payload
        if not isinstance(copy, MessageCopy) or copy.dest_location is None:
            return frame
        self.frames_poisoned += 1
        lie = Point(
            copy.dest_location.x
            + self.rng.uniform(-self.offset_m, self.offset_m),
            copy.dest_location.y
            + self.rng.uniform(-self.offset_m, self.offset_m),
        )
        poisoned = replace(
            copy, dest_location=lie, dest_location_time=self.api.now()
        )
        return dataclasses.replace(frame, payload=poisoned)


class _LyingApi:
    """NodeApi proxy that routes sends through the liar's poisoner."""

    def __init__(self, api, wrapper: LocationLyingWrapper):
        self._api = api
        self._wrapper = wrapper

    def __getattr__(self, name):
        return getattr(self._api, name)

    def send(self, frame: Frame) -> bool:
        return self._api.send(self._wrapper.poison(frame))


register_adversary_mode("blackhole", BlackholeWrapper, aliases=("sink",))
register_adversary_mode(
    "selective_drop", SelectiveDropWrapper, aliases=("greyhole", "grayhole")
)
register_adversary_mode(
    "location_lying", LocationLyingWrapper, aliases=("liar", "location_lie")
)
