"""Radio and propagation model.

The paper simulates IEEE 802.11 over a Two Ray Ground propagation model
with omnidirectional antennas.  Two Ray Ground with fixed antenna
heights yields a deterministic received power that crosses the reception
threshold at a fixed distance — i.e., for connectivity purposes it *is*
a disk model, which is also how the paper itself reasons about
"transmission range 50–250 m".  We therefore model propagation as a
deterministic disk of radius ``range_m`` and put all stochastic loss in
the MAC (collisions), where the paper's contention effects actually
live.

Airtime accounting uses the Table 1 data rate (1 Mbps) plus a fixed
per-frame header, so a 1000-byte payload occupies ~8.5 ms of air.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geometry.primitives import Point, distance_sq


@dataclass(frozen=True)
class RadioConfig:
    """Physical-layer parameters (paper Table 1 defaults).

    Attributes:
        range_m: transmission range in metres (paper sweeps 50–250).
        data_rate_bps: link rate in bits/second (paper: 1 Mbps).
        carrier_sense_factor: carrier-sense range as a multiple of the
            transmission range.  802.11 senses farther than it decodes;
            2.2 is the customary NS-2 ratio (550 m CS for 250 m RX).
    """

    range_m: float = 250.0
    data_rate_bps: float = 1_000_000.0
    carrier_sense_factor: float = 2.2

    def __post_init__(self) -> None:
        if self.range_m <= 0:
            raise ValueError("transmission range must be positive")
        if self.data_rate_bps <= 0:
            raise ValueError("data rate must be positive")
        if self.carrier_sense_factor < 1.0:
            raise ValueError("carrier-sense factor must be >= 1")

    @property
    def carrier_sense_range(self) -> float:
        """Range within which a transmission keeps the medium busy."""
        return self.range_m * self.carrier_sense_factor

    def in_range(self, a: Point, b: Point) -> bool:
        """True when two positions can decode each other's frames."""
        return distance_sq(a, b) <= self.range_m * self.range_m

    def in_carrier_sense_range(self, a: Point, b: Point) -> bool:
        """True when a transmission at ``a`` is sensed at ``b``."""
        r = self.carrier_sense_range
        return distance_sq(a, b) <= r * r

    def airtime(self, total_bytes: int) -> float:
        """Seconds of air occupied by ``total_bytes`` at the link rate."""
        if total_bytes < 0:
            raise ValueError("byte count must be non-negative")
        return total_bytes * 8.0 / self.data_rate_bps
