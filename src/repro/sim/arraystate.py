"""Array-backed simulation state and engine selection.

The vectorized engine keeps per-beacon node positions as one
``(N, 2)`` float64 array instead of ``N`` :class:`Point` objects, and
rebuilds the unit-disk graph with the numpy cell-binning kernel in
:mod:`repro.graphs.udg`.  This module owns that array state and the
switch that picks the engine:

- ``reference`` — the original pure-Python path (per-node position
  queries, :class:`~repro.graphs.udg.GridIndex` pair iteration).  It is
  the semantic ground truth the differential tests compare against.
- ``vectorized`` — batch mobility evaluation plus the array UDG kernel.
  Requires numpy; selecting it without numpy installed raises
  :class:`VectorizedEngineUnavailableError` with install guidance.

Selection precedence: an explicit engine (``Scenario.engine``,
``WorldConfig.engine``) wins; otherwise the ``REPRO_ENGINE``
environment variable; otherwise ``reference``.  The env var is
inherited by process-pool and shard workers, so one variable flips a
whole campaign.

Both engines produce **bit-identical** results: mobility models draw
from per-node RNGs (so batch leg extension preserves draw order), and
the batch interpolation/distance kernels evaluate the exact same
float64 expressions the scalar path does (IEEE 754 elementwise ops are
deterministic), which the equivalence suite pins on the paper probes.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId, SpatialGraph, unit_disk_graph_from_array

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mobility.base import MobilityModel

#: Environment variable naming the default engine for new worlds.
ENGINE_ENV = "REPRO_ENGINE"

ENGINE_REFERENCE = "reference"
ENGINE_VECTORIZED = "vectorized"

#: Every selectable engine, reference first (the default).
ENGINES = (ENGINE_REFERENCE, ENGINE_VECTORIZED)


class VectorizedEngineUnavailableError(RuntimeError):
    """The vectorized engine was selected but numpy is not importable."""


_NUMPY_UNSET = object()
_numpy_cache: object = _NUMPY_UNSET


def numpy_or_none():
    """The numpy module, or ``None`` when it cannot be imported.

    The import result is cached; tests monkeypatch ``_numpy_cache`` to
    ``None`` to exercise the numpy-missing error path without
    uninstalling anything.
    """
    global _numpy_cache
    if _numpy_cache is _NUMPY_UNSET:
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy ships in CI
            numpy = None
        _numpy_cache = numpy
    return _numpy_cache


def require_numpy():
    """Numpy module for the vectorized engine, or a clear error."""
    module = numpy_or_none()
    if module is None:
        raise VectorizedEngineUnavailableError(
            "the 'vectorized' engine requires numpy, which is not "
            "installed; install it (pip install numpy, or the "
            "repro-glr[fast] extra) or select the 'reference' engine "
            f"(unset {ENGINE_ENV} / engine=reference)"
        )
    return module


def resolve_engine(engine: str | None = None) -> str:
    """Resolve the effective engine name.

    ``engine`` (when not ``None``) wins over the :data:`ENGINE_ENV`
    environment variable, which wins over the ``reference`` default.
    Unknown names raise :class:`ValueError`; resolving to
    ``vectorized`` without numpy raises
    :class:`VectorizedEngineUnavailableError`.
    """
    if engine is None:
        engine = os.environ.get(ENGINE_ENV, "") or ENGINE_REFERENCE
    engine = engine.strip().lower()
    if engine not in ENGINES:
        raise ValueError(
            f"unknown simulation engine {engine!r}; choose one of "
            + ", ".join(ENGINES)
        )
    if engine == ENGINE_VECTORIZED:
        require_numpy()
    return engine


class ArrayState:
    """One beacon epoch's node positions as a ``(N, 2)`` float64 array.

    ``ids[i]`` owns row ``i`` of ``positions``; the array is marked
    read-only so views handed to stats/analysis code cannot corrupt the
    epoch snapshot.
    """

    __slots__ = ("ids", "positions", "_index")

    def __init__(self, ids: Sequence[NodeId], positions) -> None:
        np = require_numpy()
        array = np.asarray(positions, dtype=np.float64)
        if array.ndim != 2 or array.shape[1] != 2:
            raise ValueError(
                f"positions must have shape (N, 2), got {array.shape}"
            )
        if array.shape[0] != len(ids):
            raise ValueError(
                f"{len(ids)} ids but {array.shape[0]} position rows"
            )
        array.setflags(write=False)
        self.ids: tuple[NodeId, ...] = tuple(ids)
        self.positions = array
        self._index: dict[NodeId, int] | None = None

    @classmethod
    def from_mobility(cls, mobility: "MobilityModel", t: float) -> "ArrayState":
        """Batch-evaluate ``mobility`` at time ``t`` into array state."""
        return cls(mobility.node_ids, mobility.positions_array(t))

    def __len__(self) -> int:
        return len(self.ids)

    def index_of(self, node: NodeId) -> int:
        """Row index of ``node`` (lazily built id -> row map)."""
        if self._index is None:
            self._index = {node: i for i, node in enumerate(self.ids)}
        return self._index[node]

    def point(self, node: NodeId) -> Point:
        """``node``'s position as a :class:`Point`."""
        row = self.positions[self.index_of(node)]
        return Point(float(row[0]), float(row[1]))

    def as_points(self) -> dict[NodeId, Point]:
        """Dict view (node -> Point) matching the reference layout."""
        rows = self.positions.tolist()
        return {
            node: Point(row[0], row[1])
            for node, row in zip(self.ids, rows)
        }

    def unit_disk_snapshot(self, radius: float) -> SpatialGraph:
        """The UDG over this state via the vectorized cell-bin kernel."""
        return unit_disk_graph_from_array(self.ids, self.positions, radius)
