"""Event scheduler — the heart of the discrete-event simulator.

A classic calendar built on :mod:`heapq`.  Events are ``(time, seq,
callback)`` triples; ``seq`` is a monotonically increasing tiebreaker so
same-time events fire in scheduling order (deterministic replays matter
more than queue fairness here).  Cancellation is lazy: handles are
flagged and skipped when popped, which keeps cancel O(1).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Opaque handle returned by scheduling calls; supports cancel()."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        """True when the event was cancelled before firing."""
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time


class Simulator:
    """Discrete-event simulator clock and calendar."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[_Event] = []
        self._seq: int = 0
        self._events_processed: int = 0

    @property
    def events_processed(self) -> int:
        """Count of events executed so far (diagnostics/benchmarks)."""
        return self._events_processed

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if math.isnan(time):
            raise ValueError("event time may not be NaN")
        if time < self.now:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        event = _Event(time=time, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, callback)

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns False when the calendar is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run events until the calendar empties or ``until`` is reached.

        With ``until`` given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so post-run metric samples
        see the full horizon.
        """
        if until is not None and until < self.now:
            raise ValueError("cannot run backwards in time")
        while self._heap:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
        if until is not None:
            self.now = max(self.now, until)

    def pending_events(self) -> int:
        """Number of scheduled, non-cancelled events."""
        return sum(1 for e in self._heap if not e.cancelled)


class PeriodicTask:
    """A self-rescheduling task with optional per-fire jitter.

    Used for beacon loops and protocol check-interval timers.  The
    jitter source is an injected callable so that determinism stays in
    the caller's hands (pass ``rng.uniform``).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], None],
        jitter: float = 0.0,
        uniform: Callable[[float, float], float] | None = None,
        start_offset: float = 0.0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if jitter < 0 or jitter >= interval:
            raise ValueError("jitter must satisfy 0 <= jitter < interval")
        self._sim = sim
        self._interval = interval
        self._callback = callback
        self._jitter = jitter
        self._uniform = uniform
        self._stopped = False
        self._handle: EventHandle | None = None
        self._schedule_next(start_offset)

    def _schedule_next(self, delay: float) -> None:
        if self._stopped:
            return
        extra = 0.0
        if self._jitter > 0 and self._uniform is not None:
            extra = self._uniform(-self._jitter, self._jitter)
        actual = max(0.0, delay + extra)
        self._handle = self._sim.schedule(actual, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        self._schedule_next(self._interval)

    def stop(self) -> None:
        """Stop firing; pending occurrence is cancelled."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
