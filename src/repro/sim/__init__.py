"""Discrete-event wireless network simulator.

This package replaces the paper's NS-2 substrate (see DESIGN.md for the
substitution argument).  The pieces:

- :mod:`repro.sim.engine` — event scheduler (binary-heap calendar).
- :mod:`repro.sim.messages` — application messages and link frames.
- :mod:`repro.sim.storage` — bounded message stores with eviction and
  peak-occupancy tracking (the paper's storage metric).
- :mod:`repro.sim.radio` — propagation model (disk range abstraction of
  Two Ray Ground) and airtime accounting.
- :mod:`repro.sim.mac` — contention MAC: per-node FIFO transmit queue
  (Table 1's link-layer queue), carrier-sense backoff that grows with
  concurrent transmissions in range, collision loss, half-duplex nodes.
- :mod:`repro.sim.neighbors` — beaconing/neighbour discovery (the IMEP
  stand-in) plus timestamped location tables (location diffusion).
- :mod:`repro.sim.stats` — metrics collection.
- :mod:`repro.sim.world` — ties everything together and hosts protocols.
"""

from repro.sim.engine import Simulator
from repro.sim.messages import Frame, FrameKind, Message
from repro.sim.radio import RadioConfig
from repro.sim.stats import MetricsCollector, SimulationMetrics
from repro.sim.storage import MessageStore, StoreFullError
from repro.sim.world import NodeApi, Protocol, World, WorldConfig

__all__ = [
    "Frame",
    "FrameKind",
    "Message",
    "MessageStore",
    "MetricsCollector",
    "NodeApi",
    "Protocol",
    "RadioConfig",
    "SimulationMetrics",
    "Simulator",
    "StoreFullError",
    "World",
    "WorldConfig",
]
