"""Opt-in per-task phase profiler for the simulation hot path.

The ROADMAP's vectorization work needs to know *where* a task's wall
time goes — mobility stepping, UDG/beacon rebuild, MAC contention,
protocol decisions, delivery bookkeeping — not just the total.  This
module provides ``perf_counter_ns`` accumulators that the engine
threads through :class:`~repro.sim.world.World` and its subsystems.

Two hard requirements shape the design:

- **Zero overhead when off.**  Profiling is enabled by the
  ``REPRO_PROFILE_PHASES`` environment variable (inherited by process
  pool children, like the chaos sleep knob).  When off, every hook
  holds :data:`NULL_PROFILER`, whose ``start``/``add`` are empty-body
  methods — no branches in the hot path, no timestamps taken.
- **Exclusive attribution.**  Phases nest (a protocol decision hands a
  frame to the MAC, whose send path runs inside the decision's call
  frame), so the enabled profiler keeps a stack of child-time
  accumulators and charges each phase only its own time.  Phase totals
  therefore sum to at most the task's wall time instead of
  double-counting nested work.

The snapshot rides on the task's stream record as a ``phase_profile``
field — beside ``wall_time_s``/``cached`` provenance, *not* inside the
metrics payload, so metric streams stay bit-identical with the
profiler on (the equivalence tests pin this).
"""

from __future__ import annotations

import os
import time
from typing import Iterable, Mapping

#: Set (to anything but "" or "0") to profile every task's phases.
PROFILE_ENV = "REPRO_PROFILE_PHASES"

PHASE_MOBILITY = "mobility"
PHASE_UDG = "udg_rebuild"
PHASE_MAC = "mac"
PHASE_PROTOCOL = "protocol"
PHASE_DELIVERY = "delivery"

#: Every phase the hot path instruments, in display order.
PHASES = (
    PHASE_MOBILITY,
    PHASE_UDG,
    PHASE_MAC,
    PHASE_PROTOCOL,
    PHASE_DELIVERY,
)


class PhaseProfiler:
    """Accumulates exclusive per-phase nanoseconds.

    Usage at a hook site::

        t0 = profiler.start()
        ...the phase's work...
        profiler.add(PHASE_MAC, t0)

    ``start``/``add`` pairs must bracket properly (they follow the call
    stack, so they do); ``add`` charges the elapsed time minus any time
    already charged to phases that started and finished inside it.
    """

    __slots__ = ("_acc", "_stack")

    #: Class attribute so the null object can override it cheaply.
    enabled = True

    def __init__(self) -> None:
        self._acc: dict[str, int] = {}
        self._stack: list[int] = []

    def start(self) -> int:
        self._stack.append(0)
        return time.perf_counter_ns()

    def add(self, phase: str, t0: int) -> None:
        elapsed = time.perf_counter_ns() - t0
        child_ns = self._stack.pop()
        self._acc[phase] = self._acc.get(phase, 0) + elapsed - child_ns
        if self._stack:
            self._stack[-1] += elapsed

    def snapshot(self) -> dict[str, float]:
        """Accumulated seconds per phase, every phase always present.

        A phase the task never entered reads ``0.0`` rather than being
        absent — the block's key set is schema, not data, so consumers
        (aggregation, the CI phase table) never special-case sparse
        tasks.
        """
        return {
            phase: round(self._acc.get(phase, 0) * 1e-9, 9)
            for phase in PHASES
        }


class _NullProfiler:
    """The do-nothing stand-in every hook holds when profiling is off."""

    __slots__ = ()

    enabled = False

    def start(self) -> int:
        return 0

    def add(self, phase: str, t0: int) -> None:
        pass

    def snapshot(self) -> dict[str, float]:
        return {}


#: The shared no-op instance (stateless, safe to share everywhere).
NULL_PROFILER = _NullProfiler()


def profiling_enabled() -> bool:
    """Whether :data:`PROFILE_ENV` asks for phase profiling."""
    return os.environ.get(PROFILE_ENV, "") not in ("", "0")


def make_profiler() -> PhaseProfiler | _NullProfiler:
    """A live profiler when the environment opts in, else the null one."""
    return PhaseProfiler() if profiling_enabled() else NULL_PROFILER


def aggregate_phase_profiles(
    records: Iterable[Mapping],
) -> dict[tuple[str, str], dict[str, float]]:
    """Sum ``phase_profile`` blocks per (scenario, protocol) cell.

    Input is task stream records (dicts); records without a profile are
    skipped.  Each cell maps phase name to total seconds, plus a
    ``"tasks"`` count of the records that contributed, so callers can
    show means as well as totals.
    """
    cells: dict[tuple[str, str], dict[str, float]] = {}
    for record in records:
        profile = record.get("phase_profile")
        if not profile:
            continue
        cell = cells.setdefault(
            (record["scenario"], record["protocol"]), {"tasks": 0}
        )
        cell["tasks"] += 1
        for phase, seconds in profile.items():
            cell[phase] = round(cell.get(phase, 0.0) + seconds, 9)
    return cells
