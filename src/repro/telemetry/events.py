"""Structured run-event log: append-only ``events.jsonl`` per run dir.

Supervision used to narrate itself through throwaway callback strings;
this module gives every supervision fact a durable, typed record.  The
file discipline is the metric streams' (:mod:`repro.experiments.stream`),
reused deliberately rather than reinvented:

- each event is one ``\\n``-terminated JSON line written with a single
  ``write`` + flush + fsync, so a crash can tear only the tail;
- :func:`load_events` quarantines undecodable lines to an
  ``<events>.quarantined`` sidecar and atomically rewrites the file —
  but only the file's *writer* should repair; every read-only path
  (merge, status, the CLI) passes ``quarantine=False`` because a live
  writer may be mid-append on the final line;
- :func:`merge_events` unions per-origin event files (the supervisor's
  and each shard worker's, possibly mirror-pulled from remote hosts)
  into one history, ordered by ``(t_mono, encoded line)`` so ties in
  the monotonic timestamp break deterministically and merging the same
  inputs in any order is byte-identical.  Dedup is by exact encoded
  line, which makes re-merging an already-merged file idempotent.

Event schema (``kind == "event"``)::

    {"kind": "event", "type": <EVENT_TYPES member>,
     "t_mono": <monotonic seconds>, "t_wall": <unix seconds>,
     "shard": <int | null>, "host": <str | null>,
     "attempt": <int | null>, "msg": <str | null>,
     "payload": {<type-specific fields>}}

Header (first line, ``kind == "header"``)::

    {"kind": "header", "format": 1, "log": "events", "origin": <str>}

``t_mono`` orders events *within* one origin process; across hosts the
monotonic clocks are unrelated, which is why the merge key includes the
encoded line — the merged order is deterministic, not globally causal.
``t_wall`` is for humans and ``--since`` filtering.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

#: Bump when the event record schema changes incompatibly.
EVENTS_FORMAT = 1

#: Every event type the fabric emits.  ``campaign events --type`` and
#: the CI schema check validate against this set.
EVENT_TYPES = frozenset(
    {
        "run_start",  # supervisor: orchestration began (shard/host plan)
        "run_end",  # supervisor: orchestration finished (totals)
        "launch",  # a shard worker process was spawned
        "exit",  # a shard worker process ended (exit code)
        "stall",  # heartbeat silence crossed the stall threshold
        "requeue",  # a dead/stalled shard was relaunched
        "steal",  # leases moved from a busy shard to an idle one
        "reclaim",  # leases reclaimed from a workerless slot
        "chaos",  # fault injection fired (kill/slow)
        "host_join",  # elastic membership: a host joined mid-run
        "host_lost",  # a host stopped answering and was declared lost
        "shard_summary",  # per-shard end-of-run totals
        "heartbeat",  # a liveness touch, with its reason
        "adversary",  # the campaign injects Byzantine nodes (specs)
        "report",  # a trade-off report was generated from the run dir
    }
)

#: Fields every event record must carry to be loadable (``msg`` is
#: optional).  Extra fields are tolerated, mirroring the task streams'
#: superset rule, so a later format can add fields without stranding
#: old readers.
_EVENT_FIELDS = frozenset(
    {"type", "t_mono", "t_wall", "shard", "host", "attempt", "payload"}
)

#: Heartbeat events are throttled to this interval per (shard, reason)
#: so a tight supervisor tick or idle-wait loop cannot flood the log.
HEARTBEAT_EVERY_S = 5.0


class EventLogError(ValueError):
    """An events file is unusable as a whole (bad header, wrong file)."""


# The three line-discipline helpers below mirror stream.py's byte-for-
# byte.  They are redefined rather than imported because telemetry must
# stay an import leaf: the sim layer pulls in repro.telemetry.profile,
# and importing anything from repro.experiments here would close a
# cycle through stream -> sim.stats.


def _encode_line(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"


def _append_line(path: Path, record: dict) -> None:
    """One line, one ``write``, flush+fsync: a crash tears only a tail."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(_encode_line(record))
        handle.flush()
        os.fsync(handle.fileno())


def _atomic_write(path: Path, records: Sequence[dict]) -> None:
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(_encode_line(record))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


@dataclass(frozen=True)
class EventLogInfo:
    """A loaded events file: header, event records, repair count."""

    path: Path
    header: dict
    records: list[dict]
    quarantined: int = 0

    @property
    def origin(self) -> str:
        """Which process wrote this file (``supervisor``, ``shard3``...)."""
        return self.header["origin"]


def make_events_header(origin: str) -> dict:
    """The header record for a new events file."""
    return {
        "kind": "header",
        "format": EVENTS_FORMAT,
        "log": "events",
        "origin": origin,
    }


def make_event(
    type: str,
    *,
    t_mono: float,
    t_wall: float,
    shard: int | None = None,
    host: str | None = None,
    attempt: int | None = None,
    msg: str | None = None,
    payload: dict | None = None,
) -> dict:
    """One typed event record (see the module schema)."""
    return {
        "kind": "event",
        "type": type,
        "t_mono": t_mono,
        "t_wall": t_wall,
        "shard": shard,
        "host": host,
        "attempt": attempt,
        "msg": msg,
        "payload": payload if payload is not None else {},
    }


def _is_real(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _parse_event_line(line: str) -> dict | None:
    """A validated record, or ``None`` for anything undecodable."""
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict):
        return None
    kind = record.get("kind")
    if kind == "header":
        if record.get("format") != EVENTS_FORMAT:
            return None
        if record.get("log") != "events":
            return None
        if not isinstance(record.get("origin"), str):
            return None
        return record
    if kind == "event":
        if not _EVENT_FIELDS <= set(record):
            return None
        if not isinstance(record["type"], str) or not record["type"]:
            return None
        if not _is_real(record["t_mono"]) or not _is_real(record["t_wall"]):
            return None
        for field in ("shard", "attempt"):
            value = record[field]
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                return None
        if record["host"] is not None and not isinstance(record["host"], str):
            return None
        if not isinstance(record["payload"], dict):
            return None
        msg = record.get("msg")
        if msg is not None and not isinstance(msg, str):
            return None
        return record
    return None


def load_events(
    path: str | Path, quarantine: bool = True
) -> EventLogInfo:
    """Load an events file, quarantining undecodable lines.

    Same contract as :func:`repro.experiments.stream.load_stream`: a
    torn tail (or any undecodable line) moves raw to
    ``<events>.quarantined`` and the file is atomically rewritten with
    the survivors — but **only when** ``quarantine=True``, which only
    the file's own writer should pass.  Readers of a possibly-live file
    (merge, status, CLI) pass ``quarantine=False`` so they cannot
    delete a record whose writer completes it a moment later.  A
    missing or invalid header raises :class:`EventLogError` — wrong
    file, not damage.
    """
    target = Path(path)
    try:
        text = target.read_text(encoding="utf-8", errors="surrogateescape")
    except OSError as exc:
        raise EventLogError(
            f"cannot read events file {target}: {exc}"
        ) from exc

    header: dict | None = None
    records: list[dict] = []
    bad_lines: list[str] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = _parse_event_line(line)
        if record is None:
            bad_lines.append(line)
        elif record["kind"] == "header":
            if header is None:
                header = record
            else:
                bad_lines.append(line)
        else:
            records.append(record)

    if header is None:
        raise EventLogError(
            f"events file {target} has no valid header line; not an "
            f"event log (or format {EVENTS_FORMAT} mismatch)"
        )

    if bad_lines and quarantine:
        sidecar = target.with_name(target.name + ".quarantined")
        with open(
            sidecar, "a", encoding="utf-8", errors="surrogateescape"
        ) as handle:
            for line in bad_lines:
                handle.write(line + "\n")
        _atomic_write(target, [header, *records])

    return EventLogInfo(
        path=target,
        header=header,
        records=records,
        quarantined=len(bad_lines),
    )


class EventLog:
    """One origin's append-only event writer.

    Lazily writes its header on the first emit, so constructing a log
    for a run dir that never produces events leaves no file behind.
    """

    def __init__(self, path: str | Path, origin: str) -> None:
        self.path = Path(path)
        self.origin = origin
        self._ready = False
        self._last_emit: dict[str, float] = {}

    def ensure(self) -> "EventLog":
        """Create the file with a header, or adopt an existing one."""
        if not self._ready:
            if not self.path.exists() or self.path.stat().st_size == 0:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                _atomic_write(self.path, [make_events_header(self.origin)])
            self._ready = True
        return self

    def emit(
        self,
        type: str,
        *,
        shard: int | None = None,
        host: str | None = None,
        attempt: int | None = None,
        msg: str | None = None,
        **payload: object,
    ) -> dict:
        """Append one event, crash-safely, and return its record."""
        self.ensure()
        record = make_event(
            type,
            t_mono=time.monotonic(),
            t_wall=time.time(),
            shard=shard,
            host=host,
            attempt=attempt,
            msg=msg,
            payload=dict(payload),
        )
        _append_line(self.path, record)
        return record

    def emit_throttled(
        self,
        throttle_key: str,
        min_interval_s: float,
        type: str,
        **kwargs: object,
    ) -> dict | None:
        """Emit unless ``throttle_key`` fired within ``min_interval_s``.

        The throttle is per writer instance and per key — heartbeat
        touches use ``"hb:<shard>:<reason>"`` so each reason stays
        independently visible without per-tick flooding.
        """
        now = time.monotonic()
        last = self._last_emit.get(throttle_key)
        if last is not None and now - last < min_interval_s:
            return None
        self._last_emit[throttle_key] = now
        return self.emit(type, **kwargs)  # type: ignore[arg-type]


def _merge_sort_key(record: dict) -> tuple:
    return (record["t_mono"], _encode_line(record))


def merge_events(
    out_path: str | Path, in_paths: Sequence[str | Path]
) -> EventLogInfo:
    """Union per-origin event files into one deterministic history.

    Missing inputs are skipped (a worker killed before its first emit
    never wrote a file); at least one input must exist.  Records are
    deduplicated by exact encoded line — identical events from an
    earlier merge collapse, so re-merging the merged file with the same
    shard files is idempotent.  Output order is ``(t_mono, encoded)``:
    monotonic timestamps order each origin's own events, and the
    encoded-line tiebreak makes cross-origin ties deterministic.
    """
    infos: list[EventLogInfo] = []
    for path in in_paths:
        target = Path(path)
        if not target.exists():
            continue
        infos.append(load_events(target, quarantine=False))
    if not infos:
        raise EventLogError("nothing to merge: no event files exist")

    seen: set[str] = set()
    merged: list[dict] = []
    for info in infos:
        for record in info.records:
            encoded = _encode_line(record)
            if encoded in seen:
                continue
            seen.add(encoded)
            merged.append(record)
    merged.sort(key=_merge_sort_key)

    target = Path(out_path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header = make_events_header("merged")
    _atomic_write(target, [header, *merged])
    return EventLogInfo(
        path=target,
        header=header,
        records=merged,
        quarantined=sum(info.quarantined for info in infos),
    )


def filter_events(
    records: Iterable[dict],
    *,
    type: str | None = None,
    shard: int | None = None,
    since_wall: float | None = None,
) -> list[dict]:
    """Events matching every given filter (``None`` = don't care)."""
    out = []
    for record in records:
        if type is not None and record["type"] != type:
            continue
        if shard is not None and record["shard"] != shard:
            continue
        if since_wall is not None and record["t_wall"] < since_wall:
            continue
        out.append(record)
    return out


def unknown_event_types(records: Iterable[dict]) -> set[str]:
    """Event types outside :data:`EVENT_TYPES` (schema validation)."""
    return {r["type"] for r in records} - EVENT_TYPES


def render_event(record: dict) -> str:
    """One human-readable line for ``campaign events``."""
    stamp = time.strftime(
        "%H:%M:%S", time.localtime(record["t_wall"])
    )
    who = []
    if record["shard"] is not None:
        who.append(f"shard {record['shard']}")
    if record["host"] is not None:
        who.append(f"host {record['host']}")
    if record["attempt"] is not None:
        who.append(f"attempt {record['attempt']}")
    identity = f" [{', '.join(who)}]" if who else ""
    detail = record["msg"] if record.get("msg") else ""
    if not detail and record["payload"]:
        detail = json.dumps(record["payload"], sort_keys=True)
    tail = f": {detail}" if detail else ""
    return f"{stamp} {record['type']:<13}{identity}{tail}"
