"""Run telemetry: structured event log, phase profiler, status surface.

Everything the supervision fabric knows but used to throw away —
launch/death/requeue/steal events, heartbeat touch reasons, where the
simulation hot path spends its time — lands here in queryable form:

- :mod:`repro.telemetry.events` — the append-only ``events.jsonl``
  run-event log (same single-write+fsync and torn-line quarantine
  discipline as the metric streams);
- :mod:`repro.telemetry.profile` — the opt-in per-task phase profiler
  (``REPRO_PROFILE_PHASES=1``), a no-op object when off.
"""

from repro.telemetry.events import (
    EVENT_TYPES,
    EVENTS_FORMAT,
    EventLog,
    EventLogError,
    EventLogInfo,
    filter_events,
    load_events,
    make_event,
    make_events_header,
    merge_events,
    render_event,
    unknown_event_types,
)
from repro.telemetry.profile import (
    NULL_PROFILER,
    PHASE_DELIVERY,
    PHASE_MAC,
    PHASE_MOBILITY,
    PHASE_PROTOCOL,
    PHASE_UDG,
    PHASES,
    PROFILE_ENV,
    PhaseProfiler,
    aggregate_phase_profiles,
    make_profiler,
    profiling_enabled,
)

__all__ = [
    "EVENT_TYPES",
    "EVENTS_FORMAT",
    "EventLog",
    "EventLogError",
    "EventLogInfo",
    "filter_events",
    "load_events",
    "make_event",
    "make_events_header",
    "merge_events",
    "render_event",
    "unknown_event_types",
    "NULL_PROFILER",
    "PHASE_DELIVERY",
    "PHASE_MAC",
    "PHASE_MOBILITY",
    "PHASE_PROTOCOL",
    "PHASE_UDG",
    "PHASES",
    "PROFILE_ENV",
    "PhaseProfiler",
    "aggregate_phase_profiles",
    "make_profiler",
    "profiling_enabled",
]
