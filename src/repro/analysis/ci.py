"""Student-t confidence intervals (paper: 90% level over 10 runs)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: Two-sided Student-t critical values at the 90% confidence level
#: (5% in each tail), indexed by degrees of freedom.
_T90: dict[int, float] = {
    1: 6.314,
    2: 2.920,
    3: 2.353,
    4: 2.132,
    5: 2.015,
    6: 1.943,
    7: 1.895,
    8: 1.860,
    9: 1.833,
    10: 1.812,
    11: 1.796,
    12: 1.782,
    13: 1.771,
    14: 1.761,
    15: 1.753,
    16: 1.746,
    17: 1.740,
    18: 1.734,
    19: 1.729,
    20: 1.725,
    25: 1.708,
    30: 1.697,
    40: 1.684,
    60: 1.671,
    120: 1.658,
}
_T90_NORMAL = 1.645


def t_critical_90(df: int) -> float:
    """Two-sided 90% Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1")
    if df in _T90:
        return _T90[df]
    candidates = [k for k in _T90 if k <= df]
    if candidates:
        return _T90[max(candidates)]
    return _T90_NORMAL


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with its symmetric confidence half-width."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.2f}±{self.half_width:.2f}"


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.90
) -> ConfidenceInterval:
    """Mean and Student-t confidence half-width of ``samples``.

    Only the paper's 90% level is supported (it is the only level the
    evaluation needs); a single sample yields a zero-width interval.
    """
    if confidence != 0.90:
        raise ValueError("only the paper's 90% confidence level is supported")
    if not samples:
        raise ValueError("cannot summarize an empty sample")
    n = len(samples)
    mean = sum(samples) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, n=1)
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    sem = math.sqrt(variance / n)
    return ConfidenceInterval(
        mean=mean, half_width=t_critical_90(n - 1) * sem, n=n
    )
