"""Multi-objective trade-off analysis over campaign grids.

The paper's GLR-vs-epidemic comparison is fundamentally a
delivery/latency/storage trade-off: epidemic buys delivery with
storage, GLR buys storage with latency.  Following the DTN trade-off
white paper (arXiv 2009.03741), this module reads a campaign grid as a
multi-objective problem instead of a stack of single-metric tables:

- :func:`pareto_frontier` — the non-dominated protocol set of one
  scenario cell over (delivery ratio up, latency down, storage down);
- :func:`rank_protocols` / :func:`scenario_rankings` — per-scenario
  protocol rankings on one metric, with bootstrap confidence intervals
  (the replicate counts are far too small for normality assumptions to
  be the only offer);
- :func:`dominance_counts` / :func:`regret_table` — cross-scenario
  summaries: how often each protocol is Pareto-optimal, and how far it
  falls behind the per-cell best in the worst case.

Everything is deterministic: bootstrap resampling is seeded, and all
orderings derive from the spec's sweep order or lexicographic protocol
names.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.aggregate import MetricSummary

#: The three trade-off objectives, as (name, higher_is_better) pairs.
#: Latency and storage are costs; delivery is the benefit.
OBJECTIVES: tuple[tuple[str, bool], ...] = (
    ("delivery_ratio", True),
    ("average_latency", False),
    ("average_peak_storage", False),
)


@dataclass(frozen=True)
class TradeoffPoint:
    """One protocol's position in a scenario's objective space.

    ``latency`` is ``None`` when no replicate delivered anything —
    treated as *infinitely bad* by dominance (an undelivered message
    has unbounded latency), so a protocol cannot reach the frontier on
    the strength of never delivering.
    """

    protocol: str
    delivery_ratio: float
    latency: float | None
    storage: float
    runs: int

    def objectives(self) -> tuple[float, float, float]:
        """The point as a minimisation vector (lower is better)."""
        latency = math.inf if self.latency is None else self.latency
        return (-self.delivery_ratio, latency, self.storage)


def point_from_summary(summary: MetricSummary) -> TradeoffPoint:
    """A cell summary's mean vector as a :class:`TradeoffPoint`."""
    return TradeoffPoint(
        protocol=summary.protocol,
        delivery_ratio=summary.delivery_ratio.mean,
        latency=(
            summary.average_latency.mean
            if summary.average_latency is not None
            else None
        ),
        storage=summary.average_peak_storage.mean,
        runs=summary.runs,
    )


def dominates(a: TradeoffPoint, b: TradeoffPoint) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere.  Identical objective vectors tie —
    neither dominates — so ties survive to the frontier together."""
    va, vb = a.objectives(), b.objectives()
    return all(x <= y for x, y in zip(va, vb)) and va != vb


def pareto_frontier(
    points: Sequence[TradeoffPoint],
) -> list[TradeoffPoint]:
    """The non-dominated subset of ``points``, in input order.

    A single point is trivially its own frontier; exact objective ties
    all stay (dropping one of two indistinguishable protocols would
    invent a preference the data does not express).
    """
    return [
        p
        for p in points
        if not any(dominates(other, p) for other in points)
    ]


def scenario_frontiers(
    summaries: Mapping[tuple[str, str], MetricSummary],
) -> dict[str, list[tuple[TradeoffPoint, bool]]]:
    """Per-scenario objective points with their frontier membership.

    ``summaries`` is keyed ``(scenario name, protocol label)`` as the
    aggregation layer emits it; the result maps each scenario to its
    protocols' points (in input order) tagged ``True`` when
    Pareto-optimal within that scenario.
    """
    by_scenario: dict[str, list[TradeoffPoint]] = {}
    for (scenario, _), summary in summaries.items():
        by_scenario.setdefault(scenario, []).append(
            point_from_summary(summary)
        )
    out: dict[str, list[tuple[TradeoffPoint, bool]]] = {}
    for scenario, points in by_scenario.items():
        frontier = {id(p) for p in pareto_frontier(points)}
        out[scenario] = [(p, id(p) in frontier) for p in points]
    return out


# ---------------------------------------------------------------------------
# Bootstrap rankings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProtocolRank:
    """One protocol's rank on one metric, with a bootstrap CI."""

    rank: int
    protocol: str
    mean: float
    #: 90% percentile-bootstrap interval of the mean.
    low: float
    high: float
    n: int


def bootstrap_mean_interval(
    samples: Sequence[float],
    resamples: int = 1000,
    seed: int = 1,
) -> tuple[float, float]:
    """90% percentile-bootstrap interval of the sample mean.

    Deterministic for a given ``seed``.  A single sample yields a
    zero-width interval (nothing to resample), mirroring the Student-t
    path in :mod:`repro.analysis.ci`.
    """
    if not samples:
        raise ValueError("cannot bootstrap an empty sample")
    if resamples < 1:
        raise ValueError("need at least one resample")
    n = len(samples)
    if n == 1:
        return (samples[0], samples[0])
    rng = random.Random(seed)
    means = sorted(
        sum(samples[rng.randrange(n)] for _ in range(n)) / n
        for _ in range(resamples)
    )
    low_index = round(0.05 * (resamples - 1))
    high_index = round(0.95 * (resamples - 1))
    return (means[low_index], means[high_index])


def rank_protocols(
    samples_by_protocol: Mapping[str, Sequence[float]],
    higher_is_better: bool = True,
    resamples: int = 1000,
    seed: int = 1,
) -> list[ProtocolRank]:
    """Rank protocols by mean of one metric, with bootstrap CIs.

    Ranks are 1-based, ordered best-first; exact mean ties share a rank
    (standard competition ranking: two protocols tied at rank 1 push
    the next to rank 3) and order lexicographically for display.  Each
    protocol's bootstrap stream is seeded from ``seed`` and its
    position in sorted name order, so rankings are reproducible
    regardless of mapping iteration order.
    """
    if not samples_by_protocol:
        raise ValueError("nothing to rank: no protocols")
    rows = []
    for index, (protocol, samples) in enumerate(
        sorted(samples_by_protocol.items())
    ):
        samples = [float(s) for s in samples]
        if not samples:
            raise ValueError(f"protocol {protocol!r} has no samples")
        mean = sum(samples) / len(samples)
        low, high = bootstrap_mean_interval(
            samples, resamples=resamples, seed=seed * 10007 + index
        )
        rows.append((protocol, mean, low, high, len(samples)))
    rows.sort(
        key=lambda row: (-row[1] if higher_is_better else row[1], row[0])
    )
    ranked: list[ProtocolRank] = []
    for position, (protocol, mean, low, high, n) in enumerate(rows):
        if position > 0 and mean == rows[position - 1][1]:
            rank = ranked[-1].rank  # tie: share the better rank
        else:
            rank = position + 1
        ranked.append(
            ProtocolRank(
                rank=rank, protocol=protocol, mean=mean,
                low=low, high=high, n=n,
            )
        )
    return ranked


def scenario_rankings(
    values_by_cell: Mapping[tuple[str, str], Sequence[float | None]],
    higher_is_better: bool = True,
    resamples: int = 1000,
    seed: int = 1,
) -> dict[str, list[ProtocolRank]]:
    """Per-scenario protocol rankings over raw replicate values.

    ``values_by_cell`` is keyed ``(scenario, protocol)`` (the
    :meth:`~repro.analysis.store.Query.values` shape); ``None`` samples
    (an optional metric with nothing delivered) are dropped, and a
    protocol with no usable samples in a scenario is excluded from that
    scenario's ranking rather than ranked on invented data.
    """
    by_scenario: dict[str, dict[str, list[float]]] = {}
    for (scenario, protocol), values in values_by_cell.items():
        usable = [float(v) for v in values if v is not None]
        if usable:
            by_scenario.setdefault(scenario, {})[protocol] = usable
    return {
        scenario: rank_protocols(
            samples,
            higher_is_better=higher_is_better,
            resamples=resamples,
            seed=seed,
        )
        for scenario, samples in by_scenario.items()
        if samples
    }


# ---------------------------------------------------------------------------
# Dominance and regret summaries
# ---------------------------------------------------------------------------


def dominance_counts(
    frontiers: Mapping[str, Sequence[tuple[TradeoffPoint, bool]]],
) -> dict[str, tuple[int, int]]:
    """Per protocol: (scenarios where Pareto-optimal, scenarios present).

    The cross-scenario robustness read: a protocol on every frontier is
    never strictly worse than an alternative on all three objectives at
    once, anywhere in the grid.
    """
    counts: dict[str, list[int]] = {}
    for points in frontiers.values():
        for point, on_frontier in points:
            entry = counts.setdefault(point.protocol, [0, 0])
            entry[0] += 1 if on_frontier else 0
            entry[1] += 1
    return {
        protocol: (on, total) for protocol, (on, total) in counts.items()
    }


def regret_table(
    summaries: Mapping[tuple[str, str], MetricSummary],
) -> dict[str, dict[str, float | None]]:
    """Worst-case regret per protocol and objective, across scenarios.

    Regret in a scenario is the gap to that scenario's best mean
    (best − value for delivery ratio; value − best for the cost
    objectives), in the metric's own units; the table keeps each
    protocol's maximum over all scenarios it appears in.  ``None``
    marks latency regret for a protocol that delivered nothing in some
    scenario (no finite latency there, so its worst case is unbounded)
    — worse than any number, and reported as such rather than faked.
    """
    by_scenario: dict[str, list[MetricSummary]] = {}
    for (scenario, _), summary in summaries.items():
        by_scenario.setdefault(scenario, []).append(summary)
    worst: dict[str, dict[str, float | None]] = {}
    for cell_summaries in by_scenario.values():
        for name, higher in OBJECTIVES:
            values = {}
            for summary in cell_summaries:
                interval = getattr(summary, name)
                values[summary.protocol] = (
                    interval.mean if interval is not None else None
                )
            finite = [v for v in values.values() if v is not None]
            if not finite:
                continue
            best = max(finite) if higher else min(finite)
            for protocol, value in values.items():
                row = worst.setdefault(
                    protocol, {metric: 0.0 for metric, _ in OBJECTIVES}
                )
                if value is None:
                    row[name] = None  # undelivered: unbounded regret
                elif row[name] is not None:
                    gap = (best - value) if higher else (value - best)
                    row[name] = max(row[name], gap)
    return worst
