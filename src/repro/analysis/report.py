"""Self-contained trade-off reports over a campaign's results.

The rendered artifact of the analysis stack: `repro report RUN_DIR`
(or a merged stream) builds a :class:`~repro.analysis.store.ResultStore`
and emits one document — markdown or a dependency-free single-file HTML
page — holding:

- the campaign overview (spec identity, grid shape, coverage);
- per-scenario **Pareto frontier** tables over
  (delivery ratio, latency, storage);
- per-scenario protocol **rankings** with bootstrap CIs, and a
  rank matrix per objective;
- cross-scenario **dominance and worst-case regret** summaries;
- per-axis **trade-off curves** (metric vs each swept grid axis, one
  column per protocol) when the campaign has a grid.

Rendering is deterministic: same stream in, same bytes out (bootstrap
resampling is seeded), so reports can be diffed, committed, and
asserted on in CI.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field

from repro.analysis.store import Query, ResultStore, axis_table
from repro.analysis.tradeoff import (
    OBJECTIVES,
    dominance_counts,
    regret_table,
    scenario_frontiers,
    scenario_rankings,
)

#: Grid axes rendered as trade-off curves (metric vs axis value).
CURVE_METRICS = tuple(name for name, _ in OBJECTIVES)


@dataclass(frozen=True)
class Table:
    """One rendered table: caption, header row, body rows."""

    caption: str
    headers: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]


@dataclass(frozen=True)
class Section:
    """One report section: heading, prose paragraphs, tables."""

    title: str
    paragraphs: tuple[str, ...] = ()
    tables: tuple[Table, ...] = field(default_factory=tuple)


def _fmt(value: object, digits: int = 3) -> str:
    if value is None:
        return "n/a"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _fmt_interval(mean: float, low: float, high: float) -> str:
    return f"{mean:.3f} [{low:.3f}, {high:.3f}]"


def build_sections(
    store: ResultStore,
    resamples: int = 1000,
    seed: int = 1,
    query: Query | None = None,
) -> list[Section]:
    """The report's content, structured and renderer-agnostic.

    ``query`` restricts the report to a filtered cell set (the CLI's
    ``--scenario/--protocol/--mobility/--adversary`` flags); ``None``
    reports the whole grid.  ``resamples``/``seed`` parameterise the
    bootstrap used for ranking CIs; everything else is a pure function
    of the selected records.
    """
    spec = store.spec
    if query is None:
        query = store.select()
    result = query.result()
    summaries = result.summaries()
    sections: list[Section] = []

    # -- overview -------------------------------------------------------
    expected = len(query.cells) * spec.replicates
    recorded = len(query.records())
    coverage = (
        f"{recorded}/{expected} task records "
        f"({len(result.metrics)}/{len(query.cells)} cells with data)"
    )
    overview = [
        f"Campaign **{spec.name}** — spec hash `{store.spec_hash[:12]}`.",
        f"{len(query.scenarios())} scenario(s) x "
        f"{len(query.protocols())} protocol variant(s) x "
        f"{spec.replicates} replicate(s); coverage: {coverage}.",
    ]
    if store.damaged:
        overview.append(
            f"Warning: {store.damaged} undecodable stream line(s) were "
            f"skipped; those tasks are missing from every number below."
        )
    sections.append(Section(title="Overview", paragraphs=tuple(overview)))

    # -- Pareto frontiers ----------------------------------------------
    frontiers = scenario_frontiers(summaries)
    frontier_tables = []
    for scenario in query.scenarios():
        points = frontiers.get(scenario)
        if not points:
            continue
        on_frontier = sum(1 for _, keep in points if keep)
        rows = tuple(
            (
                point.protocol,
                _fmt(point.delivery_ratio),
                _fmt(point.latency, digits=2),
                _fmt(point.storage, digits=2),
                str(point.runs),
                "yes" if keep else "",
            )
            for point, keep in points
        )
        frontier_tables.append(
            Table(
                caption=(
                    f"{scenario} — Pareto frontier: {on_frontier} of "
                    f"{len(points)} protocol(s)"
                ),
                headers=(
                    "protocol", "delivery_ratio", "latency_s",
                    "avg_peak_storage", "runs", "frontier",
                ),
                rows=rows,
            )
        )
    sections.append(
        Section(
            title="Pareto frontiers (delivery up, latency down, storage down)",
            paragraphs=(
                "A protocol is on a scenario's frontier when no other "
                "protocol is at least as good on all three objectives "
                "and strictly better on one.  Undelivered latency "
                "(`n/a`) counts as infinitely bad.",
            ),
            tables=tuple(frontier_tables),
        )
    )

    # -- rankings -------------------------------------------------------
    rank_tables = []
    scenario_order = query.scenarios()
    protocol_order = query.protocols()
    for metric, higher in OBJECTIVES:
        values = {
            cell: runs
            for cell, runs in query.values(metric).items()
        }
        rankings = scenario_rankings(
            values,
            higher_is_better=higher,
            resamples=resamples,
            seed=seed,
        )
        matrix_rows = []
        for scenario in scenario_order:
            ranked = rankings.get(scenario)
            if not ranked:
                continue
            by_protocol = {r.protocol: r for r in ranked}
            matrix_rows.append(
                (scenario,)
                + tuple(
                    str(by_protocol[label].rank)
                    if label in by_protocol
                    else "-"
                    for label in protocol_order
                )
            )
        direction = "higher is better" if higher else "lower is better"
        rank_tables.append(
            Table(
                caption=f"Rank matrix — {metric} ({direction})",
                headers=("scenario",) + tuple(protocol_order),
                rows=tuple(matrix_rows),
            )
        )
    # Per-scenario detail with bootstrap CIs for the headline metric.
    detail_rows = []
    delivery_rankings = scenario_rankings(
        query.values("delivery_ratio"),
        higher_is_better=True,
        resamples=resamples,
        seed=seed,
    )
    for scenario in scenario_order:
        for entry in delivery_rankings.get(scenario, []):
            detail_rows.append(
                (
                    scenario,
                    str(entry.rank),
                    entry.protocol,
                    _fmt_interval(entry.mean, entry.low, entry.high),
                    str(entry.n),
                )
            )
    rank_tables.append(
        Table(
            caption=(
                "Delivery-ratio ranking detail "
                "(mean [90% bootstrap interval])"
            ),
            headers=("scenario", "rank", "protocol",
                     "delivery_ratio", "runs"),
            rows=tuple(detail_rows),
        )
    )
    sections.append(
        Section(
            title="Protocol rankings",
            paragraphs=(
                f"Ranks are per scenario and per objective (competition "
                f"ranking; ties share a rank).  Intervals are 90% "
                f"percentile bootstrap over {resamples} seeded "
                f"resamples.",
            ),
            tables=tuple(rank_tables),
        )
    )

    # -- dominance and regret ------------------------------------------
    counts = dominance_counts(frontiers)
    regrets = regret_table(summaries)
    summary_rows = []
    for label in protocol_order:
        if label not in counts:
            continue
        on, total = counts[label]
        regret = regrets.get(label, {})
        summary_rows.append(
            (
                label,
                f"{on}/{total}",
                _fmt(regret.get("delivery_ratio")),
                _fmt(regret.get("average_latency"), digits=2),
                _fmt(regret.get("average_peak_storage"), digits=2),
            )
        )
    sections.append(
        Section(
            title="Dominance and worst-case regret",
            paragraphs=(
                "`frontier` counts the scenarios where the protocol is "
                "Pareto-optimal.  Regret columns give the largest gap "
                "to the per-scenario best mean, in the metric's own "
                "units (`n/a`: the protocol delivered nothing in some "
                "scenario, making its latency regret unbounded).",
            ),
            tables=(
                Table(
                    caption="Cross-scenario summary",
                    headers=(
                        "protocol", "frontier",
                        "max regret delivery_ratio",
                        "max regret latency_s",
                        "max regret avg_peak_storage",
                    ),
                    rows=tuple(summary_rows),
                ),
            ),
        )
    )

    # -- per-axis trade-off curves -------------------------------------
    curve_tables = []
    metrics_by_cell = query.metrics_by_cell()
    for fname, axis_values in spec.grid:
        if len(axis_values) < 2:
            continue
        for metric in CURVE_METRICS:
            values, series = axis_table(
                list(query.cells), metrics_by_cell, fname, metric
            )
            if not values or not series:
                continue
            rows = tuple(
                (_fmt(value, digits=2),)
                + tuple(
                    _fmt(series[label][i], digits=3)
                    for label in series
                )
                for i, value in enumerate(values)
            )
            curve_tables.append(
                Table(
                    caption=f"{metric} vs {fname}",
                    headers=(fname,) + tuple(series),
                    rows=rows,
                )
            )
    if curve_tables:
        note = (
            "Mean of each metric at every axis value, one column per "
            "protocol."
        )
        if len(spec.grid) > 1:
            note += (
                "  With multiple grid axes the mean marginalises over "
                "the other axes."
            )
        sections.append(
            Section(
                title="Trade-off curves",
                paragraphs=(note,),
                tables=tuple(curve_tables),
            )
        )
    return sections


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------


def render_markdown(title: str, sections: list[Section]) -> str:
    """The report as one self-contained markdown document."""
    lines = [f"# {title}", ""]
    for section in sections:
        lines.append(f"## {section.title}")
        lines.append("")
        for paragraph in section.paragraphs:
            lines.append(paragraph)
            lines.append("")
        for table in section.tables:
            lines.append(f"**{table.caption}**")
            lines.append("")
            lines.append("| " + " | ".join(table.headers) + " |")
            lines.append("|" + "|".join(" --- " for _ in table.headers) + "|")
            for row in table.rows:
                lines.append("| " + " | ".join(row) + " |")
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


_HTML_STYLE = """
body { font-family: sans-serif; margin: 2rem auto; max-width: 60rem;
       color: #1a1a1a; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2rem; }
table { border-collapse: collapse; margin: .7rem 0 1.4rem; }
caption { caption-side: top; text-align: left; font-weight: bold;
          padding: .3rem 0; }
th, td { border: 1px solid #bbb; padding: .25rem .6rem;
         text-align: right; }
th:first-child, td:first-child { text-align: left; }
code { background: #f2f2f2; padding: 0 .2rem; }
""".strip()


def render_html(title: str, sections: list[Section]) -> str:
    """The report as one dependency-free, self-contained HTML page."""
    esc = _html.escape
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{esc(title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{esc(title)}</h1>",
    ]
    for section in sections:
        parts.append(f"<h2>{esc(section.title)}</h2>")
        for paragraph in section.paragraphs:
            parts.append(f"<p>{esc(paragraph)}</p>")
        for table in section.tables:
            parts.append("<table>")
            parts.append(f"<caption>{esc(table.caption)}</caption>")
            parts.append(
                "<tr>"
                + "".join(f"<th>{esc(h)}</th>" for h in table.headers)
                + "</tr>"
            )
            for row in table.rows:
                parts.append(
                    "<tr>"
                    + "".join(f"<td>{esc(cell)}</td>" for cell in row)
                    + "</tr>"
                )
            parts.append("</table>")
    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def generate_report(
    store: ResultStore,
    fmt: str = "markdown",
    resamples: int = 1000,
    seed: int = 1,
    query: Query | None = None,
) -> str:
    """Build and render a full trade-off report for ``store``.

    ``fmt`` is ``"markdown"`` or ``"html"``; raises
    :class:`ValueError` for anything else.  ``query`` restricts the
    report to a filtered cell set.  Deterministic for a given
    (store contents, filters, resamples, seed).
    """
    title = f"Trade-off report — campaign {store.spec.name}"
    sections = build_sections(
        store, resamples=resamples, seed=seed, query=query
    )
    if fmt == "markdown":
        return render_markdown(title, sections)
    if fmt == "html":
        return render_html(title, sections)
    raise ValueError(
        f"unknown report format {fmt!r}; choose 'markdown' or 'html'"
    )
