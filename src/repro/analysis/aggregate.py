"""Aggregate metrics across replicate simulation runs.

Consumers hand this module *decoded* metrics — whether they came from a
live simulation, the result cache, or a campaign metrics stream
(:mod:`repro.experiments.stream`); aggregation itself is agnostic to
where runs were executed or stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, TypeVar

from repro.analysis.ci import ConfidenceInterval, mean_confidence_interval
from repro.sim.stats import SimulationMetrics


@dataclass(frozen=True)
class MetricSummary:
    """Mean ± 90% CI of the paper's headline metrics over replicates.

    ``average_latency``/``average_hops`` summarize only runs that
    delivered at least one message (matching how the paper can only
    average over delivered messages).
    """

    protocol: str
    runs: int
    delivery_ratio: ConfidenceInterval
    average_latency: ConfidenceInterval | None
    average_hops: ConfidenceInterval | None
    max_peak_storage: ConfidenceInterval
    average_peak_storage: ConfidenceInterval


def summarize_metrics(runs: Sequence[SimulationMetrics]) -> MetricSummary:
    """Summarize replicate runs of one configuration."""
    if not runs:
        raise ValueError("need at least one run to summarize")
    protocols = {r.protocol for r in runs}
    if len(protocols) != 1:
        raise ValueError(f"mixed protocols in one summary: {protocols}")

    latencies = [
        r.average_latency for r in runs if r.average_latency is not None
    ]
    hops = [float(r.average_hops) for r in runs if r.average_hops is not None]
    return MetricSummary(
        protocol=runs[0].protocol,
        runs=len(runs),
        delivery_ratio=mean_confidence_interval(
            [r.delivery_ratio for r in runs]
        ),
        average_latency=(
            mean_confidence_interval(latencies) if latencies else None
        ),
        average_hops=mean_confidence_interval(hops) if hops else None,
        max_peak_storage=mean_confidence_interval(
            [float(r.max_peak_storage) for r in runs]
        ),
        average_peak_storage=mean_confidence_interval(
            [r.average_peak_storage for r in runs]
        ),
    )


CellKey = TypeVar("CellKey")


def summarize_cells(
    metrics_by_cell: Mapping[CellKey, Sequence[SimulationMetrics]],
) -> dict[CellKey, MetricSummary]:
    """One :class:`MetricSummary` per grid cell, preserving cell order.

    This is the campaign-level aggregation step: cells are whatever the
    caller keys them by (``(scenario name, protocol label)`` for
    campaigns and stream replays).  Partial views (shard results, live
    watch ticks) never contain empty cells — the rebuild step drops
    cells with no records — so an empty run list here is a caller bug
    and raises.
    """
    return {
        cell: summarize_metrics(runs)
        for cell, runs in metrics_by_cell.items()
    }


def cell_coverage(
    metrics_by_cell: Mapping[CellKey, Sequence[SimulationMetrics]],
    expected_runs: int,
) -> tuple[int, int]:
    """(cells that hold all ``expected_runs`` replicates, cells with data).

    The honesty line of a partial aggregate: a live watcher or a shard
    report pairs this with the per-cell ``runs`` column so a
    half-finished campaign can never read as the full result.
    """
    complete = sum(
        1 for runs in metrics_by_cell.values() if len(runs) >= expected_runs
    )
    return complete, len(metrics_by_cell)
