"""ASCII rendering of network topologies (paper Figure 1 style).

The paper's Figure 1 shows two scatter plots of 50 nodes with their
connectivity edges at 250 m and 100 m radii.  This module renders the
same information as terminal art so the Figure 1 bench and the examples
can show the topology rather than just count components.

The plot maps the deployment rectangle onto a character grid; nodes are
drawn as ``o`` (``@`` for nodes in the largest component) and edges as
Bresenham lines of ``.`` characters, which is enough to see at a glance
whether the network is one blob or confetti.
"""

from __future__ import annotations

from repro.graphs.connectivity import connected_components
from repro.graphs.udg import SpatialGraph


def _bresenham(x0: int, y0: int, x1: int, y1: int):
    """Integer line rasterization."""
    dx = abs(x1 - x0)
    dy = -abs(y1 - y0)
    sx = 1 if x0 < x1 else -1
    sy = 1 if y0 < y1 else -1
    err = dx + dy
    x, y = x0, y0
    while True:
        yield x, y
        if x == x1 and y == y1:
            return
        e2 = 2 * err
        if e2 >= dy:
            err += dy
            x += sx
        if e2 <= dx:
            err += dx
            y += sy


def render_topology(
    graph: SpatialGraph,
    width: int = 72,
    height: int = 24,
    title: str | None = None,
) -> str:
    """Render a spatial graph as ASCII art.

    Nodes in the largest connected component are ``@``; others ``o``;
    edges are dotted lines.  Coordinates are scaled to the bounding box
    of the node positions.
    """
    positions = graph.positions
    if not positions:
        return "(empty topology)"
    xs = [p.x for p in positions.values()]
    ys = [p.y for p in positions.values()]
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    def cell(p) -> tuple[int, int]:
        cx = int((p.x - min_x) / span_x * (width - 1))
        cy = int((p.y - min_y) / span_y * (height - 1))
        return cx, (height - 1) - cy  # y grows upward on the plot

    grid = [[" "] * width for _ in range(height)]

    for u, v in graph.edges():
        (x0, y0), (x1, y1) = cell(positions[u]), cell(positions[v])
        for x, y in _bresenham(x0, y0, x1, y1):
            if grid[y][x] == " ":
                grid[y][x] = "."

    components = connected_components(graph)
    largest = components[0] if components else set()
    for node, p in positions.items():
        x, y = cell(p)
        grid[y][x] = "@" if node in largest else "o"

    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    for row in grid:
        lines.append("|" + "".join(row) + "|")
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"components: {len(components)}, "
        f"largest: {len(largest)}/{len(positions)} nodes, "
        f"edges: {graph.edge_count()}"
    )
    return "\n".join(lines)
