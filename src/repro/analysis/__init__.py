"""Statistical analysis and result rendering.

The paper reports every number as "an average of 10 different runs ...
confidence intervals ... calculated at 90% confidence level".  This
package reproduces that methodology:

- :mod:`repro.analysis.ci` — Student-t confidence intervals.
- :mod:`repro.analysis.aggregate` — multi-run metric aggregation.
- :mod:`repro.analysis.render` — ASCII tables and series, formatted to
  read like the paper's tables/figure data.

On top of those sit the trade-off layer (imported lazily — not from
this package — because its modules import the campaign engine, which
imports this package):

- :mod:`repro.analysis.store` — queryable result store over campaign
  metrics streams and run directories.
- :mod:`repro.analysis.tradeoff` — Pareto frontiers, bootstrap-CI
  rankings, dominance and regret.
- :mod:`repro.analysis.report` — the ``repro report`` markdown/HTML
  renderer.
"""

from repro.analysis.aggregate import MetricSummary, summarize_metrics
from repro.analysis.ci import ConfidenceInterval, mean_confidence_interval
from repro.analysis.render import render_series, render_table

__all__ = [
    "ConfidenceInterval",
    "MetricSummary",
    "mean_confidence_interval",
    "render_series",
    "render_table",
    "summarize_metrics",
]
