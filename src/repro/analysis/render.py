"""ASCII rendering of experiment results.

Every benchmark prints its table/figure data through these helpers so
the harness output can be compared line-by-line with the paper's tables
and the data series behind its figures.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """A fixed-width table with a title rule, like the paper's tables."""
    cells = [[str(h) for h in headers]] + [
        [_format(value) for value in row] for row in rows
    ]
    widths = [
        max(len(row[col]) for row in cells) for col in range(len(headers))
    ]
    lines = [title, "=" * max(len(title), sum(widths) + 3 * len(widths))]
    for i, row in enumerate(cells):
        lines.append(
            " | ".join(cell.ljust(widths[col]) for col, cell in enumerate(row))
        )
        if i == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[object],
    series: dict[str, Sequence[object]],
) -> str:
    """A figure's data as columns: x then one column per curve."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return render_table(title, headers, rows)


def _format(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
