"""Queryable result store over campaign metric streams.

Campaign streams (:mod:`repro.experiments.stream`) are the durable
record of every simulation the repo runs, but until now the only way to
read them was a one-shot render (``campaign aggregate``).  This module
is the "serve results" surface the ROADMAP names: a
:class:`ResultStore` ingests streams and run directories — idempotently,
reusing the stream layer's :func:`~repro.experiments.stream
.union_records` dedup and spec-hash discipline — and answers filtered
queries over the campaign grid.

The store is an index, not a new format: records stay exactly the
stream's task records, the spec comes from the stream header, and every
aggregate routes through the same code paths the campaign engine uses
(:func:`~repro.experiments.campaign.campaign_result_from_records`,
:func:`~repro.analysis.aggregate.summarize_cells`), so store queries
reproduce ``campaign aggregate`` numbers bit-identically.

Example::

    store = ResultStore.open("orchestrated-sweep/")   # run dir or stream
    q = store.select(protocol="glr", adversary="blackhole")
    print(q.result().render())                        # paper-style table
    q.values("delivery_ratio")                        # raw per-cell runs
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.aggregate import MetricSummary, summarize_cells
from repro.baselines.registry import resolve_protocol
from repro.experiments.campaign import (
    CampaignResult,
    CampaignSpec,
    campaign_result_from_records,
    campaign_spec_hash,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.stream import (
    StreamError,
    StreamInfo,
    discover_streams,
    load_union,
)
from repro.mobility.registry import resolve_model
from repro.sim.adversary import as_adversary_config
from repro.sim.stats import SimulationMetrics

#: Metric names a query may select on: every numeric field of
#: :class:`~repro.sim.stats.SimulationMetrics` that aggregation reads.
QUERYABLE_METRICS = (
    "delivery_ratio",
    "average_latency",
    "average_hops",
    "max_peak_storage",
    "average_peak_storage",
    "time_average_storage",
    "frames_sent",
    "data_bytes_sent",
    "control_bytes_sent",
)

#: The mobility label of scenarios running the paper's default model
#: (``Scenario.mobility is None``).
DEFAULT_MOBILITY = "random_waypoint"


@dataclass(frozen=True)
class CellInfo:
    """One campaign grid cell, indexed for filtering.

    Derived from the spec's own cell expansion
    (:meth:`~repro.experiments.campaign.CampaignSpec.cell_specs`), so
    the axis values are the *coerced* configs the campaign actually
    ran, not re-parsed scenario-name strings.
    """

    scenario_name: str
    protocol_label: str
    #: Canonical registry name of the cell's protocol (label minus
    #: swept parameters: ``glr(custody=False)`` -> ``glr``).
    protocol: str
    #: Canonical mobility model name (:data:`DEFAULT_MOBILITY` when the
    #: scenario runs the paper's built-in random waypoint).
    mobility: str
    #: Canonical adversary spec string (``blackhole:0.2``), or ``None``
    #: for the honest cell.
    adversary: str | None
    #: The adversary mode alone, or ``None`` for honest cells.
    adversary_mode: str | None
    #: Explicit simulation engine, or ``None`` (deferred to the
    #: ``REPRO_ENGINE`` environment at run time).
    engine: str | None
    #: Grid-axis assignments of this cell's scenario, as
    #: ``(field, value)`` pairs in grid order (empty off-grid).
    axes: tuple[tuple[str, object], ...]
    scenario: Scenario

    @property
    def key(self) -> tuple[str, str]:
        """The cell's stream/result key: (scenario name, protocol label)."""
        return (self.scenario_name, self.protocol_label)


def _index_cells(spec: CampaignSpec) -> list[CellInfo]:
    """Every spec cell with its filterable axis values resolved."""
    # Rebuild the scenario-name -> grid-overrides map the same way
    # CampaignSpec.scenarios() builds the names, so axis values stay the
    # coerced objects (not strings parsed back out of the name).
    import itertools

    overrides_by_name: dict[str, tuple[tuple[str, object], ...]] = {}
    if spec.grid:
        fields = [fname for fname, _ in spec.grid]
        axes = [values for _, values in spec.grid]
        for combo in itertools.product(*axes):
            overrides = dict(zip(fields, combo))
            label = ",".join(
                f"{k}={'none' if v is None else v}"
                for k, v in overrides.items()
            )
            overrides_by_name[f"{spec.name}/{label}"] = tuple(
                overrides.items()
            )
    cells = []
    for scenario, config in spec.cells():
        name, label = spec.cell_label(scenario, config)
        cells.append(
            CellInfo(
                scenario_name=name,
                protocol_label=label,
                protocol=config.protocol,
                mobility=(
                    scenario.mobility.model
                    if scenario.mobility is not None
                    else DEFAULT_MOBILITY
                ),
                adversary=(
                    str(scenario.adversary)
                    if scenario.adversary is not None
                    else None
                ),
                adversary_mode=(
                    scenario.adversary.mode
                    if scenario.adversary is not None
                    else None
                ),
                engine=scenario.engine,
                axes=overrides_by_name.get(name, ()),
                scenario=scenario,
            )
        )
    return cells


def _match_protocol(cell: CellInfo, wanted: str) -> bool:
    if cell.protocol_label == wanted:
        return True
    return cell.protocol == resolve_protocol(wanted)


def _match_mobility(cell: CellInfo, wanted: str) -> bool:
    return cell.mobility == resolve_model(wanted)


def _match_adversary(cell: CellInfo, wanted: str) -> bool:
    if ":" not in wanted and wanted.strip().lower() in ("none", ""):
        return cell.adversary is None  # the honest cells
    config = as_adversary_config(wanted if ":" in wanted else f"{wanted}:1")
    if config is None:  # "none:0" / zero fraction: honest again
        return cell.adversary is None
    if ":" in wanted:  # a full spec matches exactly
        return cell.adversary == str(config)
    return cell.adversary_mode == config.mode  # a bare mode, any fraction


class ResultStore:
    """An indexed, filterable store of campaign task records.

    Ingestion accepts stream files and run directories and is
    idempotent: records are deduplicated by task content key through
    :func:`~repro.experiments.stream.union_records`, so re-ingesting a
    stream (or ingesting a merged stream after its shards) adds
    nothing.  All ingested streams must carry one spec hash — the same
    refuse-to-mix-campaigns rule the merge layer enforces.
    """

    def __init__(self) -> None:
        self._infos: list[StreamInfo] = []
        self._records: list[dict] | None = None
        self._spec: CampaignSpec | None = None
        self._cells: list[CellInfo] | None = None

    # -- ingestion ------------------------------------------------------

    @classmethod
    def open(cls, path: str | Path) -> "ResultStore":
        """A store over ``path`` (a stream file or a run directory)."""
        store = cls()
        store.ingest(path)
        return store

    def ingest(self, path: str | Path) -> int:
        """Ingest a stream file or run directory; returns new task count.

        Idempotent by task key: ingesting data the store already holds
        returns 0 and changes nothing.  Raises
        :class:`~repro.experiments.stream.StreamError` for a spec-hash
        mismatch with previously ingested data, damaged headers, or a
        directory without streams.
        """
        before = len(self.records()) if self._infos else 0
        info = load_union(
            discover_streams(path),
            expected_spec_hash=self.spec_hash,
        )
        self._infos.append(info)
        self._records = None
        return len(self.records()) - before

    # -- the indexed view ----------------------------------------------

    @property
    def spec_hash(self) -> str | None:
        """Spec hash of the ingested campaign (None before ingestion)."""
        return self._infos[0].spec_hash if self._infos else None

    @property
    def spec(self) -> CampaignSpec:
        """The campaign spec, rebuilt from the stream header."""
        if not self._infos:
            raise StreamError("empty store: ingest a stream first")
        if self._spec is None:
            spec = CampaignSpec.from_dict(self._infos[0].header["spec"])
            if campaign_spec_hash(spec) != self.spec_hash:
                raise StreamError(
                    "stream header is inconsistent: its spec document "
                    "does not hash to its spec_hash"
                )
            self._spec = spec
        return self._spec

    @property
    def damaged(self) -> int:
        """Undecodable stream lines skipped across all ingested inputs."""
        return sum(info.quarantined for info in self._infos)

    def records(self) -> list[dict]:
        """Every task record, deduplicated, in canonical stream order."""
        if self._records is None:
            from repro.experiments.stream import union_records

            self._records = union_records(self._infos)
        return self._records

    def keys(self) -> set[str]:
        """Task content keys the store holds."""
        return {record["key"] for record in self.records()}

    def cells(self) -> list[CellInfo]:
        """Every spec grid cell, in sweep order (with or without data)."""
        if self._cells is None:
            self._cells = _index_cells(self.spec)
        return list(self._cells)

    def scenarios(self) -> list[str]:
        """Scenario (cell) names, in sweep order."""
        seen: dict[str, None] = {}
        for cell in self.cells():
            seen.setdefault(cell.scenario_name)
        return list(seen)

    def protocols(self) -> list[str]:
        """Protocol labels, in the spec's protocol-axis order."""
        seen: dict[str, None] = {}
        for cell in self.cells():
            seen.setdefault(cell.protocol_label)
        return list(seen)

    # -- queries --------------------------------------------------------

    def select(
        self,
        *,
        scenario: str | None = None,
        protocol: str | None = None,
        mobility: str | None = None,
        adversary: str | None = None,
        engine: str | None = None,
        metric: str | None = None,
    ) -> "Query":
        """A filtered view of the grid (``None`` = don't care).

        - ``scenario``: exact cell scenario name, or a substring of it
          (``"radius=100"`` selects that slice of a radius sweep);
        - ``protocol``: registry name or alias (matches every variant of
          that protocol) or an exact variant label
          (``"glr(custody=False)"``);
        - ``mobility``: mobility model name or alias
          (:data:`DEFAULT_MOBILITY` for the paper's built-in RWP);
        - ``adversary``: ``"none"`` for honest cells, a mode name for
          any fraction of that mode, or a full ``mode:fraction`` spec
          for one exact cell value;
        - ``engine``: ``"reference"``/``"vectorized"`` (explicitly
          pinned cells only);
        - ``metric``: default metric for :meth:`Query.values`, validated
          against :data:`QUERYABLE_METRICS`.

        Raises :class:`ValueError` for unknown protocol/mobility/
        adversary/metric names — a typo'd filter fails loudly instead of
        matching nothing.
        """
        if metric is not None and metric not in QUERYABLE_METRICS:
            raise ValueError(
                f"unknown metric {metric!r}; choose from "
                f"{list(QUERYABLE_METRICS)}"
            )
        selected = []
        for cell in self.cells():
            if scenario is not None and scenario != cell.scenario_name \
                    and scenario not in cell.scenario_name:
                continue
            if protocol is not None and not _match_protocol(cell, protocol):
                continue
            if mobility is not None and not _match_mobility(cell, mobility):
                continue
            if adversary is not None and not _match_adversary(
                cell, adversary
            ):
                continue
            if engine is not None and cell.engine != engine:
                continue
            selected.append(cell)
        return Query(store=self, cells=tuple(selected), metric=metric)

    def result(self) -> CampaignResult:
        """The full (unfiltered) campaign aggregate.

        Routed through :func:`~repro.experiments.campaign
        .campaign_result_from_records` — the same rebuild step
        ``campaign aggregate`` uses — so the store's numbers are
        bit-identical to a stream aggregate of the same records.
        """
        return self.select().result()


@dataclass(frozen=True)
class Query:
    """The result of :meth:`ResultStore.select`: a set of grid cells.

    All aggregation methods route through the campaign engine's own
    rebuild/summarize code, so any filter's numbers match what
    ``campaign aggregate`` would print for a stream holding exactly the
    filtered records.
    """

    store: ResultStore
    cells: tuple[CellInfo, ...]
    metric: str | None = None

    def records(self) -> list[dict]:
        """The matching task records, in canonical stream order."""
        keys = {cell.key for cell in self.cells}
        return [
            record
            for record in self.store.records()
            if (record["scenario"], record["protocol"]) in keys
        ]

    def result(self) -> CampaignResult:
        """A :class:`~repro.experiments.campaign.CampaignResult` of the
        matching records (cells without data are absent, as in any
        partial-stream aggregate)."""
        return campaign_result_from_records(
            self.store.spec,
            self.records(),
            stream_damaged=self.store.damaged,
            source="result store",
        )

    def metrics_by_cell(self) -> dict[tuple[str, str], list[SimulationMetrics]]:
        """Decoded replicate metrics per (scenario, protocol) cell."""
        return self.result().metrics

    def summaries(self) -> dict[tuple[str, str], MetricSummary]:
        """Mean ± 90% CI per cell (the paper's methodology)."""
        return summarize_cells(self.metrics_by_cell())

    def values(
        self, metric: str | None = None
    ) -> dict[tuple[str, str], list[float | None]]:
        """Raw per-replicate values of one metric, per cell.

        ``metric`` defaults to the query's ``metric=`` selection;
        one must be given.  Values keep replicate order; optional
        metrics (``average_latency`` when nothing was delivered) appear
        as ``None``.
        """
        name = metric if metric is not None else self.metric
        if name is None:
            raise ValueError(
                "no metric selected: pass values(metric=...) or "
                "select(metric=...)"
            )
        if name not in QUERYABLE_METRICS:
            raise ValueError(
                f"unknown metric {name!r}; choose from "
                f"{list(QUERYABLE_METRICS)}"
            )
        return {
            cell: [getattr(m, name) for m in runs]
            for cell, runs in self.metrics_by_cell().items()
        }

    def scenarios(self) -> list[str]:
        """Matching scenario names, in sweep order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.scenario_name)
        return list(seen)

    def protocols(self) -> list[str]:
        """Matching protocol labels, in protocol-axis order."""
        seen: dict[str, None] = {}
        for cell in self.cells:
            seen.setdefault(cell.protocol_label)
        return list(seen)


def axis_table(
    cells: Sequence[CellInfo],
    metrics_by_cell: Mapping[tuple[str, str], Sequence[SimulationMetrics]],
    field: str,
    metric: str,
) -> tuple[list[object], dict[str, list[float | None]]]:
    """Marginal per-axis means: metric vs one grid axis, per protocol.

    Returns ``(axis values, {protocol label: mean per value})`` — the
    data behind one trade-off curve.  With more than one grid axis the
    mean marginalises over the others.  Values without any samples
    (e.g. latency in a cell that delivered nothing) come back ``None``.
    """
    values: list[object] = []
    sums: dict[tuple[int, str], list[float]] = {}
    labels: dict[str, None] = {}
    for cell in cells:
        assignment = dict(cell.axes)
        if field not in assignment:
            continue
        value = assignment[field]
        value = "none" if value is None else value
        if value not in values:
            values.append(value)
        labels.setdefault(cell.protocol_label)
        bucket = sums.setdefault(
            (values.index(value), cell.protocol_label), []
        )
        for run in metrics_by_cell.get(cell.key, []):
            sample = getattr(run, metric)
            if sample is not None:
                bucket.append(float(sample))
    series = {
        label: [
            (
                sum(sums[(i, label)]) / len(sums[(i, label)])
                if sums.get((i, label))
                else None
            )
            for i in range(len(values))
        ]
        for label in labels
    }
    return values, series
