"""Scalar parameter canonicalisation for declarative config values.

:class:`~repro.mobility.registry.MobilityConfig` and
:class:`~repro.experiments.protocols.ProtocolConfig` are both "name
plus scalar params" values whose canonical form feeds campaign cache
keys, cell labels, and spec hashes.  They must canonicalise by the
same rules — a divergence would make numerically equal configs key
differently depending on which axis they sit on — so the shared rules
live here:

- parameter names are strings, values are scalars (configs stay
  hashable and JSON-encode cleanly);
- integral floats (``5.0``, e.g. from a JSON spec or CLI parsing)
  normalize to ints so numerically equal values encode identically.
"""

from __future__ import annotations

from typing import Mapping

#: Parameter values a declarative config may carry: scalars only, so
#: configs stay hashable and canonicalise cleanly into cache keys.
ParamValue = bool | int | float | str


def normalize_name(name: str) -> str:
    """Canonical spelling of a registry name (model or protocol).

    Case-insensitive and hyphen/underscore-agnostic, by the same rule
    on both axes so ``"Gauss-Markov"`` and ``"Spray-And-Wait"`` resolve
    consistently.
    """
    return name.strip().lower().replace("-", "_")


def canonicalise_params(
    params: Mapping[object, object],
) -> dict[str, ParamValue]:
    """Validate and canonicalise a config's parameter mapping.

    Raises :class:`ValueError` for non-string names and non-scalar
    values; returns a new dict with integral floats collapsed to ints.
    """
    items: dict[str, ParamValue] = {}
    for key, value in params.items():
        if not isinstance(key, str):
            raise ValueError(f"parameter name {key!r} must be a string")
        if not isinstance(value, (bool, int, float, str)):
            raise ValueError(
                f"parameter {key!r} must be a scalar, got "
                f"{type(value).__name__}"
            )
        if (
            isinstance(value, float)
            and value.is_integer()
            and abs(value) < 2**53
        ):
            value = int(value)
        items[key] = value
    return items
