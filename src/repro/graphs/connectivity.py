"""Connectivity analysis and the Georgiou et al. critical-radius bound.

The paper's Algorithm 1 decides how many message copies to spawn from an
estimate of how likely the network is to be connected:

    "for any positive real number s, the network G(P, r_n) with a set P
    of n nodes and radius r_n is connected with probability of at least
    1 - 1/s, for r_n >= sqrt((ln n + ln s) / (n * pi))."

The bound is stated for n points uniform in the unit square; we rescale
by the deployment area so the same estimate applies to the paper's
1500 m x 300 m and 1000 m x 1000 m regions.  Inverting the bound for a
given radius yields the confidence value the decision procedure
thresholds on (see :mod:`repro.core.decision`).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Mapping

from repro.graphs.udg import NodeId, SpatialGraph


def connected_components(graph: SpatialGraph) -> list[set[NodeId]]:
    """Connected components via BFS, largest first."""
    seen: set[NodeId] = set()
    components: list[set[NodeId]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        comp = {start}
        queue = deque([start])
        seen.add(start)
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    comp.add(v)
                    queue.append(v)
        components.append(comp)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: SpatialGraph) -> bool:
    """True when the graph has at most one connected component."""
    return len(connected_components(graph)) <= 1


def largest_component_fraction(graph: SpatialGraph) -> float:
    """Fraction of nodes in the largest component (1.0 when connected)."""
    nodes = graph.nodes()
    if not nodes:
        return 1.0
    components = connected_components(graph)
    return len(components[0]) / len(nodes)


def reachable_pair_fraction(graph: SpatialGraph) -> float:
    """Fraction of ordered node pairs connected by some path.

    This is the upper bound on what any single-snapshot routing protocol
    can deliver instantaneously; the DTN setting exists precisely because
    this fraction is far below 1 for sparse radii (paper Figure 1b).
    """
    nodes = graph.nodes()
    n = len(nodes)
    if n < 2:
        return 1.0
    total_pairs = n * (n - 1)
    reachable = 0
    for comp in connected_components(graph):
        size = len(comp)
        reachable += size * (size - 1)
    return reachable / total_pairs


def shortest_path_hops(
    graph: SpatialGraph, source: NodeId, target: NodeId
) -> int | None:
    """Hop count of the shortest path, or None when disconnected."""
    if source == target:
        return 0
    seen = {source}
    queue: deque[tuple[NodeId, int]] = deque([(source, 0)])
    while queue:
        u, d = queue.popleft()
        for v in graph.neighbors(u):
            if v == target:
                return d + 1
            if v not in seen:
                seen.add(v)
                queue.append((v, d + 1))
    return None


def critical_radius(n: int, s: float, area: float = 1.0) -> float:
    """Radius at which G(P, r) is connected w.p. >= 1 - 1/s.

    Georgiou et al.'s bound rescaled from the unit square to a deployment
    region of the given ``area``.

    Args:
        n: number of nodes (>= 2).
        s: confidence parameter (> 1); larger s = higher confidence.
        area: deployment area in square metres.
    """
    if n < 2:
        raise ValueError("connectivity bound needs at least two nodes")
    if s <= 1.0:
        raise ValueError("confidence parameter s must exceed 1")
    if area <= 0.0:
        raise ValueError("area must be positive")
    return math.sqrt((math.log(n) + math.log(s)) * area / (n * math.pi))


def connectivity_confidence(n: int, radius: float, area: float = 1.0) -> float:
    """Lower bound on connectivity probability for a given radius.

    Inverts :func:`critical_radius`: solves for ``s`` and returns
    ``max(0, 1 - 1/s)``.  A value near 1 means the network is almost
    surely connected (use a single message copy); a value near 0 means
    connectivity cannot be certified (flood multiple copies).
    """
    if n < 2:
        raise ValueError("connectivity bound needs at least two nodes")
    if radius <= 0.0:
        raise ValueError("radius must be positive")
    if area <= 0.0:
        raise ValueError("area must be positive")
    log_s = (n * math.pi * radius * radius) / area - math.log(n)
    if log_s <= 0.0:
        return 0.0
    s = math.exp(log_s)
    return max(0.0, 1.0 - 1.0 / s)


def average_degree(graph: SpatialGraph) -> float:
    """Mean node degree (0 for an empty graph)."""
    nodes = graph.nodes()
    if not nodes:
        return 0.0
    return 2.0 * graph.edge_count() / len(nodes)


def density_report(
    positions: Mapping[NodeId, object], radius: float, area: float
) -> dict[str, float]:
    """Summary used by examples and the Figure 1 experiment driver."""
    n = len(positions)
    conf = connectivity_confidence(n, radius, area) if n >= 2 else 1.0
    return {
        "nodes": float(n),
        "radius": radius,
        "area": area,
        "node_density_per_m2": n / area if area else math.inf,
        "connectivity_confidence": conf,
    }
