"""Proximity graphs and routing structures over planar point sets.

This package builds every graph the paper routes on:

- :mod:`repro.graphs.udg` — the unit-disk graph (physical connectivity).
- :mod:`repro.graphs.ldt` — the k-local Delaunay triangulation graph
  (k-LDTG), the paper's routing spanner.
- :mod:`repro.graphs.gabriel` / :mod:`repro.graphs.rng` — classic planar
  proximity graphs, used as ablation spanners.
- :mod:`repro.graphs.connectivity` — component analysis plus the
  Georgiou et al. connectivity-probability estimate that drives the
  paper's Algorithm 1 (copy-count decision).
- :mod:`repro.graphs.trees` — MaxDSTD / MinDSTD / MidDSTD source-to-
  destination tree extraction (paper Section 2.3, Figure 2).
- :mod:`repro.graphs.faces` — planar face traversal for face routing.
"""

from repro.graphs.connectivity import (
    connected_components,
    connectivity_confidence,
    critical_radius,
    is_connected,
)
from repro.graphs.gabriel import gabriel_graph
from repro.graphs.ldt import local_delaunay_graph
from repro.graphs.rng import relative_neighborhood_graph
from repro.graphs.trees import Branch, dstd_next_hop, extract_dstd_path
from repro.graphs.udg import SpatialGraph, unit_disk_graph

__all__ = [
    "Branch",
    "SpatialGraph",
    "connected_components",
    "connectivity_confidence",
    "critical_radius",
    "dstd_next_hop",
    "extract_dstd_path",
    "gabriel_graph",
    "is_connected",
    "local_delaunay_graph",
    "relative_neighborhood_graph",
    "unit_disk_graph",
]
