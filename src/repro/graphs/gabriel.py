"""Gabriel graph construction.

An edge ``uv`` belongs to the Gabriel graph when the closed disk having
``uv`` as diameter contains no third point.  The Gabriel graph is planar
and connected whenever the underlying UDG is, which makes it the paper's
natural ablation spanner: DESIGN.md benchmarks GLR-on-Gabriel against
GLR-on-LDTG.
"""

from __future__ import annotations

from typing import Mapping

from repro.geometry.primitives import Point, distance_sq
from repro.graphs.udg import NodeId, SpatialGraph, unit_disk_graph


def gabriel_graph(
    positions: Mapping[NodeId, Point], radius: float | None = None
) -> SpatialGraph:
    """Gabriel graph, optionally restricted to a unit-disk radius.

    When ``radius`` is given, only UDG edges are candidates (a radio link
    cannot exceed the transmission range no matter how geometrically
    desirable); otherwise all pairs are considered.
    """
    nodes = list(positions)
    graph = SpatialGraph()
    for n in nodes:
        graph.add_node(n, positions[n])

    if radius is not None:
        candidate = unit_disk_graph(positions, radius)
        pairs = candidate.edges()
    else:
        pairs = {
            (nodes[i], nodes[j])
            for i in range(len(nodes))
            for j in range(i + 1, len(nodes))
        }

    for u, v in pairs:
        pu, pv = positions[u], positions[v]
        mid = Point((pu.x + pv.x) / 2.0, (pu.y + pv.y) / 2.0)
        r_sq = distance_sq(pu, pv) / 4.0
        blocked = False
        for w in nodes:
            if w == u or w == v:
                continue
            if distance_sq(positions[w], mid) < r_sq:
                blocked = True
                break
        if not blocked:
            graph.add_edge(u, v)
    return graph
