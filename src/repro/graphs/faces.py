"""Planar face traversal — the machinery behind face routing.

Face routing (Bose, Morin, Stojmenović & Urrutia) walks the boundary of
the planar face intersected by the source–destination line using the
right-hand rule.  GLR invokes it when greedy DSTD forwarding reaches a
local minimum on a *connected* patch of the LDTG (paper Sections 1/2.3).

The key primitive is :func:`next_edge_on_face`: given the directed edge
``prev -> cur`` just traversed, return the next neighbour of ``cur`` in
clockwise (right-hand rule) or counter-clockwise order after the reverse
edge ``cur -> prev``.  Iterating it walks a face boundary of any planar
straight-line graph.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.geometry.primitives import Point, segments_cross_interior
from repro.graphs.udg import NodeId, SpatialGraph


def _angle(origin: Point, target: Point) -> float:
    return math.atan2(target.y - origin.y, target.x - origin.x)


def next_edge_on_face(
    graph: SpatialGraph,
    prev: NodeId,
    cur: NodeId,
    clockwise: bool = True,
) -> NodeId | None:
    """Next node after traversing ``prev -> cur`` along the current face.

    With ``clockwise=True`` this implements the right-hand rule (the
    next edge is the first one counter-clockwise from ``cur -> prev``),
    which traverses interior faces in clockwise orientation.  Returns
    None for an isolated ``cur``; returns ``prev`` when ``cur`` has no
    other neighbour (dead end — the walk doubles back, as face routing
    requires).
    """
    neighbors = graph.neighbors(cur)
    if not neighbors:
        return None
    cur_pos = graph.positions[cur]
    base = _angle(cur_pos, graph.positions[prev])
    best_node: NodeId | None = None
    best_key = math.inf
    for nbr in neighbors:
        if nbr == prev:
            continue
        ang = _angle(cur_pos, graph.positions[nbr])
        delta = (ang - base) % (2.0 * math.pi)
        if not clockwise:
            delta = (2.0 * math.pi - delta) % (2.0 * math.pi)
        if delta == 0.0:
            delta = 2.0 * math.pi
        if delta < best_key:
            best_key = delta
            best_node = nbr
    if best_node is None:
        return prev  # dead end: only way onward is back along the edge
    return best_node


def trace_face(
    graph: SpatialGraph,
    start: NodeId,
    first: NodeId,
    clockwise: bool = True,
    max_steps: int | None = None,
) -> list[NodeId]:
    """Walk the face containing directed edge ``start -> first``.

    Returns the cycle of nodes visited until the starting directed edge
    repeats (a closed face) or ``max_steps`` is exhausted.
    """
    limit = max_steps if max_steps is not None else 4 * max(
        1, graph.edge_count()
    )
    walk = [start, first]
    prev, cur = start, first
    for _ in range(limit):
        nxt = next_edge_on_face(graph, prev, cur, clockwise)
        if nxt is None:
            break
        prev, cur = cur, nxt
        if (prev, cur) == (start, first):
            break
        walk.append(cur)
    return walk


def enumerate_faces(graph: SpatialGraph) -> list[list[NodeId]]:
    """All faces of a planar straight-line graph, as vertex cycles.

    Every undirected edge is traversed once in each direction; each
    directed edge belongs to exactly one face.  The unbounded outer face
    appears as one of the cycles.  Euler's formula ``v - e + f = 1 + c``
    over these faces is asserted by the test suite as a planarity
    certificate.
    """
    visited: set[tuple[NodeId, NodeId]] = set()
    faces: list[list[NodeId]] = []
    for u in graph.nodes():
        for v in graph.neighbors(u):
            if (u, v) in visited:
                continue
            face = [u]
            prev, cur = u, v
            visited.add((u, v))
            while True:
                face.append(cur)
                nxt = next_edge_on_face(graph, prev, cur, clockwise=True)
                if nxt is None:
                    break
                prev, cur = cur, nxt
                if (prev, cur) in visited:
                    break
                visited.add((prev, cur))
            faces.append(face[:-1] if len(face) > 1 and face[-1] == face[0] else face)
    return faces


def is_planar_embedding(graph: SpatialGraph) -> bool:
    """Certify that no two edges cross in their interiors.

    O(e^2) sweep over edge pairs — an oracle for the test suite, used to
    verify the paper's claim that the k-LDTG construction is planar.
    """
    edges = list(graph.edges())
    for i in range(len(edges)):
        u1, v1 = edges[i]
        p1, p2 = graph.positions[u1], graph.positions[v1]
        for j in range(i + 1, len(edges)):
            u2, v2 = edges[j]
            q1, q2 = graph.positions[u2], graph.positions[v2]
            if segments_cross_interior(p1, p2, q1, q2):
                return False
    return True


def crossing_edge_pairs(
    graph: SpatialGraph,
) -> Iterable[tuple[tuple[NodeId, NodeId], tuple[NodeId, NodeId]]]:
    """Yield the edge pairs that cross — diagnostic companion of the above."""
    edges = list(graph.edges())
    for i in range(len(edges)):
        u1, v1 = edges[i]
        p1, p2 = graph.positions[u1], graph.positions[v1]
        for j in range(i + 1, len(edges)):
            u2, v2 = edges[j]
            q1, q2 = graph.positions[u2], graph.positions[v2]
            if segments_cross_interior(p1, p2, q1, q2):
                yield edges[i], edges[j]
