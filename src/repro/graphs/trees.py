"""Source-to-destination tree extraction (MaxDSTD / MinDSTD / MidDSTD).

Paper Section 2.3: from the LDTG, the source extracts up to three trees
oriented from source toward destination.

- **MaxDSTD** — each node forwards to the neighbour making *maximum*
  progress (the neighbour closest to the destination).
- **MinDSTD** — the neighbour making *minimum* (but still positive)
  progress.
- **MidDSTD** — a neighbour making *median* progress; when more than
  three copies are requested, several distinct mid-progress neighbours
  can seed additional branches.

"Progress" follows the greedy-routing convention: neighbour ``v`` makes
progress for destination ``d`` from node ``u`` iff
``dist(v, d) < dist(u, d)``.  When no neighbour makes progress the node
is a *local minimum* and the protocol falls back to store-and-forward or
face routing (paper Section 2.2/2.3).
"""

from __future__ import annotations

import enum
from typing import Mapping, Sequence

from repro.geometry.primitives import Point, distance
from repro.graphs.udg import NodeId, SpatialGraph


class Branch(enum.Enum):
    """Which DSTD tree a message copy travels along (its paper 'flag')."""

    MAX = "max"
    MIN = "min"
    MID = "mid"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def progress_candidates(
    node_pos: Point,
    dest_pos: Point,
    neighbor_positions: Mapping[NodeId, Point],
    min_progress: float = 0.0,
) -> list[tuple[NodeId, float]]:
    """Neighbours strictly closer to the destination, nearest first.

    Returns ``(neighbor, distance_to_destination)`` sorted ascending by
    that distance, with node id as a deterministic tiebreak.

    ``min_progress`` is a hysteresis margin (metres): a neighbour counts
    only when it is at least that much closer to the destination.  A
    static tree extraction uses 0; the live protocol uses a fraction of
    the radio range so that two drifting nodes do not hand a message
    back and forth on every beacon refresh.
    """
    own = distance(node_pos, dest_pos)
    threshold = own - min_progress
    candidates = [
        (nbr, distance(pos, dest_pos))
        for nbr, pos in neighbor_positions.items()
        if distance(pos, dest_pos) < threshold
    ]
    candidates.sort(key=lambda item: (item[1], repr(item[0])))
    return candidates


def dstd_next_hop(
    node_pos: Point,
    dest_pos: Point,
    neighbor_positions: Mapping[NodeId, Point],
    branch: Branch,
    mid_rank: int = 0,
    min_progress: float = 0.0,
) -> NodeId | None:
    """Next hop along the given DSTD branch, or None at a local minimum.

    Args:
        node_pos: position of the forwarding node.
        dest_pos: (believed) destination position.
        neighbor_positions: positions of the node's *routing-graph*
            neighbours (LDTG neighbours in GLR).
        branch: which tree the message copy follows.
        mid_rank: for ``Branch.MID`` with > 3 copies, selects the
            ``mid_rank``-th distinct mid-progress neighbour (0 = median).
        min_progress: hysteresis margin in metres (see
            :func:`progress_candidates`).
    """
    candidates = progress_candidates(
        node_pos, dest_pos, neighbor_positions, min_progress
    )
    if not candidates:
        return None
    if branch is Branch.MAX:
        return candidates[0][0]
    if branch is Branch.MIN:
        return candidates[-1][0]
    # MID: walk outward from the median so extra branches stay distinct
    # from MAX (index 0) and MIN (index -1) when enough candidates exist.
    if len(candidates) == 1:
        return candidates[0][0]
    interior = candidates[1:-1] or candidates
    index = min(len(interior) - 1, max(0, len(interior) // 2 + mid_rank))
    return interior[index][0]


def branch_assignment(copies: int) -> list[tuple[Branch, int]]:
    """Branches (with mid ranks) used for a given copy count.

    1 copy  -> [MAX]
    2 copies -> [MAX, MIN]
    3 copies -> [MAX, MIN, MID]
    c > 3   -> MAX, MIN, then (c - 2) distinct MID branches, mirroring
    the paper: "If more than three identical message copies are needed
    ... multiple MidDSTD trees are extracted."
    """
    if copies < 1:
        raise ValueError("at least one copy is required")
    if copies == 1:
        return [(Branch.MAX, 0)]
    if copies == 2:
        return [(Branch.MAX, 0), (Branch.MIN, 0)]
    branches: list[tuple[Branch, int]] = [(Branch.MAX, 0), (Branch.MIN, 0)]
    for rank in range(copies - 2):
        # Alternate around the median: 0, -1, +1, -2, +2, ...
        offset = (rank + 1) // 2 if rank % 2 else -(rank // 2)
        branches.append((Branch.MID, offset))
    return branches


def extract_dstd_path(
    graph: SpatialGraph,
    source: NodeId,
    dest: NodeId,
    branch: Branch,
    max_hops: int | None = None,
) -> list[NodeId]:
    """Follow one DSTD tree branch through a static graph snapshot.

    Reproduces paper Figure 2's tree walks: starting at ``source``, each
    node hands the message to its branch-selected neighbour until the
    destination is reached or a local minimum stops progress.  Returns
    the visited node sequence (always starting with ``source``; ends with
    ``dest`` on success).
    """
    if source not in graph.positions or dest not in graph.positions:
        raise KeyError("source and destination must be graph nodes")
    limit = max_hops if max_hops is not None else len(graph.positions) * 2
    dest_pos = graph.positions[dest]
    path = [source]
    current = source
    for _ in range(limit):
        if current == dest:
            break
        neighbor_positions = {
            n: graph.positions[n] for n in graph.neighbors(current)
        }
        nxt = dstd_next_hop(
            graph.positions[current], dest_pos, neighbor_positions, branch
        )
        if nxt is None:
            break
        path.append(nxt)
        current = nxt
    return path


def extract_dstd_tree(
    graph: SpatialGraph,
    source: NodeId,
    dest: NodeId,
    copies: int,
) -> dict[tuple[Branch, int], list[NodeId]]:
    """All branch paths a ``copies``-way controlled flood would take."""
    return {
        (branch, rank): extract_dstd_path(graph, source, dest, branch)
        for branch, rank in branch_assignment(copies)
    }


def tree_edge_set(
    paths: Sequence[list[NodeId]],
) -> set[tuple[NodeId, NodeId]]:
    """Union of directed edges across branch paths (for analysis plots)."""
    edges: set[tuple[NodeId, NodeId]] = set()
    for path in paths:
        for u, v in zip(path, path[1:]):
            edges.add((u, v))
    return edges
