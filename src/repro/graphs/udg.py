"""Unit-disk graphs with a uniform-grid spatial index.

The unit-disk graph (UDG) over node positions with radius ``r`` has an
edge between every pair of nodes at distance ``<= r``.  It models the
physical radio connectivity of the paper's scenarios, and every routing
structure (LDTG, Gabriel, RNG) is a subgraph of it.

The grid index buckets positions into cells of side ``r`` so that
neighbour queries touch at most 9 cells; with the paper's 50-node
scenarios this is overkill, but the simulator rebuilds neighbourhoods
every beacon interval over thousands of simulated seconds, so the index
is on the hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping

from repro.geometry.primitives import Point, distance_sq

NodeId = Hashable


@dataclass
class SpatialGraph:
    """An undirected graph whose vertices carry positions.

    Attributes:
        positions: node -> coordinate.
        adjacency: node -> set of adjacent nodes.  Symmetric by
            construction; :meth:`add_edge` maintains the invariant.
    """

    positions: dict[NodeId, Point] = field(default_factory=dict)
    adjacency: dict[NodeId, set[NodeId]] = field(default_factory=dict)

    def add_node(self, node: NodeId, position: Point) -> None:
        """Register ``node`` at ``position`` with no edges."""
        self.positions[node] = position
        self.adjacency.setdefault(node, set())

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Insert the undirected edge ``uv``; both nodes must exist."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        if u not in self.positions or v not in self.positions:
            raise KeyError("both endpoints must be added before the edge")
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Delete edge ``uv`` if present."""
        self.adjacency.get(u, set()).discard(v)
        self.adjacency.get(v, set()).discard(u)

    def neighbors(self, node: NodeId) -> set[NodeId]:
        """Adjacent nodes of ``node`` (empty set when unknown)."""
        return self.adjacency.get(node, set())

    def nodes(self) -> list[NodeId]:
        """All registered nodes."""
        return list(self.positions)

    def edges(self) -> set[tuple[NodeId, NodeId]]:
        """Canonical undirected edge set.

        Node ids may be of mixed types, so edges are canonicalized by
        ``repr`` ordering, which is stable for the int/str ids the
        simulator uses.
        """
        result: set[tuple[NodeId, NodeId]] = set()
        for u, nbrs in self.adjacency.items():
            for v in nbrs:
                edge = (u, v) if repr(u) <= repr(v) else (v, u)
                result.add(edge)
        return result

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self.adjacency.values()) // 2

    def degree(self, node: NodeId) -> int:
        """Degree of ``node``."""
        return len(self.adjacency.get(node, set()))

    def k_hop_neighborhood(self, node: NodeId, k: int) -> set[NodeId]:
        """Nodes reachable within ``k`` hops, *excluding* ``node`` itself."""
        if k < 0:
            raise ValueError("k must be non-negative")
        frontier = {node}
        seen = {node}
        for _ in range(k):
            next_frontier: set[NodeId] = set()
            for u in frontier:
                for v in self.adjacency.get(u, set()):
                    if v not in seen:
                        seen.add(v)
                        next_frontier.add(v)
            if not next_frontier:
                break
            frontier = next_frontier
        seen.discard(node)
        return seen

    def subgraph(self, nodes: Iterable[NodeId]) -> "SpatialGraph":
        """Induced subgraph on ``nodes``."""
        keep = set(nodes)
        sub = SpatialGraph()
        for n in keep:
            if n in self.positions:
                sub.add_node(n, self.positions[n])
        for n in keep:
            for m in self.adjacency.get(n, set()):
                if m in keep:
                    sub.adjacency[n].add(m)
        return sub


class GridIndex:
    """Uniform-grid spatial index for fixed-radius neighbour queries."""

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], list[tuple[NodeId, Point]]] = {}

    def _cell_of(self, p: Point) -> tuple[int, int]:
        return (
            int(math.floor(p.x / self.cell_size)),
            int(math.floor(p.y / self.cell_size)),
        )

    def insert(self, node: NodeId, position: Point) -> None:
        """Add a node at ``position``."""
        self._cells.setdefault(self._cell_of(position), []).append(
            (node, position)
        )

    def neighbors_within(
        self, position: Point, radius: float
    ) -> Iterator[tuple[NodeId, Point]]:
        """Yield ``(node, position)`` pairs within ``radius`` of ``position``.

        A node located exactly at ``position`` is also yielded; callers
        filter self-matches by id.
        """
        reach = int(math.ceil(radius / self.cell_size))
        cx, cy = self._cell_of(position)
        r_sq = radius * radius
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                bucket = self._cells.get((cx + dx, cy + dy))
                if not bucket:
                    continue
                for node, p in bucket:
                    if distance_sq(p, position) <= r_sq:
                        yield node, p

    def iter_pairs_within(
        self, radius: float
    ) -> Iterator[tuple[NodeId, NodeId]]:
        """Yield every unordered pair at distance ``<= radius`` exactly once.

        Per-node queries discover each edge twice (once from either
        endpoint), doubling the distance computations on the
        beacon-tick hot path.  This walks each occupied cell once,
        pairing it against itself (index-ordered, so no self-pairs)
        and against its *forward* neighbour cells only — the cells
        ``(dx, dy)`` lexicographically after ``(0, 0)`` — so every
        unordered cell pair, and hence every node pair, is examined
        exactly once.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        reach = int(math.ceil(radius / self.cell_size))
        r_sq = radius * radius
        forward = [
            (dx, dy)
            for dx in range(reach + 1)
            for dy in range(-reach, reach + 1)
            if dx > 0 or dy > 0
        ]
        cells = self._cells
        for (cx, cy), bucket in cells.items():
            for i, (u, pu) in enumerate(bucket):
                for v, pv in bucket[i + 1 :]:
                    if distance_sq(pu, pv) <= r_sq:
                        yield u, v
            for dx, dy in forward:
                other = cells.get((cx + dx, cy + dy))
                if not other:
                    continue
                for u, pu in bucket:
                    for v, pv in other:
                        if distance_sq(pu, pv) <= r_sq:
                            yield u, v


def unit_disk_graph(
    positions: Mapping[NodeId, Point], radius: float
) -> SpatialGraph:
    """Build the unit-disk graph with communication ``radius``.

    Edges connect node pairs at Euclidean distance ``<= radius``.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    graph = SpatialGraph()
    index = GridIndex(cell_size=radius)
    for node, p in positions.items():
        graph.add_node(node, p)
        index.insert(node, p)
    # Each pair is discovered once (see iter_pairs_within) and inserted
    # symmetrically, halving the distance checks of the naive per-node
    # query loop — this rebuild runs every beacon tick.
    adjacency = graph.adjacency
    for u, v in index.iter_pairs_within(radius):
        adjacency[u].add(v)
        adjacency[v].add(u)
    return graph


# ----------------------------------------------------------------------
# Vectorized kernel (numpy) — the array engine's replacement for
# GridIndex.iter_pairs_within.  numpy is imported lazily so the module
# (and the reference engine) keeps working without it installed.
# ----------------------------------------------------------------------

#: Forward neighbour cell offsets for cell_size == radius (reach 1),
#: as (dx, dy) — the same cells iter_pairs_within pairs against.
_FORWARD_OFFSETS = ((0, 1), (1, -1), (1, 0), (1, 1))


def unit_disk_edge_indices(positions, radius: float):
    """Row-index pairs ``(i, j)`` with ``distance(i, j) <= radius``.

    ``positions`` is an ``(N, 2)`` float64 array; the result is an
    ``(E, 2)`` integer array of row indices with ``i != j``, each
    unordered pair appearing exactly once (in no particular order).

    Same cell binning as :class:`GridIndex` with ``cell_size=radius``:
    bin rows into radius-sized cells, pair each occupied cell against
    itself and its four forward neighbours, then keep pairs passing the
    exact ``dx*dx + dy*dy <= radius*radius`` test — bitwise the same
    predicate as :func:`~repro.geometry.primitives.distance_sq`, so the
    edge set matches the reference path exactly (the differential suite
    pins this, coincident/boundary/exact-radius cases included).
    """
    import numpy as np

    if radius <= 0:
        raise ValueError("radius must be positive")
    pos = np.asarray(positions, dtype=np.float64)
    if pos.ndim != 2 or pos.shape[1] != 2:
        raise ValueError(f"positions must have shape (N, 2), got {pos.shape}")
    n = pos.shape[0]
    if n < 2:
        return np.empty((0, 2), dtype=np.intp)
    if n <= 64:
        # Dense path for small populations: the all-pairs distance
        # matrix needs a handful of numpy calls, while cell binning
        # needs dozens — at paper-scale 50-node scenarios the fixed
        # per-call overhead, not the O(n^2) work, is what dominates.
        # dx*dx then += dy*dy is the same two-operand float64 sum as
        # the predicate below, so the edge set is unchanged.
        dx = pos[:, 0, None] - pos[None, :, 0]
        dy = pos[:, 1, None] - pos[None, :, 1]
        dist_sq = dx * dx
        dist_sq += dy * dy
        within = dist_sq <= radius * radius
        u, v = np.nonzero(np.triu(within, k=1))
        return np.stack((u, v), axis=1)

    cells = np.floor(pos / radius).astype(np.int64)
    cx = cells[:, 0] - cells[:, 0].min()
    cy = cells[:, 1] - cells[:, 1].min()
    # Pack (cx, cy) into one sortable key, leaving one row of slack on
    # either side of the cy range so forward offsets with dy = ±1 can
    # never wrap into a neighbouring cx column.
    stride = int(cy.max()) + 3
    keys = cx * stride + cy + 1
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    unique_keys, starts, counts = np.unique(
        sorted_keys, return_index=True, return_counts=True
    )

    chunks_u: list = []
    chunks_v: list = []
    for offset_key, self_pair in (
        (0, True),
        *(((dx * stride + dy), False) for dx, dy in _FORWARD_OFFSETS),
    ):
        if self_pair:
            src = np.nonzero(counts > 1)[0]
            dst = src
        else:
            target = unique_keys + offset_key
            idx = np.searchsorted(unique_keys, target)
            idx = np.minimum(idx, len(unique_keys) - 1)
            src = np.nonzero(unique_keys[idx] == target)[0]
            dst = idx[src]
        if src.size == 0:
            continue
        count_a = counts[src]
        count_b = counts[dst]
        pair_counts = count_a * count_b
        total = int(pair_counts.sum())
        if total == 0:
            continue
        # Enumerate the cross product of every (cell A, cell B) pair:
        # local pair rank k within its cell pair maps to member
        # (k // |B|) of A and (k % |B|) of B.
        base = np.repeat(np.cumsum(pair_counts) - pair_counts, pair_counts)
        k = np.arange(total) - base
        count_b_rep = np.repeat(count_b, pair_counts)
        ia = k // count_b_rep
        ib = k % count_b_rep
        u = order[np.repeat(starts[src], pair_counts) + ia]
        v = order[np.repeat(starts[dst], pair_counts) + ib]
        if self_pair:
            keep = ia < ib
            u, v = u[keep], v[keep]
        chunks_u.append(u)
        chunks_v.append(v)

    if not chunks_u:
        return np.empty((0, 2), dtype=np.intp)
    u = np.concatenate(chunks_u)
    v = np.concatenate(chunks_v)
    dx = pos[u, 0] - pos[v, 0]
    dy = pos[u, 1] - pos[v, 1]
    within = dx * dx + dy * dy <= radius * radius
    return np.stack((u[within], v[within]), axis=1)


class ArraySpatialGraph(SpatialGraph):
    """A read-only :class:`SpatialGraph` view over array state.

    Construction runs only the vectorized edge kernel; every Python
    object the :class:`SpatialGraph` interface exposes — the
    ``positions`` dict of :class:`Point`, per-node neighbour ``set``\\ s,
    the full ``adjacency`` dict — materializes lazily on first access
    and is cached.  The beacon rebuild thus pays C-speed array work
    per epoch, while nodes nobody queries (idle nodes in a sparse DTN)
    never materialize their neighbour sets at all.

    The view is a *snapshot*: mutating it (``add_node``/``add_edge``/
    ``remove_edge``) is unsupported — mutations would only touch the
    materialized caches, not the backing arrays.
    """

    def __init__(self, ids, positions, radius: float):
        # No super().__init__(): positions/adjacency are properties
        # here, materialized from the arrays below.
        self._ids = tuple(ids)
        self._array = positions
        if len(self._ids) != positions.shape[0]:
            raise ValueError(
                f"{len(self._ids)} ids but {positions.shape[0]} "
                "position rows"
            )
        self.edge_indices = unit_disk_edge_indices(positions, radius)
        self._positions_cache: dict[NodeId, Point] | None = None
        self._adjacency_cache: dict[NodeId, set[NodeId]] | None = None
        self._neighbor_cache: dict[NodeId, set[NodeId]] = {}
        self._csr: tuple[list[int], list[int]] | None = None
        self._row_map: dict[NodeId, int] | None = None
        self._identity: bool | None = None

    @property
    def ids(self) -> tuple:
        """Node ids, in position-row order."""
        return self._ids

    @property
    def positions(self) -> dict[NodeId, Point]:
        cache = self._positions_cache
        if cache is None:
            cache = self._positions_cache = {
                node: Point(row[0], row[1])
                for node, row in zip(self._ids, self._array.tolist())
            }
        return cache

    def _rows_identity(self) -> bool:
        """Whether ids are exactly their row indices (int populations)."""
        if self._identity is None:
            n = len(self._ids)
            self._identity = self._ids == tuple(range(n))
        return self._identity

    def _ensure_csr(self) -> tuple[list[int], list[int]]:
        """Neighbour rows grouped by source row: (bounds, targets)."""
        if self._csr is None:
            import numpy as np

            n = len(self._ids)
            edges = self.edge_indices
            if len(edges) == 0:
                self._csr = ([0] * (n + 1), [])
            else:
                mirrored = np.concatenate((edges, edges[:, ::-1]))
                order = np.argsort(mirrored[:, 0], kind="stable")
                src = mirrored[order, 0]
                dst = mirrored[order, 1].tolist()
                bounds = np.searchsorted(src, np.arange(n + 1)).tolist()
                self._csr = (bounds, dst)
        return self._csr

    def _neighbor_rows(self, row: int) -> list[int]:
        bounds, dst = self._ensure_csr()
        return dst[bounds[row] : bounds[row + 1]]

    def neighbors(self, node: NodeId) -> set[NodeId]:
        adjacency = self._adjacency_cache
        if adjacency is not None:
            return adjacency.get(node, set())
        cached = self._neighbor_cache.get(node)
        if cached is None:
            if self._rows_identity():
                row = node if isinstance(node, int) else None
                if row is None or not 0 <= row < len(self._ids):
                    return set()
                cached = set(self._neighbor_rows(row))
            else:
                row_map = self._row_map
                if row_map is None:
                    row_map = self._row_map = {
                        n: i for i, n in enumerate(self._ids)
                    }
                row = row_map.get(node)
                if row is None:
                    return set()
                ids = self._ids
                cached = {ids[k] for k in self._neighbor_rows(row)}
            self._neighbor_cache[node] = cached
        return cached

    @property
    def adjacency(self) -> dict[NodeId, set[NodeId]]:
        cache = self._adjacency_cache
        if cache is None:
            bounds, dst = self._ensure_csr()
            ids = self._ids
            if self._rows_identity():
                cache = {
                    node: set(dst[bounds[i] : bounds[i + 1]])
                    for i, node in enumerate(ids)
                }
            else:
                cache = {
                    node: {ids[k] for k in dst[bounds[i] : bounds[i + 1]]}
                    for i, node in enumerate(ids)
                }
            self._adjacency_cache = cache
            self._neighbor_cache = {}
        return cache

    def edge_count(self) -> int:
        return len(self.edge_indices)

    def degree(self, node: NodeId) -> int:
        return len(self.neighbors(node))


def unit_disk_graph_from_array(
    ids: "tuple[NodeId, ...] | list[NodeId]", positions, radius: float
) -> ArraySpatialGraph:
    """Build the UDG over array state via the vectorized kernel.

    ``ids[i]`` labels row ``i`` of the ``(N, 2)`` ``positions`` array.
    The resulting :class:`ArraySpatialGraph` exposes the same nodes,
    the same :class:`~repro.geometry.primitives.Point` values, and the
    same edge set as :func:`unit_disk_graph` over the equivalent
    position mapping — the differential suite pins the equality.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    return ArraySpatialGraph(ids, positions, radius)
