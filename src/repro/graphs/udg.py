"""Unit-disk graphs with a uniform-grid spatial index.

The unit-disk graph (UDG) over node positions with radius ``r`` has an
edge between every pair of nodes at distance ``<= r``.  It models the
physical radio connectivity of the paper's scenarios, and every routing
structure (LDTG, Gabriel, RNG) is a subgraph of it.

The grid index buckets positions into cells of side ``r`` so that
neighbour queries touch at most 9 cells; with the paper's 50-node
scenarios this is overkill, but the simulator rebuilds neighbourhoods
every beacon interval over thousands of simulated seconds, so the index
is on the hot path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping

from repro.geometry.primitives import Point, distance_sq

NodeId = Hashable


@dataclass
class SpatialGraph:
    """An undirected graph whose vertices carry positions.

    Attributes:
        positions: node -> coordinate.
        adjacency: node -> set of adjacent nodes.  Symmetric by
            construction; :meth:`add_edge` maintains the invariant.
    """

    positions: dict[NodeId, Point] = field(default_factory=dict)
    adjacency: dict[NodeId, set[NodeId]] = field(default_factory=dict)

    def add_node(self, node: NodeId, position: Point) -> None:
        """Register ``node`` at ``position`` with no edges."""
        self.positions[node] = position
        self.adjacency.setdefault(node, set())

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Insert the undirected edge ``uv``; both nodes must exist."""
        if u == v:
            raise ValueError("self-loops are not allowed")
        if u not in self.positions or v not in self.positions:
            raise KeyError("both endpoints must be added before the edge")
        self.adjacency[u].add(v)
        self.adjacency[v].add(u)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Delete edge ``uv`` if present."""
        self.adjacency.get(u, set()).discard(v)
        self.adjacency.get(v, set()).discard(u)

    def neighbors(self, node: NodeId) -> set[NodeId]:
        """Adjacent nodes of ``node`` (empty set when unknown)."""
        return self.adjacency.get(node, set())

    def nodes(self) -> list[NodeId]:
        """All registered nodes."""
        return list(self.positions)

    def edges(self) -> set[tuple[NodeId, NodeId]]:
        """Canonical undirected edge set.

        Node ids may be of mixed types, so edges are canonicalized by
        ``repr`` ordering, which is stable for the int/str ids the
        simulator uses.
        """
        result: set[tuple[NodeId, NodeId]] = set()
        for u, nbrs in self.adjacency.items():
            for v in nbrs:
                edge = (u, v) if repr(u) <= repr(v) else (v, u)
                result.add(edge)
        return result

    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self.adjacency.values()) // 2

    def degree(self, node: NodeId) -> int:
        """Degree of ``node``."""
        return len(self.adjacency.get(node, set()))

    def k_hop_neighborhood(self, node: NodeId, k: int) -> set[NodeId]:
        """Nodes reachable within ``k`` hops, *excluding* ``node`` itself."""
        if k < 0:
            raise ValueError("k must be non-negative")
        frontier = {node}
        seen = {node}
        for _ in range(k):
            next_frontier: set[NodeId] = set()
            for u in frontier:
                for v in self.adjacency.get(u, set()):
                    if v not in seen:
                        seen.add(v)
                        next_frontier.add(v)
            if not next_frontier:
                break
            frontier = next_frontier
        seen.discard(node)
        return seen

    def subgraph(self, nodes: Iterable[NodeId]) -> "SpatialGraph":
        """Induced subgraph on ``nodes``."""
        keep = set(nodes)
        sub = SpatialGraph()
        for n in keep:
            if n in self.positions:
                sub.add_node(n, self.positions[n])
        for n in keep:
            for m in self.adjacency.get(n, set()):
                if m in keep:
                    sub.adjacency[n].add(m)
        return sub


class GridIndex:
    """Uniform-grid spatial index for fixed-radius neighbour queries."""

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size = cell_size
        self._cells: dict[tuple[int, int], list[tuple[NodeId, Point]]] = {}

    def _cell_of(self, p: Point) -> tuple[int, int]:
        return (
            int(math.floor(p.x / self.cell_size)),
            int(math.floor(p.y / self.cell_size)),
        )

    def insert(self, node: NodeId, position: Point) -> None:
        """Add a node at ``position``."""
        self._cells.setdefault(self._cell_of(position), []).append(
            (node, position)
        )

    def neighbors_within(
        self, position: Point, radius: float
    ) -> Iterator[tuple[NodeId, Point]]:
        """Yield ``(node, position)`` pairs within ``radius`` of ``position``.

        A node located exactly at ``position`` is also yielded; callers
        filter self-matches by id.
        """
        reach = int(math.ceil(radius / self.cell_size))
        cx, cy = self._cell_of(position)
        r_sq = radius * radius
        for dx in range(-reach, reach + 1):
            for dy in range(-reach, reach + 1):
                bucket = self._cells.get((cx + dx, cy + dy))
                if not bucket:
                    continue
                for node, p in bucket:
                    if distance_sq(p, position) <= r_sq:
                        yield node, p

    def iter_pairs_within(
        self, radius: float
    ) -> Iterator[tuple[NodeId, NodeId]]:
        """Yield every unordered pair at distance ``<= radius`` exactly once.

        Per-node queries discover each edge twice (once from either
        endpoint), doubling the distance computations on the
        beacon-tick hot path.  This walks each occupied cell once,
        pairing it against itself (index-ordered, so no self-pairs)
        and against its *forward* neighbour cells only — the cells
        ``(dx, dy)`` lexicographically after ``(0, 0)`` — so every
        unordered cell pair, and hence every node pair, is examined
        exactly once.
        """
        if radius <= 0:
            raise ValueError("radius must be positive")
        reach = int(math.ceil(radius / self.cell_size))
        r_sq = radius * radius
        forward = [
            (dx, dy)
            for dx in range(reach + 1)
            for dy in range(-reach, reach + 1)
            if dx > 0 or dy > 0
        ]
        cells = self._cells
        for (cx, cy), bucket in cells.items():
            for i, (u, pu) in enumerate(bucket):
                for v, pv in bucket[i + 1 :]:
                    if distance_sq(pu, pv) <= r_sq:
                        yield u, v
            for dx, dy in forward:
                other = cells.get((cx + dx, cy + dy))
                if not other:
                    continue
                for u, pu in bucket:
                    for v, pv in other:
                        if distance_sq(pu, pv) <= r_sq:
                            yield u, v


def unit_disk_graph(
    positions: Mapping[NodeId, Point], radius: float
) -> SpatialGraph:
    """Build the unit-disk graph with communication ``radius``.

    Edges connect node pairs at Euclidean distance ``<= radius``.
    """
    if radius <= 0:
        raise ValueError("radius must be positive")
    graph = SpatialGraph()
    index = GridIndex(cell_size=radius)
    for node, p in positions.items():
        graph.add_node(node, p)
        index.insert(node, p)
    # Each pair is discovered once (see iter_pairs_within) and inserted
    # symmetrically, halving the distance checks of the naive per-node
    # query loop — this rebuild runs every beacon tick.
    adjacency = graph.adjacency
    for u, v in index.iter_pairs_within(radius):
        adjacency[u].add(v)
        adjacency[v].add(u)
    return graph
