"""k-local Delaunay triangulation graph (k-LDTG) — the paper's spanner.

Construction (paper Section 2.1, after Li, Calinescu & Wan):

    A link ``uv`` is accepted in the final graph if it is in both
    ``A(Nk(u))`` and ``A(Nk(w))`` for all ``w ∈ N1(u)`` with
    ``u ∈ Nk(w)`` and ``v ∈ Nk(w)``,

where ``A(S)`` is the Delaunay triangulation of point set ``S`` and
``Nk(x)`` is the distance-k neighbourhood of ``x`` (including ``x``).
The witness condition over one-hop neighbours is what lets the paper
"obtain a planar graph directly, avoiding the extra time incurred by the
planar process" of the original LDel construction.

Two practical notes reflected below:

- Only UDG edges can be physical links, so every local Delaunay edge set
  is intersected with the UDG before voting.
- We apply the acceptance rule symmetrically (witnesses drawn from
  ``N1(u) ∪ N1(v)``, and ``uv`` must appear in both endpoints' local
  triangulations) so the result is an undirected graph by construction.

Each node's decision uses only its k-hop neighbourhood — the algorithm is
k-local in the paper's sense and the simulator evaluates it node-locally.
"""

from __future__ import annotations

from typing import Mapping

from repro.geometry.delaunay import delaunay_edges
from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId, SpatialGraph, unit_disk_graph


def local_delaunay_edges_of(
    udg: SpatialGraph, node: NodeId, k: int
) -> set[frozenset]:
    """Edges of ``A(Nk(node))`` restricted to UDG links.

    Returns undirected edges as frozensets of node ids.  ``Nk(node)``
    includes ``node`` itself.
    """
    members = sorted(
        udg.k_hop_neighborhood(node, k) | {node}, key=repr
    )
    points = [udg.positions[m] for m in members]
    edges = delaunay_edges(points)
    result: set[frozenset] = set()
    for i, j in edges:
        u, v = members[i], members[j]
        if v in udg.neighbors(u):
            result.add(frozenset((u, v)))
    return result


def local_delaunay_graph(
    positions: Mapping[NodeId, Point],
    radius: float,
    k: int = 2,
    udg: SpatialGraph | None = None,
) -> SpatialGraph:
    """Build the k-LDTG over ``positions`` with communication ``radius``.

    Args:
        positions: node locations.
        radius: transmission range defining the underlying UDG.
        k: locality parameter (paper experiments use k = 2).
        udg: pre-built unit-disk graph to reuse; built when omitted.

    Returns:
        A :class:`SpatialGraph` that is a subgraph of the UDG.  For k >= 2
        the result is planar (verified property-style in the test suite);
        it preserves the connectivity of the UDG.
    """
    if k < 1:
        raise ValueError("locality parameter k must be >= 1")
    if udg is None:
        udg = unit_disk_graph(positions, radius)

    local_edges: dict[NodeId, set[frozenset]] = {
        node: local_delaunay_edges_of(udg, node, k) for node in udg.nodes()
    }
    k_hoods: dict[NodeId, set[NodeId]] = {
        node: udg.k_hop_neighborhood(node, k) | {node} for node in udg.nodes()
    }

    graph = SpatialGraph()
    for node, p in positions.items():
        graph.add_node(node, p)

    for u, v in udg.edges():
        link = frozenset((u, v))
        if link not in local_edges[u] or link not in local_edges[v]:
            continue
        witnesses = (udg.neighbors(u) | udg.neighbors(v)) - {u, v}
        accepted = True
        for w in witnesses:
            if u in k_hoods[w] and v in k_hoods[w]:
                if link not in local_edges[w]:
                    accepted = False
                    break
        if accepted:
            graph.add_edge(u, v)
    return graph


def node_local_ldt_neighbors(
    udg: SpatialGraph, node: NodeId, k: int = 2
) -> set[NodeId]:
    """LDTG neighbours of ``node`` computed with only local information.

    This is the routine a *node* runs inside the protocol: it sees its
    k-hop neighbourhood (collected via beacons/IMEP), triangulates, and
    asks its one-hop neighbours to veto edges absent from their own local
    triangulations.  Because every participant of the vote is within
    ``k + 1`` hops, the computation is k-local.

    The result agrees with the global :func:`local_delaunay_graph`
    adjacency for ``node`` whenever the node's collected neighbourhood
    information is up to date (tested in tests/graphs/test_ldt.py).
    """
    own = local_delaunay_edges_of(udg, node, k)
    k_hood_cache: dict[NodeId, set[NodeId]] = {}
    edge_cache: dict[NodeId, set[frozenset]] = {}

    def k_hood(x: NodeId) -> set[NodeId]:
        if x not in k_hood_cache:
            k_hood_cache[x] = udg.k_hop_neighborhood(x, k) | {x}
        return k_hood_cache[x]

    def edges_of_node(x: NodeId) -> set[frozenset]:
        if x not in edge_cache:
            edge_cache[x] = local_delaunay_edges_of(udg, x, k)
        return edge_cache[x]

    neighbors: set[NodeId] = set()
    for v in udg.neighbors(node):
        link = frozenset((node, v))
        if link not in own:
            continue
        if link not in edges_of_node(v):
            continue
        witnesses = (udg.neighbors(node) | udg.neighbors(v)) - {node, v}
        accepted = True
        for w in witnesses:
            if node in k_hood(w) and v in k_hood(w):
                if link not in edges_of_node(w):
                    accepted = False
                    break
        if accepted:
            neighbors.add(v)
    return neighbors
