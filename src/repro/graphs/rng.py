"""Relative neighbourhood graph (RNG) construction.

An edge ``uv`` belongs to the RNG when no third point ``w`` is closer to
both endpoints than they are to each other (no ``w`` in the "lune" of
``uv``).  RNG ⊆ Gabriel ⊆ Delaunay, and the RNG is the sparsest of the
classic planar proximity graphs — useful as the extreme point of the
spanner ablation.
"""

from __future__ import annotations

from typing import Mapping

from repro.geometry.primitives import Point, distance_sq
from repro.graphs.udg import NodeId, SpatialGraph, unit_disk_graph


def relative_neighborhood_graph(
    positions: Mapping[NodeId, Point], radius: float | None = None
) -> SpatialGraph:
    """RNG over ``positions``, optionally restricted to UDG edges."""
    nodes = list(positions)
    graph = SpatialGraph()
    for n in nodes:
        graph.add_node(n, positions[n])

    if radius is not None:
        candidate = unit_disk_graph(positions, radius)
        pairs = candidate.edges()
    else:
        pairs = {
            (nodes[i], nodes[j])
            for i in range(len(nodes))
            for j in range(i + 1, len(nodes))
        }

    for u, v in pairs:
        pu, pv = positions[u], positions[v]
        d_uv = distance_sq(pu, pv)
        blocked = False
        for w in nodes:
            if w == u or w == v:
                continue
            pw = positions[w]
            if distance_sq(pu, pw) < d_uv and distance_sq(pv, pw) < d_uv:
                blocked = True
                break
        if not blocked:
            graph.add_edge(u, v)
    return graph
