"""Command-line interface: ``glr-repro`` / ``python -m repro.cli``.

Subcommands:

- ``run`` — one simulation with explicit parameters, printing metrics.
- ``experiment`` — regenerate one of the paper's figures/tables (or an
  ablation) at bench, spot, or paper effort.
- ``list`` — enumerate available experiments and protocols.

Examples::

    glr-repro run --protocol glr --radius 100 --messages 200 --sim-time 600
    glr-repro experiment fig4 --effort bench
    glr-repro experiment table6 --effort spot
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import ablations, figures, tables
from repro.experiments.common import (
    BENCH_EFFORT,
    PAPER_EFFORT,
    SPOT_EFFORT,
    Effort,
)
from repro.experiments.runner import available_protocols, run_single
from repro.experiments.scenarios import Scenario

def _fig1_driver(effort: Effort, seed: int):
    # Figure 1 is a static-topology experiment; effort maps to run count.
    return figures.fig1_topology(runs=effort.runs * 5, seed=seed)


#: Experiment name -> driver accepting (effort=..., seed=...).
EXPERIMENTS: dict[str, Callable] = {
    "fig1": _fig1_driver,
    "fig3": figures.fig3_check_interval,
    "fig4": figures.fig4_latency_vs_load,
    "fig5": figures.fig5_latency_vs_load,
    "fig6": figures.fig6_latency_vs_radius,
    "fig7": figures.fig7_delivery_vs_storage,
    "table2": tables.table2_location,
    "table3": tables.table3_custody,
    "table4": tables.table4_storage_vs_load,
    "table5": tables.table5_storage_vs_radius,
    "table6": tables.table6_hops,
    "ablation-copies": ablations.ablation_copies,
    "ablation-spanner": ablations.ablation_spanner,
    "ablation-face": ablations.ablation_face_routing,
    "ablation-custody-timeout": ablations.ablation_custody_timeout,
    "ablation-protocols": ablations.ablation_protocols,
}

EFFORTS: dict[str, Effort] = {
    "bench": BENCH_EFFORT,
    "spot": SPOT_EFFORT,
    "paper": PAPER_EFFORT,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="glr-repro",
        description="Reproduction of the GLR DTN routing paper (ICDCS 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("--protocol", default="glr", choices=available_protocols())
    run_p.add_argument("--radius", type=float, default=100.0)
    run_p.add_argument("--messages", type=int, default=200)
    run_p.add_argument("--sim-time", type=float, default=600.0)
    run_p.add_argument("--nodes", type=int, default=50)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--storage-limit", type=int, default=None)

    exp_p = sub.add_parser("experiment", help="regenerate a figure/table")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--effort", default="bench", choices=sorted(EFFORTS))
    exp_p.add_argument("--seed", type=int, default=1)

    sub.add_parser("list", help="list experiments and protocols")
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = Scenario(
        name="cli-run",
        n_nodes=args.nodes,
        active_nodes=min(45, args.nodes),
        radius=args.radius,
        message_count=args.messages,
        sim_time=args.sim_time,
        seed=args.seed,
    )
    metrics = run_single(
        scenario, args.protocol, buffer_limit=args.storage_limit
    )
    latency = (
        f"{metrics.average_latency:.2f}s"
        if metrics.average_latency is not None
        else "n/a"
    )
    hops = (
        f"{metrics.average_hops:.2f}"
        if metrics.average_hops is not None
        else "n/a"
    )
    print(f"protocol            {metrics.protocol}")
    print(f"messages created    {metrics.messages_created}")
    print(f"messages delivered  {metrics.messages_delivered}")
    print(f"delivery ratio      {metrics.delivery_ratio:.3f}")
    print(f"average latency     {latency}")
    print(f"average hops        {hops}")
    print(f"max peak storage    {metrics.max_peak_storage}")
    print(f"avg peak storage    {metrics.average_peak_storage:.2f}")
    print(f"frames sent         {metrics.frames_sent}")
    print(f"collision losses    {metrics.frames_lost_collision}")
    print(f"queue drops         {metrics.frames_dropped_queue}")
    print(f"events processed    {metrics.events_processed}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS[args.name]
    effort = EFFORTS[args.effort]
    result = driver(effort=effort, seed=args.seed)
    print(result.render())
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("protocols:")
    for name in available_protocols():
        print(f"  {name}")
    print("efforts:")
    for name, effort in EFFORTS.items():
        print(
            f"  {name}: runs={effort.runs} sim_time={effort.sim_time:.0f}s "
            f"messages={effort.message_count}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "list":
        return _cmd_list(args)
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":
    sys.exit(main())
