"""Command-line interface: ``repro`` / ``glr-repro`` / ``python -m repro.cli``.

Subcommands:

- ``run`` — one simulation with explicit parameters, printing metrics.
- ``experiment`` — regenerate one of the paper's figures/tables (or an
  ablation) at bench, spot, or paper effort.
- ``campaign`` — run a declarative scenario-grid x protocol-config x
  replicate sweep through the parallel campaign engine, with an
  append-only JSONL metrics stream as the primary resume medium (an
  on-disk result cache is an opt-in second layer), so interrupted or
  repeated campaigns resume instead of re-simulating.
  ``--shard-index/--shard-count`` runs one deterministic slice of a
  campaign (multi-machine sweeps); ``--tasks FILE`` runs the explicit
  task-key list in a scheduler assignment file, re-read between
  batches; ``campaign orchestrate`` launches and supervises all shards
  as local worker subprocesses (requeuing a dead worker's remaining
  tasks; ``--scheduler stealing`` additionally moves unstarted leases
  from lagging shards onto idle workers); ``campaign watch`` tails the
  growing streams and re-renders the partial aggregate live;
  ``campaign merge`` unions shard streams; ``campaign aggregate``
  renders the summary table from a stream alone; ``campaign status``
  is a one-shot health report of a run directory (per-shard progress,
  heartbeat staleness, supervision counts — from files alone);
  ``campaign events`` prints the run's structured event log.
- ``report`` — render a self-contained trade-off report (Pareto
  frontiers, bootstrap-CI rankings, dominance/regret, per-axis curves)
  from a run directory or merged stream, as markdown or single-file
  HTML.
- ``list`` — enumerate available experiments and protocols.

Examples::

    repro run --protocol glr --radius 100 --messages 200 --sim-time 600
    repro experiment fig4 --effort bench --workers 4
    repro experiment fig6 --mobility gauss-markov
    repro campaign --radii 50,100 --protocols glr,epidemic \\
        --replicates 3 --workers 4 --stream metrics.jsonl
    repro campaign --mobility rwp,gauss-markov \\
        --protocol-param check_interval=0.9,1.8 \\
        --protocol-param custody=true,false --workers 4
    repro campaign --mobility rpgm --mobility-param n_groups=2,4 \\
        --protocols glr --replicates 3
    repro campaign --protocols glr,epidemic --adversary none \\
        --adversary blackhole:0.1 --adversary blackhole:0.3
    repro campaign --suite mobility-x-protocol --effort bench
    repro campaign orchestrate --radii 50,100 --shards 2 \\
        --workers-per-shard 2 --dir RUNDIR
    repro campaign orchestrate --radii 50,100 --shards 4 \\
        --scheduler stealing --dir RUNDIR
    repro campaign orchestrate --radii 50,100 \\
        --hosts user@h1,user@h2 --dir RUNDIR
    repro campaign watch --dir RUNDIR
    repro campaign status RUNDIR
    repro campaign events RUNDIR --type requeue
    repro campaign --radii 50,100 --stream shard0.jsonl \\
        --shard-index 0 --shard-count 2 --cache-dir CACHE
    repro campaign merge --out merged.jsonl shard0.jsonl shard1.jsonl
    repro campaign aggregate --stream merged.jsonl
    repro report RUNDIR
    repro report merged.jsonl --format html --out report.html
    repro report RUNDIR --protocol glr --adversary blackhole
"""

from __future__ import annotations

import argparse
import dataclasses
import itertools
import json
import sys
import time
from pathlib import Path
from typing import Callable

from repro.experiments import ablations, figures, tables
from repro.experiments.campaign import (
    CampaignSpec,
    TaskProgress,
    campaign_result_from_stream,
    merge_caches,
    run_campaign,
)
from repro.experiments.layout import RunLayout
from repro.experiments.orchestrator import (
    OrchestratorError,
    orchestrate_campaign,
    render_watch,
    watch_view,
)
from repro.experiments.protocols import ProtocolConfig
from repro.experiments.scheduler import (
    AssignmentIdleTimeout,
    SchedulerError,
    read_assignment,
)
from repro.experiments.transport import parse_hosts
from repro.experiments.stream import (
    StreamError,
    merge_streams,
    stream_task_count,
)
from repro.telemetry.events import (
    EVENT_TYPES,
    HEARTBEAT_EVERY_S,
    EventLog,
    filter_events,
    load_events,
    render_event,
)
from repro.experiments.common import (
    BENCH_EFFORT,
    PAPER_EFFORT,
    SPOT_EFFORT,
    Effort,
)
from repro.experiments.runner import available_protocols, run_single
from repro.sim.arraystate import VectorizedEngineUnavailableError
from repro.experiments.scenarios import Scenario
from repro.experiments.suites import (
    available_suites,
    build_suite,
    suite_description,
)
from repro.mobility.registry import (
    MobilityConfig,
    as_mobility_config,
    available_models,
)
from repro.sim.adversary import (
    as_adversary_config,
    available_adversary_modes,
)


def _fig1_driver(
    effort: Effort, seed: int, workers: int = 1, cache_dir=None, mobility=None
):
    # Figure 1 is a static-topology experiment; effort maps to run count
    # and there is nothing to parallelise, cache, or move.
    if mobility is not None:
        raise ValueError("fig1 is a static-topology experiment; --mobility "
                         "does not apply")
    return figures.fig1_topology(runs=effort.runs * 5, seed=seed)


#: Experiment name -> driver accepting (effort=..., seed=...).
EXPERIMENTS: dict[str, Callable] = {
    "fig1": _fig1_driver,
    "fig3": figures.fig3_check_interval,
    "fig4": figures.fig4_latency_vs_load,
    "fig5": figures.fig5_latency_vs_load,
    "fig6": figures.fig6_latency_vs_radius,
    "fig7": figures.fig7_delivery_vs_storage,
    "table2": tables.table2_location,
    "table3": tables.table3_custody,
    "table4": tables.table4_storage_vs_load,
    "table5": tables.table5_storage_vs_radius,
    "table6": tables.table6_hops,
    "ablation-copies": ablations.ablation_copies,
    "ablation-spanner": ablations.ablation_spanner,
    "ablation-face": ablations.ablation_face_routing,
    "ablation-custody-timeout": ablations.ablation_custody_timeout,
    "ablation-protocols": ablations.ablation_protocols,
}

EFFORTS: dict[str, Effort] = {
    "bench": BENCH_EFFORT,
    "spot": SPOT_EFFORT,
    "paper": PAPER_EFFORT,
}


def _adversary_argument(text: str) -> str:
    """``--adversary`` argparse type: validate the spec at parse time.

    A typo'd mode or fraction should die in argparse before anything
    runs.  The raw string is kept (not the parsed config) so argparse
    can print it in error messages; Scenario/CampaignSpec re-coerce.
    """
    try:
        as_adversary_config(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return text


def _hosts_argument(text: str) -> list[str]:
    """``--hosts`` argparse type: split and *validate* at parse time.

    A typo'd fleet spec should die in argparse (usage + exit 2) before
    a single simulation starts, not when the supervisor first tries to
    push the spec out.  The parsed transports are thrown away here —
    the orchestrator re-parses — because argparse values must survive
    being printed in error messages.
    """
    specs = [part.strip() for part in text.split(",") if part.strip()]
    if not specs:
        raise argparse.ArgumentTypeError(
            "needs at least one host spec (e.g. user@h1,user@h2)"
        )
    try:
        parse_hosts(specs)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return specs


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="glr-repro",
        description="Reproduction of the GLR DTN routing paper (ICDCS 2009).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one simulation")
    run_p.add_argument("--protocol", default="glr", choices=available_protocols())
    run_p.add_argument("--radius", type=float, default=100.0)
    run_p.add_argument("--messages", type=int, default=200)
    run_p.add_argument("--sim-time", type=float, default=600.0)
    run_p.add_argument("--nodes", type=int, default=50)
    run_p.add_argument("--seed", type=int, default=1)
    run_p.add_argument("--storage-limit", type=int, default=None)
    run_p.add_argument(
        "--adversary",
        type=_adversary_argument,
        default=None,
        metavar="MODE:FRACTION[:k=v,...]",
        help="compromise a seed-chosen node fraction with this Byzantine "
        f"behaviour (modes: {','.join(available_adversary_modes())}; "
        "'none' or fraction 0 runs honest)",
    )
    run_p.add_argument(
        "--engine",
        default=None,
        choices=("reference", "vectorized"),
        help="simulation core (default: the REPRO_ENGINE environment "
        "variable, else reference); results are bit-identical",
    )

    exp_p = sub.add_parser("experiment", help="regenerate a figure/table")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS))
    exp_p.add_argument("--effort", default="bench", choices=sorted(EFFORTS))
    exp_p.add_argument("--seed", type=int, default=1)
    exp_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="replicate simulations to run in parallel (default: serial)",
    )
    exp_p.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk result cache; reruns skip finished simulations",
    )
    exp_p.add_argument(
        "--mobility",
        default=None,
        help="run the experiment under a registry mobility model "
        "(e.g. gauss-markov, rpgm, manhattan) instead of the paper's RWP",
    )

    camp_p = sub.add_parser(
        "campaign",
        help="run a scenario-grid sweep through the campaign engine",
        # Prefix abbreviation would make `events --shard` ambiguous
        # against this parser's --shard-index/--shard-count during
        # argparse's pre-scan, even though --shard belongs to the
        # subcommand; exact option names only.
        allow_abbrev=False,
    )
    camp_sub = camp_p.add_subparsers(
        dest="campaign_action",
        metavar="{orchestrate,watch,status,events,merge,aggregate}",
    )
    orch_p = camp_sub.add_parser(
        "orchestrate",
        help="launch and supervise all shards of a campaign as local "
        "worker subprocesses, then merge and aggregate",
    )
    _add_campaign_shape_args(orch_p)
    orch_p.add_argument(
        "--shards",
        type=int,
        default=None,
        help="number of local shard workers the campaign fans out over "
        "(exactly one of --shards / --hosts)",
    )
    orch_p.add_argument(
        "--hosts",
        type=_hosts_argument,
        default=None,
        metavar="SPEC[,SPEC...]",
        help="distribute over these hosts instead of local shards: "
        "'user@h1' / 'h1:/data/run' (SSH), 'store:/shared/h1' "
        "(directory-backed object store pseudo-host), 'local:/path' "
        "(shared-filesystem root); specs are validated here at parse "
        "time, and hosts mode always runs the stealing scheduler",
    )
    orch_p.add_argument(
        "--workers-per-shard",
        type=int,
        default=1,
        help="process-pool size inside each shard worker (default: 1)",
    )
    orch_p.add_argument(
        "--dir",
        default=None,
        help="run directory for spec/streams/heartbeats/logs and the "
        "merged stream (default: orchestrated-<name>; rerunning with "
        "the same dir resumes from its shard streams)",
    )
    orch_p.add_argument(
        "--cache-dir",
        default=None,
        help="opt-in per-task result cache shared by the shard workers "
        "(streams already make orchestrated runs resumable)",
    )
    orch_p.add_argument(
        "--scheduler",
        default=None,
        choices=("static", "stealing"),
        help="task scheduling policy: 'static' fixes each worker's "
        "shard at launch; 'stealing' rebalances unstarted leases from "
        "lagging workers onto idle ones via per-worker assignment "
        "files (default: static; --hosts forces stealing)",
    )
    orch_p.add_argument(
        "--steal-threshold",
        type=int,
        default=2,
        help="minimum unstarted leases (beyond the in-flight window) a "
        "lagging worker must hold before the stealing scheduler moves "
        "any (default: 2)",
    )
    orch_p.add_argument(
        "--lease-batch",
        type=int,
        default=None,
        help="task keys a stealing worker takes per assignment-file "
        "re-read — also the keep window a steal never touches "
        "(default: --workers-per-shard)",
    )
    orch_p.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="launches per shard before the campaign aborts (default: 3)",
    )
    orch_p.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="cap on simultaneously running shard workers "
        "(default: all shards at once)",
    )
    orch_p.add_argument(
        "--stall-timeout",
        type=float,
        default=600.0,
        help="seconds without a heartbeat touch before a worker is "
        "declared stalled, killed, and its shard requeued "
        "(workers touch per finished task; default: 600)",
    )
    orch_p.add_argument(
        "--poll-interval",
        type=float,
        default=0.3,
        help="supervision poll interval in seconds (default: 0.3)",
    )
    orch_p.add_argument(
        "--chaos-kill-shard",
        type=int,
        default=None,
        metavar="INDEX",
        help="fault injection (tests/CI): SIGKILL this shard's first "
        "worker mid-run and let supervision requeue it",
    )
    orch_p.add_argument(
        "--chaos-kill-after",
        type=int,
        default=1,
        metavar="RECORDS",
        help="fire --chaos-kill-shard once the worker's stream holds "
        "this many records (default: 1; 0 kills at launch, "
        "deterministically)",
    )
    orch_p.add_argument(
        "--chaos-slow-shard",
        type=int,
        default=None,
        metavar="INDEX",
        help="fault injection (tests/CI): run this shard's workers "
        "under an injected per-task sleep — a simulated slow machine "
        "the stealing scheduler rebalances around",
    )
    orch_p.add_argument(
        "--chaos-slow-s",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="per-task sleep --chaos-slow-shard injects (default: 0.25)",
    )
    orch_p.add_argument(
        "--chaos-kill-host",
        type=int,
        default=None,
        metavar="INDEX",
        help="fault injection (tests/CI, --hosts mode): SIGKILL this "
        "host's worker once its stream holds --chaos-kill-after "
        "records and declare the host vanished — its leases reclaim "
        "onto the surviving hosts",
    )
    orch_p.add_argument(
        "--quiet", action="store_true", help="suppress supervision events"
    )
    watch_p = camp_sub.add_parser(
        "watch",
        help="tail live campaign streams and re-render the partial "
        "aggregate (read-only; never repairs a stream)",
    )
    watch_p.add_argument(
        "streams", nargs="*", help="stream files to watch"
    )
    watch_p.add_argument(
        "--dir",
        default=None,
        help="watch every shard*.jsonl in an orchestrator run directory "
        "(instead of naming streams)",
    )
    watch_p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between re-renders (default: 2)",
    )
    watch_p.add_argument(
        "--once",
        action="store_true",
        help="render one snapshot and exit (scripting/CI)",
    )
    watch_p.add_argument(
        "--stall-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="heartbeat age that earns a shard the stall warning marker "
        "in the health panel (--dir only; default: 600)",
    )
    status_p = camp_sub.add_parser(
        "status",
        help="one-shot health report of an orchestrated run directory, "
        "rebuilt from its files alone (works mid-run and after)",
    )
    status_p.add_argument("dir", help="orchestrator run directory")
    status_p.add_argument(
        "--stall-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="heartbeat age that earns a shard the stall warning marker "
        "(default: 600)",
    )
    status_p.add_argument(
        "--json",
        action="store_true",
        help="machine-readable JSON document instead of text",
    )
    events_p = camp_sub.add_parser(
        "events",
        help="print a run directory's structured event log "
        "(read-only; never repairs the file)",
    )
    events_p.add_argument("dir", help="orchestrator run directory")
    events_p.add_argument(
        "--type",
        default=None,
        choices=sorted(EVENT_TYPES),
        help="only events of this type",
    )
    events_p.add_argument(
        "--shard",
        type=int,
        default=None,
        help="only events about this shard",
    )
    events_p.add_argument(
        "--since",
        type=float,
        default=None,
        metavar="SECONDS",
        help="only events from the last SECONDS seconds (wall clock)",
    )
    events_p.add_argument(
        "--json",
        action="store_true",
        help="raw JSON records, one per line, instead of rendered text",
    )
    merge_p = camp_sub.add_parser(
        "merge",
        help="union shard metrics streams (and optionally caches)",
    )
    merge_p.add_argument(
        "--out", required=True, help="merged stream to write"
    )
    merge_p.add_argument(
        "streams", nargs="+", help="shard stream files to merge"
    )
    merge_p.add_argument(
        "--caches",
        default=None,
        help="comma-separated shard cache dirs to union (with --cache-out)",
    )
    merge_p.add_argument(
        "--cache-out",
        default=None,
        help="cache dir the union of --caches is written into",
    )
    agg_p = camp_sub.add_parser(
        "aggregate",
        help="render the campaign summary table from a metrics stream",
    )
    agg_p.add_argument(
        "--stream", required=True, help="metrics stream to aggregate"
    )
    _add_campaign_shape_args(camp_p)
    camp_p.add_argument("--workers", type=int, default=1)
    camp_p.add_argument("--cache-dir", default=None)
    camp_p.add_argument(
        "--stream",
        default=None,
        help="append per-task metrics to this JSONL stream; tasks "
        "already recorded there are skipped on resume",
    )
    camp_p.add_argument(
        "--shard-index",
        type=int,
        default=None,
        help="run only this shard of the campaign (0-based; "
        "requires --shard-count and --stream)",
    )
    camp_p.add_argument(
        "--shard-count",
        type=int,
        default=None,
        help="total number of shards the campaign is split into",
    )
    camp_p.add_argument(
        "--tasks",
        default=None,
        metavar="FILE",
        help="execute the explicit task-key list in this scheduler "
        "assignment file, re-reading it between batches (the stealing "
        "orchestrator's worker mode; requires --stream, conflicts "
        "with --shard-index/--shard-count)",
    )
    camp_p.add_argument(
        "--wait-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --tasks (required): exit (code 4) after idling this "
        "long on an assignment file nobody touches or closes — a live "
        "supervisor freshens the file every tick, so a quiet file "
        "means it died; 0 waits forever (default: 600)",
    )
    camp_p.add_argument(
        "--heartbeat",
        default=None,
        metavar="FILE",
        help="touch this file at start and after every finished task "
        "(the orchestrator's worker-liveness probe)",
    )
    camp_p.add_argument(
        "--events",
        default=None,
        metavar="FILE",
        help="append this worker's reasoned heartbeat events (task-done "
        "vs idle-wait) to this event log; the orchestrator passes the "
        "run dir's shard<i>.events and merges them at collection",
    )
    camp_p.add_argument(
        "--quiet", action="store_true", help="suppress per-task progress"
    )

    report_p = sub.add_parser(
        "report",
        help="render a self-contained trade-off report (Pareto "
        "frontiers, bootstrap-CI rankings, regret, per-axis curves) "
        "from a run directory or metrics stream",
    )
    report_p.add_argument(
        "path",
        help="orchestrator run directory, or a (merged or shard) "
        "metrics stream file",
    )
    report_p.add_argument(
        "--format",
        default="markdown",
        choices=("markdown", "html"),
        help="output format (default: markdown; html is a single "
        "self-contained page)",
    )
    report_p.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the report here instead of stdout",
    )
    report_p.add_argument(
        "--scenario",
        default=None,
        help="only cells whose scenario name equals or contains this "
        "(e.g. 'radius=100')",
    )
    report_p.add_argument(
        "--protocol",
        default=None,
        help="only this protocol (registry name/alias, or an exact "
        "variant label like 'glr(custody=False)')",
    )
    report_p.add_argument(
        "--mobility",
        default=None,
        help="only cells under this mobility model "
        "(random_waypoint for the paper's default)",
    )
    report_p.add_argument(
        "--adversary",
        default=None,
        metavar="MODE[:FRACTION]",
        help="only cells under this adversary ('none' for honest "
        "cells; a bare mode matches every fraction)",
    )
    report_p.add_argument(
        "--resamples",
        type=int,
        default=1000,
        help="bootstrap resamples behind the ranking intervals "
        "(default: 1000; seeded, so reports are deterministic)",
    )

    sub.add_parser("list", help="list experiments and protocols")
    return parser


def _add_campaign_shape_args(parser: argparse.ArgumentParser) -> None:
    """The flags that define *what* a campaign runs (shared by
    ``campaign`` and ``campaign orchestrate``)."""
    parser.add_argument(
        "--spec",
        default=None,
        help="JSON campaign spec file (grid/shape flags conflict with it; "
        "--seed/--replicates override its values)",
    )
    parser.add_argument(
        "--suite",
        default=None,
        choices=available_suites(),
        help="run a named cross-mobility suite (--effort scales it; "
        "grid/shape flags conflict with it)",
    )
    parser.add_argument(
        "--effort",
        default=None,
        choices=sorted(EFFORTS),
        help="simulation effort for --suite campaigns (default: bench; "
        "grid campaigns take --messages/--sim-time instead)",
    )
    parser.add_argument("--name", default=None)
    parser.add_argument(
        "--protocols",
        default=None,
        help="comma-separated protocol list (default: glr)",
    )
    parser.add_argument(
        "--replicates",
        type=int,
        default=None,
        help="replicates per cell (default: 3; overrides a --spec file)",
    )
    parser.add_argument(
        "--radii",
        default=None,
        help="comma-separated radius grid in metres",
    )
    parser.add_argument(
        "--node-counts",
        default=None,
        help="comma-separated node-count grid",
    )
    parser.add_argument(
        "--mobility",
        default=None,
        help="comma-separated mobility-model grid "
        f"(registry models: {','.join(available_models())})",
    )
    parser.add_argument(
        "--protocol-param",
        action="append",
        default=None,
        metavar="NAME=V1,V2,...",
        help="sweep a protocol-config field over the listed values "
        "(repeatable; the cartesian product of all --protocol-param "
        "axes is applied to every --protocols entry)",
    )
    parser.add_argument(
        "--mobility-param",
        action="append",
        default=None,
        metavar="NAME=V1,V2,...",
        help="sweep a mobility-model parameter over the listed values "
        "(repeatable; the cartesian product of all --mobility-param "
        "axes is applied to every --mobility model; names/values are "
        "validated against the registry before anything runs)",
    )
    parser.add_argument(
        "--engines",
        default=None,
        help="comma-separated simulation-engine grid "
        "(reference,vectorized); engines are bit-identical, so this "
        "axis is a cross-check/benchmark sweep",
    )
    parser.add_argument(
        "--adversary",
        action="append",
        type=_adversary_argument,
        default=None,
        metavar="MODE:FRACTION[:k=v,...]",
        help="adversary axis: each occurrence is one grid value "
        f"(modes: {','.join(available_adversary_modes())}; 'none' is "
        "the honest cell); a single occurrence sets the base scenario "
        "instead of adding a grid axis — repeatable rather than "
        "comma-separated because parameterised specs like "
        "selective_drop:0.2:drop_rate=0.8 contain commas",
    )
    parser.add_argument("--messages", type=int, default=None)
    parser.add_argument("--sim-time", type=float, default=None)
    parser.add_argument("--storage-limit", type=int, default=None)
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="base scenario seed (default: 1; overrides a --spec file)",
    )


def _cmd_run(args: argparse.Namespace) -> int:
    scenario = Scenario(
        name="cli-run",
        n_nodes=args.nodes,
        active_nodes=min(45, args.nodes),
        radius=args.radius,
        message_count=args.messages,
        sim_time=args.sim_time,
        seed=args.seed,
        engine=args.engine,
        adversary=args.adversary,
    )
    metrics = run_single(
        scenario, args.protocol, buffer_limit=args.storage_limit
    )
    latency = (
        f"{metrics.average_latency:.2f}s"
        if metrics.average_latency is not None
        else "n/a"
    )
    hops = (
        f"{metrics.average_hops:.2f}"
        if metrics.average_hops is not None
        else "n/a"
    )
    print(f"protocol            {metrics.protocol}")
    print(f"messages created    {metrics.messages_created}")
    print(f"messages delivered  {metrics.messages_delivered}")
    print(f"delivery ratio      {metrics.delivery_ratio:.3f}")
    print(f"average latency     {latency}")
    print(f"average hops        {hops}")
    print(f"max peak storage    {metrics.max_peak_storage}")
    print(f"avg peak storage    {metrics.average_peak_storage:.2f}")
    print(f"frames sent         {metrics.frames_sent}")
    print(f"collision losses    {metrics.frames_lost_collision}")
    print(f"queue drops         {metrics.frames_dropped_queue}")
    print(f"events processed    {metrics.events_processed}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    driver = EXPERIMENTS[args.name]
    effort = EFFORTS[args.effort]
    result = driver(
        effort=effort,
        seed=args.seed,
        workers=args.workers,
        cache_dir=args.cache_dir,
        mobility=args.mobility,
    )
    print(result.render())
    return 0


def _csv(text: str, convert: Callable) -> tuple:
    return tuple(
        convert(part.strip()) for part in text.split(",") if part.strip()
    )


def _param_value(text: str) -> bool | int | float | str:
    """A protocol-param value: bool, int, float, or bare string."""
    lowered = text.strip().lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for convert in (int, float):
        try:
            return convert(text)
        except ValueError:
            continue
    return text.strip()


def _param_axes(flag: str, entries: list[str]) -> list[tuple[str, tuple]]:
    """Parse repeatable ``name=v1,v2`` sweep-axis flags (shared by
    ``--protocol-param`` and ``--mobility-param``)."""
    axes: list[tuple[str, tuple]] = []
    for entry in entries:
        name, sep, values_text = entry.partition("=")
        name = name.strip()
        values = _csv(values_text, _param_value)
        if not sep or not name or not values:
            raise ValueError(
                f"{flag} needs the form name=v1,v2,..., got {entry!r}"
            )
        if len(set(values)) != len(values):
            raise ValueError(f"{flag} {name} has duplicate values")
        if any(name == seen for seen, _ in axes):
            raise ValueError(f"{flag} {name} given twice")
        axes.append((name, values))
    return axes


def _param_combos(axes: list[tuple[str, tuple]]) -> list[dict]:
    """Every parameter assignment in the cartesian product of ``axes``."""
    names = [name for name, _ in axes]
    return [
        dict(zip(names, combo))
        for combo in itertools.product(*(values for _, values in axes))
    ]


def _expand_protocol_params(
    protocols: tuple[str, ...], entries: list[str]
) -> tuple[ProtocolConfig, ...]:
    """The protocol axis: every protocol x every param combination.

    Each ``--protocol-param name=v1,v2`` entry is one sweep axis; the
    cartesian product of all axes is applied to every listed protocol.
    Validation (unknown field, bad value, protocol that takes no
    parameters) happens inside :class:`ProtocolConfig` at build time.
    """
    combos = _param_combos(_param_axes("--protocol-param", entries))
    return tuple(
        ProtocolConfig.of(protocol, **params)
        for protocol in protocols
        for params in combos
    )


def _expand_mobility_params(
    models: tuple[str, ...], entries: list[str]
) -> tuple[MobilityConfig, ...]:
    """The mobility axis: every model x every param combination.

    Mirrors :func:`_expand_protocol_params` for movement models, so
    mobility parameter grids no longer require a JSON spec.  Each
    config passes through :func:`repro.mobility.registry
    .as_mobility_config` here, at parse time — an unknown model, a
    typo'd parameter name, or a missing required parameter fails with
    the registry's error before any simulation starts.
    """
    combos = _param_combos(_param_axes("--mobility-param", entries))
    return tuple(
        as_mobility_config(MobilityConfig.of(model, **params))
        for model in models
        for params in combos
    )


def _reject_conflicting_shape_flags(
    args: argparse.Namespace, source: str, composing: str
) -> None:
    """Error out when grid/shape flags are combined with --spec/--suite.

    Both alternatives fix the campaign shape themselves; silently
    ignoring explicit flags would run simulations the user did not ask
    for.
    """
    conflicting = [
        flag
        for flag, value in (
            ("--name", args.name),
            ("--protocols", args.protocols),
            ("--radii", args.radii),
            ("--node-counts", args.node_counts),
            ("--mobility", args.mobility),
            ("--protocol-param", args.protocol_param),
            ("--mobility-param", args.mobility_param),
            ("--engines", args.engines),
            ("--adversary", args.adversary),
            ("--messages", args.messages),
            ("--sim-time", args.sim_time),
            ("--storage-limit", args.storage_limit),
        )
        if value is not None
    ]
    if conflicting:
        raise ValueError(
            f"{source} defines the campaign shape; drop {conflicting} "
            f"(only {composing} compose with it)"
        )


def _campaign_spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    if args.spec is not None and args.suite is not None:
        raise ValueError("--spec and --suite both define the campaign; "
                         "pass one or the other")
    if args.spec is not None:
        if args.effort is not None:
            raise ValueError(
                "--effort only applies to --suite campaigns; a JSON spec "
                "sets sim_time/message_count in its base"
            )
        _reject_conflicting_shape_flags(
            args,
            "--spec",
            "--seed/--replicates/--workers/--cache-dir/--stream/--shard-*",
        )
        spec = CampaignSpec.from_dict(
            json.loads(Path(args.spec).read_text(encoding="utf-8"))
        )
        if args.replicates is not None:
            spec = dataclasses.replace(spec, replicates=args.replicates)
        if args.seed is not None:
            spec = dataclasses.replace(
                spec, base=spec.base.with_seed(args.seed)
            )
        return spec
    seed = args.seed if args.seed is not None else 1
    replicates = args.replicates if args.replicates is not None else 3
    if args.suite is not None:
        _reject_conflicting_shape_flags(
            args,
            "--suite",
            "--seed/--replicates/--effort/--workers/--cache-dir"
            "/--stream/--shard-*",
        )
        return build_suite(
            args.suite,
            seed=seed,
            replicates=replicates,
            effort=EFFORTS[args.effort if args.effort is not None else "bench"],
        )
    if args.effort is not None:
        raise ValueError(
            "--effort only applies to --suite campaigns; grid campaigns "
            "take --messages/--sim-time directly"
        )
    name = args.name if args.name is not None else "campaign"
    protocols: tuple = (
        _csv(args.protocols, str) if args.protocols else ("glr",)
    )
    if args.protocol_param:
        protocols = _expand_protocol_params(protocols, args.protocol_param)
    overrides: dict = {"seed": seed}
    if args.messages is not None:
        overrides["message_count"] = args.messages
    if args.sim_time is not None:
        overrides["sim_time"] = args.sim_time
    grid: list[tuple[str, tuple]] = []
    if args.radii:
        grid.append(("radius", _csv(args.radii, float)))
    if args.node_counts:
        counts = _csv(args.node_counts, int)
        if not counts:
            raise ValueError("--node-counts has no values")
        grid.append(("n_nodes", counts))
        # Keep the active source/destination set valid across the grid.
        overrides["active_nodes"] = min(45, min(counts))
    if args.mobility:
        models = _csv(args.mobility, str)
        if args.mobility_param:
            grid.append(
                ("mobility",
                 _expand_mobility_params(models, args.mobility_param))
            )
        else:
            grid.append(("mobility", models))
    elif args.mobility_param:
        raise ValueError(
            "--mobility-param needs --mobility to name the model(s) it "
            "parameterises"
        )
    if args.engines:
        grid.append(("engine", _csv(args.engines, str)))
    if args.adversary:
        if len(args.adversary) == 1:
            # One spec compromises the base scenario itself — no axis,
            # so an honest spec ('none' or fraction 0) keys every task
            # identically to a campaign with no --adversary at all
            # (the diff-clean property the CI smoke job checks).
            overrides["adversary"] = args.adversary[0]
        else:
            if len(set(args.adversary)) != len(args.adversary):
                raise ValueError("--adversary has duplicate values")
            grid.append(("adversary", tuple(args.adversary)))
    return CampaignSpec(
        name=name,
        base=Scenario(name=name, **overrides),
        grid=tuple(grid),
        protocols=protocols,
        replicates=replicates,
        buffer_limit=args.storage_limit,
    )


def _cmd_campaign_merge(args: argparse.Namespace) -> int:
    if (args.caches is None) != (args.cache_out is None):
        raise ValueError("--caches and --cache-out must be given together")
    info = merge_streams(args.out, args.streams)
    print(
        f"merged {len(args.streams)} streams -> {args.out}: "
        f"{len(info.records)} task records "
        f"(spec hash {info.spec_hash[:12]})"
    )
    if info.quarantined:
        print(
            f"warning: skipped {info.quarantined} undecodable stream "
            f"line(s) — those tasks are missing from the merge; re-run "
            f"the affected shard with its stream to recompute them",
            file=sys.stderr,
        )
    if args.caches is not None:
        copied = merge_caches(args.cache_out, _csv(args.caches, str))
        print(f"cache union -> {args.cache_out}: {copied} entries copied")
    return 0


def _cmd_campaign_aggregate(args: argparse.Namespace) -> int:
    result = campaign_result_from_stream(args.stream)
    print(result.render())
    if result.stream_damaged:
        print(
            f"warning: {result.stream_damaged} undecodable stream "
            f"line(s) skipped — the runs column shows what each cell "
            f"actually aggregates",
            file=sys.stderr,
        )
    return 0


def _cmd_campaign_orchestrate(args: argparse.Namespace) -> int:
    # Cross-flag validation first, before the (possibly expensive)
    # spec expansion: --hosts is a different execution mode and the
    # single-machine-only knobs must conflict loudly, not silently
    # misbehave on a fleet.
    if (args.shards is None) == (args.hosts is None):
        raise ValueError("pass exactly one of --shards or --hosts")
    scheduler = args.scheduler or "static"
    if args.hosts is not None:
        if args.scheduler == "static":
            raise ValueError(
                "--scheduler static conflicts with --hosts: a static "
                "partition cannot rebalance around a vanished host "
                "(hosts mode always runs the stealing scheduler)"
            )
        scheduler = "stealing"
        if args.chaos_kill_shard is not None:
            raise ValueError(
                "--chaos-kill-shard is single-machine only and "
                "conflicts with --hosts; use --chaos-kill-host"
            )
        if args.chaos_slow_shard is not None:
            raise ValueError(
                "--chaos-slow-shard is single-machine only and "
                "conflicts with --hosts"
            )
        if args.chaos_kill_host is not None and not (
            0 <= args.chaos_kill_host < len(args.hosts)
        ):
            raise ValueError(
                f"--chaos-kill-host must name one of the "
                f"{len(args.hosts)} --hosts slots"
            )
    elif args.chaos_kill_host is not None:
        raise ValueError("--chaos-kill-host needs --hosts")
    spec = _campaign_spec_from_args(args)
    run_dir = Path(args.dir) if args.dir else Path(f"orchestrated-{spec.name}")
    total = spec.total_tasks()
    if args.hosts is not None:
        fanout = f"{len(args.hosts)} host(s) ({', '.join(args.hosts)})"
    else:
        fanout = f"{args.shards} shard worker(s)"
    print(
        f"orchestrating campaign {spec.name}: {total} simulations over "
        f"{fanout} x {args.workers_per_shard} "
        f"process(es) each -> {run_dir}"
    )

    def on_event(message: str) -> None:
        print(f"orchestrator: {message}", flush=True)

    outcome = orchestrate_campaign(
        spec,
        shards=args.shards,
        run_dir=run_dir,
        workers_per_shard=args.workers_per_shard,
        cache_dir=args.cache_dir,
        poll_interval=args.poll_interval,
        stall_timeout=args.stall_timeout,
        max_attempts=args.max_attempts,
        max_concurrent=args.max_concurrent,
        on_event=None if args.quiet else on_event,
        scheduler=scheduler,
        lease_batch=args.lease_batch,
        steal_threshold=args.steal_threshold,
        chaos_kill_shard=args.chaos_kill_shard,
        chaos_kill_after=args.chaos_kill_after,
        chaos_slow_shard=args.chaos_slow_shard,
        chaos_slow_s=args.chaos_slow_s,
        hosts=args.hosts,
        chaos_kill_host=args.chaos_kill_host,
    )
    print()
    print(outcome.result.render())
    attempts = sum(status.attempts for status in outcome.shards)
    steals = (
        f", {outcome.steals} lease(s) stolen"
        if outcome.scheduler == "stealing"
        else ""
    )
    hosts_note = (
        f" across {len(outcome.hosts)} host(s)" if outcome.hosts else ""
    )
    print(
        f"orchestrated ({outcome.scheduler} scheduler{hosts_note}): "
        f"{len(outcome.shards)} "
        f"shard(s), {attempts} worker launch(es), {outcome.requeues} "
        f"requeue(s){steals}; merged stream: {outcome.merged_stream}"
    )
    return 0


def _shard_indices(layout: RunLayout) -> list[int]:
    """Every shard slot with any artifact in the run dir.

    Streams alone under-count (a worker killed before its first record
    has only a heartbeat/log), so the union over every ``shard<i>.*``
    artifact is what status and the watch health panel iterate.
    """
    indices: set[int] = set()
    for path in layout.root.glob("shard*"):
        rest = path.name[len("shard"):]
        digits = rest[: len(rest) - len(rest.lstrip("0123456789"))]
        if digits:
            indices.add(int(digits))
    return sorted(indices)


def _heartbeat_age(path: Path, now: float) -> float | None:
    try:
        return max(0.0, now - path.stat().st_mtime)
    except OSError:
        return None


def _heartbeat_text(age: float | None, stall_timeout: float) -> str:
    if age is None:
        return "no heartbeat yet"
    text = f"last beat {age:.0f}s ago"
    if stall_timeout and age > stall_timeout:
        text += " ⚠ stalled?"
    return text


def _render_health(
    layout: RunLayout, stall_timeout: float
) -> str:
    """The per-shard liveness panel shared by watch and status."""
    now = time.time()
    lines = []
    for index in _shard_indices(layout):
        stream = layout.stream(index)
        recorded = (
            stream_task_count(stream)
            if stream.exists() and stream.stat().st_size > 0
            else 0
        )
        age = _heartbeat_age(layout.heartbeat(index), now)
        lines.append(
            f"shard {index}: {recorded} task record(s), "
            f"{_heartbeat_text(age, stall_timeout)}"
        )
    return "\n".join(lines)


def _cmd_campaign_status(args: argparse.Namespace) -> int:
    """Health report of a run dir, rebuilt from its files alone."""
    layout = RunLayout(args.dir)
    if not layout.root.is_dir():
        raise ValueError(f"no run directory at {layout.root}")
    now = time.time()
    indices = _shard_indices(layout)

    # The event log is optional input (a pre-telemetry run dir, or a
    # run that has not started): everything stream/heartbeat-derived
    # still renders without it.
    events: list[dict] = []
    origin = None
    quarantined = 0
    if layout.events.exists():
        info = load_events(layout.events, quarantine=False)
        events, origin, quarantined = (
            info.records, info.origin, info.quarantined
        )
    by_type: dict[str, int] = {}
    for record in events:
        by_type[record["type"]] = by_type.get(record["type"], 0) + 1
    summaries = {
        record["shard"]: record
        for record in events
        if record["type"] == "shard_summary"
    }
    hosts_joined = {
        record["shard"]: record["host"]
        for record in events
        if record["type"] == "host_join"
    }
    hosts_lost = {
        record["shard"] for record in events
        if record["type"] == "host_lost"
    }
    finished = by_type.get("run_end", 0) > 0

    streams = [
        path for path in layout.shard_streams()
        if path.stat().st_size > 0
    ]
    done = total = complete_cells = total_cells = None
    coverage_note = "no task records yet"
    if streams:
        try:
            view = watch_view(streams)
            done, total = view.done, view.total
            complete_cells = view.complete_cells
            total_cells = view.total_cells
            coverage_note = (
                f"{done}/{total} tasks recorded, "
                f"{complete_cells}/{total_cells} cells complete"
            )
        except (StreamError, ValueError) as exc:
            coverage_note = f"streams unreadable this tick: {exc}"

    shard_rows = []
    for index in indices:
        stream = layout.stream(index)
        recorded = (
            stream_task_count(stream)
            if stream.exists() and stream.stat().st_size > 0
            else 0
        )
        age = _heartbeat_age(layout.heartbeat(index), now)
        summary = summaries.get(index)
        state = (
            summary["payload"].get("state")
            if summary is not None else None
        )
        if index in hosts_lost:
            state = "lost"
        leases = None
        closed = None
        assignment = layout.assignment(index)
        if assignment.exists():
            try:
                lease = read_assignment(assignment)
                leases, closed = len(lease.keys), lease.closed
            except SchedulerError:
                pass
        counts = {
            kind: sum(
                1 for record in events
                if record["type"] == kind and record["shard"] == index
            )
            for kind in ("requeue", "steal", "stall", "chaos")
        }
        shard_rows.append(
            {
                "shard": index,
                "host": hosts_joined.get(index),
                "state": state,
                "recorded": recorded,
                "heartbeat_age_s": age,
                "leases": leases,
                "assignment_closed": closed,
                **counts,
            }
        )

    if args.json:
        print(
            json.dumps(
                {
                    "run_dir": str(layout.root),
                    "finished": finished,
                    "tasks_done": done,
                    "tasks_total": total,
                    "cells_complete": complete_cells,
                    "cells_total": total_cells,
                    "events": len(events),
                    "events_origin": origin,
                    "events_quarantined": quarantined,
                    "event_counts": by_type,
                    "shards": shard_rows,
                },
                sort_keys=True,
            )
        )
        return 0

    print(f"campaign status: {layout.root}")
    print(f"  {coverage_note}")
    if events:
        line = f"  event log: {len(events)} event(s) (origin {origin})"
        if quarantined:
            line += f", {quarantined} undecodable line(s) skipped"
        if finished:
            line += "; run complete (run_end recorded)"
        print(line)
        interesting = (
            "launch", "exit", "stall", "requeue", "steal", "reclaim",
            "chaos", "host_join", "host_lost",
        )
        counts = ", ".join(
            f"{kind}={by_type[kind]}"
            for kind in interesting if by_type.get(kind)
        )
        if counts:
            print(f"  supervision: {counts}")
    else:
        print("  event log: none yet")
    if hosts_joined:
        live = [
            host for shard, host in sorted(hosts_joined.items())
            if shard not in hosts_lost
        ]
        print(f"  hosts: {len(live)} live, {len(hosts_lost)} lost")
    for row in shard_rows:
        bits = []
        if row["state"]:
            bits.append(row["state"])
        bits.append(f"{row['recorded']} task record(s)")
        bits.append(
            _heartbeat_text(row["heartbeat_age_s"], args.stall_timeout)
        )
        if row["leases"] is not None:
            closed = " [closed]" if row["assignment_closed"] else ""
            bits.append(f"{row['leases']} leased key(s){closed}")
        for kind in ("requeue", "steal", "stall", "chaos"):
            if row[kind]:
                bits.append(f"{row[kind]} {kind}(s)")
        host = f" ({row['host']})" if row["host"] else ""
        print(f"  shard {row['shard']}{host}: " + ", ".join(bits))
    return 0


def _cmd_campaign_events(args: argparse.Namespace) -> int:
    layout = RunLayout(args.dir)
    # Read-only: a live supervisor may be mid-append on the last line,
    # so the reader must never trigger quarantine repair.
    info = load_events(layout.events, quarantine=False)
    since_wall = (
        time.time() - args.since if args.since is not None else None
    )
    records = filter_events(
        info.records,
        type=args.type,
        shard=args.shard,
        since_wall=since_wall,
    )
    for record in records:
        if args.json:
            print(json.dumps(record, sort_keys=True))
        else:
            print(render_event(record))
    return 0


def _cmd_campaign_watch(args: argparse.Namespace) -> int:
    if bool(args.streams) == bool(args.dir):
        raise ValueError(
            "watch takes stream paths or --dir RUNDIR (one or the other)"
        )

    def stream_paths() -> list[Path]:
        if args.dir:
            # The layout knows the shard-stream naming, including the
            # supervisor-side mirrors of a multi-host run — watching a
            # distributed campaign's dir needs nothing special.
            return RunLayout(args.dir).shard_streams()
        return [Path(stream) for stream in args.streams]

    while True:
        ready = [
            path
            for path in stream_paths()
            if path.exists() and path.stat().st_size > 0
        ]
        if not ready:
            if args.once:
                raise ValueError(
                    "no campaign streams to watch yet "
                    f"({args.dir or ', '.join(args.streams)})"
                )
            print("watch: waiting for campaign streams...", flush=True)
            time.sleep(args.interval)
            continue
        try:
            view = watch_view(ready)
        except StreamError as exc:
            if args.once:
                raise
            # Transient on live streams (e.g. a header mid-append);
            # report and try again rather than killing the dashboard.
            print(f"watch: {exc}", flush=True)
            time.sleep(args.interval)
            continue
        print(render_watch(view), flush=True)
        if args.dir:
            # The liveness panel needs the run dir's heartbeat files,
            # so it only renders in --dir mode (bare stream paths
            # carry no heartbeat to read).
            health = _render_health(
                RunLayout(args.dir), args.stall_timeout
            )
            if health:
                print(health, flush=True)
        if args.once or view.finished:
            return 0
        print(flush=True)
        time.sleep(args.interval)


def _cmd_campaign(args: argparse.Namespace) -> int:
    action = getattr(args, "campaign_action", None)
    if action == "orchestrate":
        return _cmd_campaign_orchestrate(args)
    if action == "watch":
        return _cmd_campaign_watch(args)
    if action == "status":
        return _cmd_campaign_status(args)
    if action == "events":
        return _cmd_campaign_events(args)
    if action == "merge":
        return _cmd_campaign_merge(args)
    if action == "aggregate":
        return _cmd_campaign_aggregate(args)

    if (args.shard_index is None) != (args.shard_count is None):
        raise ValueError(
            "--shard-index and --shard-count must be given together"
        )
    if args.shard_index is not None and args.stream is None:
        raise ValueError(
            "sharded campaigns need --stream: the shard's metrics "
            "stream is what `repro campaign merge` unions"
        )
    if args.tasks is not None and args.shard_index is not None:
        raise ValueError(
            "--tasks and --shard-index/--shard-count both fix the task "
            "subset; pass one or the other"
        )
    if args.tasks is not None and args.stream is None:
        raise ValueError(
            "--tasks campaigns need --stream: the stream is how the "
            "scheduler sees recorded tasks"
        )
    if args.wait_timeout is not None:
        if args.tasks is None:
            raise ValueError(
                "--wait-timeout only bounds the --tasks worker's idle "
                "wait; pass it with --tasks"
            )
        if args.wait_timeout < 0:
            raise ValueError(
                "--wait-timeout must be >= 0 (0 waits forever)"
            )
    wait_timeout = 600.0 if args.wait_timeout is None else args.wait_timeout
    spec = _campaign_spec_from_args(args)
    n_scenarios = len(spec.scenarios())
    total = n_scenarios * len(spec.protocols) * spec.replicates
    if args.tasks is not None:
        shard = "; this worker runs its leased subset of them"
    elif args.shard_index is not None:
        shard = (
            f"; shard {args.shard_index + 1}/{args.shard_count} runs "
            f"its subset of them"
        )
    else:
        shard = ""
    print(
        f"campaign {spec.name}: {n_scenarios} scenarios x "
        f"{len(spec.protocols)} protocols x {spec.replicates} replicates "
        f"= {total} simulations ({args.workers} workers{shard})"
    )

    heartbeat = Path(args.heartbeat) if args.heartbeat else None
    if heartbeat is not None:
        heartbeat.parent.mkdir(parents=True, exist_ok=True)
        heartbeat.touch()

    events_log: EventLog | None = None
    shard_no = args.shard_index
    if args.events:
        events_path = Path(args.events)
        if shard_no is None and events_path.stem.startswith("shard"):
            # Stealing workers carry no --shard-index; the orchestrator
            # names their event file shard<i>.events, so the slot index
            # is recoverable from the path for event identity.
            digits = events_path.stem[len("shard"):]
            if digits.isdigit():
                shard_no = int(digits)
        events_log = EventLog(events_path, origin=events_path.stem)

    def beat(reason: str) -> None:
        # The heartbeat *file* is the supervisor's liveness probe; the
        # event is the durable, reasoned record of the same touch —
        # task-done vs idle-wait tells a post-mortem whether the worker
        # was computing or starved for leases.
        if events_log is not None:
            events_log.emit_throttled(
                f"hb:{reason}",
                HEARTBEAT_EVERY_S,
                "heartbeat",
                shard=shard_no,
                reason=reason,
            )

    def progress(event: TaskProgress) -> None:
        if heartbeat is not None:
            heartbeat.touch()
        beat("task-done")
        if args.quiet:
            return
        source = event.source or ("cache" if event.cached else "ran")
        print(
            f"[{event.done}/{event.total}] {event.task.scenario.name} "
            f"{event.task.protocol_label} #{event.task.replicate} "
            f"({source})"
        )

    def on_wait() -> None:
        # An idle stealing worker polling for leases must still look
        # alive, or the supervisor's stall detector would kill it.
        if heartbeat is not None:
            heartbeat.touch()
        beat("idle-wait")

    want_callbacks = heartbeat is not None or events_log is not None
    result = run_campaign(
        spec,
        workers=args.workers,
        cache_dir=args.cache_dir,
        progress=None if args.quiet and not want_callbacks else progress,
        stream_path=args.stream,
        shard_index=args.shard_index,
        shard_count=args.shard_count,
        tasks_file=args.tasks,
        wait_timeout=wait_timeout if wait_timeout else None,
        on_wait=on_wait if want_callbacks else None,
    )
    print()
    print(result.render())
    print(result.cache_line())
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    """Render a trade-off report from a run dir or metrics stream."""
    # Imported here, not at module top: the analysis stack imports the
    # campaign engine, and most CLI invocations never need it.
    from repro.analysis.report import generate_report
    from repro.analysis.store import ResultStore

    if args.resamples < 1:
        raise ValueError("--resamples must be >= 1")
    store = ResultStore.open(args.path)
    query = store.select(
        scenario=args.scenario,
        protocol=args.protocol,
        mobility=args.mobility,
        adversary=args.adversary,
    )
    if not query.cells:
        raise ValueError(
            "the filters match no cells of this campaign; "
            f"scenarios: {store.scenarios()[:5]}..., "
            f"protocols: {store.protocols()}"
        )
    document = generate_report(
        store,
        fmt=args.format,
        resamples=args.resamples,
        query=query,
    )
    if args.out is not None:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(document, encoding="utf-8")
        print(f"report ({args.format}) -> {out}")
    else:
        print(document, end="")

    target = Path(args.path)
    if target.is_dir():
        # A run dir carries the campaign's event log; the report is a
        # supervision-grade fact (what was served, from which records),
        # so it joins the same durable history.
        EventLog(RunLayout(target).events, origin="report").emit(
            "report",
            msg=f"trade-off report ({args.format})",
            format=args.format,
            out=str(args.out) if args.out else None,
            cells=len(query.cells),
            records=len(query.records()),
        )
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("protocols:")
    for name in available_protocols():
        print(f"  {name}")
    print("mobility models:")
    for name in available_models():
        print(f"  {name}")
    print("adversary modes:")
    for name in available_adversary_modes():
        print(f"  {name}")
    print("suites:")
    for name in available_suites():
        print(f"  {name}: {suite_description(name)}")
    print("efforts:")
    for name, effort in EFFORTS.items():
        print(
            f"  {name}: runs={effort.runs} sim_time={effort.sim_time:.0f}s "
            f"messages={effort.message_count}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "campaign":
            return _cmd_campaign(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "list":
            return _cmd_list(args)
    except BrokenPipeError:
        # Downstream closed the pipe (| head, | less): exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 141
    except OrchestratorError as exc:
        # A shard kept failing: operational, not bad input — the run
        # dir keeps the shard streams, so a rerun resumes.
        print(f"orchestrator error: {exc}", file=sys.stderr)
        return 3
    except AssignmentIdleTimeout as exc:
        # Orphaned --tasks worker: the supervisor died without closing
        # the assignment file.  Distinct code so wrappers can tell
        # "supervisor gone" from bad input; the stream keeps every
        # finished task, so a relaunched supervisor resumes cleanly.
        print(f"scheduler error: {exc}", file=sys.stderr)
        return 4
    except SchedulerError as exc:
        # A worker handed a bad/mismatched assignment file: the
        # supervisor (or operator) pointed it at the wrong campaign.
        print(f"scheduler error: {exc}", file=sys.stderr)
        return 3
    except VectorizedEngineUnavailableError as exc:
        # The vectorized engine was selected (flag, grid, or
        # REPRO_ENGINE) but numpy is missing: a setup problem the
        # message tells the user how to fix, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, OSError) as exc:
        # Bad user input (unknown protocol, malformed spec/grid, missing
        # file); json.JSONDecodeError is a ValueError subclass.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        hint = ""
        action = getattr(args, "campaign_action", None)
        if action == "orchestrate":
            hint = " — rerun with the same --dir to resume"
        elif action is None:
            # Only actual simulation runs are resumable; merge/
            # aggregate/watch also carry --stream but are read paths.
            if getattr(args, "stream", None):
                hint = " — rerun with the same --stream to resume"
            elif getattr(args, "cache_dir", None):
                hint = " — rerun with the same --cache-dir to resume"
        print(f"\ninterrupted{hint}", file=sys.stderr)
        return 130
    return 1  # pragma: no cover - argparse enforces choices


if __name__ == "__main__":
    sys.exit(main())
