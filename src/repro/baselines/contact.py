"""Shared plumbing for contact-driven DTN protocols.

Epidemic-style protocols act on *contacts* — the events of two nodes
entering communication range — rather than on geometry.  This base
class turns the beacon-fresh neighbour set into contact callbacks: each
``tick_interval`` it diffs the current neighbour set against the last
one and reports new neighbours via :meth:`on_contact`.

It also owns the single message buffer (bounded FIFO, per the paper's
epidemic storage model) and the storage-metric hooks, so concrete
protocols only implement their exchange logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.udg import NodeId
from repro.sim.messages import Frame, Message, MessageCopy
from repro.sim.storage import MessageStore
from repro.sim.world import Protocol


@dataclass
class BufferedCopy:
    """A message held in a contact protocol's buffer, with its hop count."""

    message: Message
    hops: int


class ContactProtocol(Protocol):
    """Base class: buffer + contact detection via neighbour-set diffs."""

    name = "contact"

    def __init__(
        self,
        buffer_limit: int | None = None,
        tick_interval: float = 1.0,
    ):
        super().__init__()
        if tick_interval <= 0:
            raise ValueError("tick interval must be positive")
        self.buffer = MessageStore(capacity=buffer_limit)
        self.tick_interval = tick_interval
        self._known_neighbors: set[NodeId] = set()
        self._tick_task = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        assert self.api is not None, "protocol must be attached before start"
        self._tick_task = self.api.periodic(
            self.tick_interval, self._tick, jitter=self.tick_interval * 0.05
        )

    def _tick(self) -> None:
        assert self.api is not None
        current = self.api.neighbors()
        new_contacts = current - self._known_neighbors
        self._known_neighbors = current
        for peer in sorted(new_contacts, key=repr):
            self.on_contact(peer)
        if current:
            self.on_tick_with_neighbors(current)

    # -- extension points --------------------------------------------------

    def on_contact(self, peer: NodeId) -> None:
        """A neighbour just came into range."""

    def on_tick_with_neighbors(self, neighbors: set[NodeId]) -> None:
        """Called every tick while at least one neighbour is in range."""

    # -- buffer helpers -----------------------------------------------------

    def buffer_uids(self) -> frozenset[int]:
        """Uids of currently buffered messages."""
        return frozenset(self.buffer.keys())

    def hold(self, message: Message, hops: int) -> None:
        """Insert a message into the buffer (FIFO-evicting when full)."""
        self.buffer.add(message.uid, BufferedCopy(message=message, hops=hops))

    def held(self, uid: int) -> BufferedCopy | None:
        """The buffered copy for ``uid`` or None."""
        item = self.buffer.get(uid)
        return item if isinstance(item, BufferedCopy) else None

    def deliver_if_mine(self, copy: MessageCopy) -> bool:
        """Record delivery when this node is the destination."""
        assert self.api is not None
        if copy.message.dest != self.api.node_id:
            return False
        self.api.metrics.on_delivered(copy.message, self.api.now(), copy.hops)
        return True

    # -- default frame handling (unicast DATA only) --------------------------

    def on_message_created(self, message: Message) -> None:
        self.hold(message, hops=0)

    def on_frame(self, frame: Frame) -> None:
        raise NotImplementedError

    # -- storage metrics -------------------------------------------------------

    def storage_occupancy(self) -> int:
        return len(self.buffer)

    def storage_peak(self) -> int:
        return self.buffer.peak_occupancy

    def sample_storage(self, now: float) -> None:
        self.buffer.sample(now)

    def storage_time_average(self, horizon: float) -> float:
        return self.buffer.time_average_occupancy(horizon)
