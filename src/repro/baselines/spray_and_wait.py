"""Binary Spray and Wait (Spyropoulos et al.) — bounded-copy flooding.

Each message starts with ``initial_copies`` logical tickets.  A node
holding more than one ticket *sprays*: on contact it hands the peer
half of its tickets along with the message.  A node holding exactly one
ticket *waits*: it delivers only directly to the destination.

This sits between GLR (3 copies, direction-aware) and epidemic
(unbounded copies, direction-blind): same bounded-copy idea as GLR's
Algorithm 1, but with no geometric guidance.  The ablation benches use
it to separate "how much does bounding copies help" from "how much does
geometry help".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.contact import ContactProtocol
from repro.graphs.udg import NodeId
from repro.sim.messages import Frame, FrameKind, Message, MessageCopy, data_frame


@dataclass(frozen=True)
class SprayAndWaitConfig:
    """Spray-and-wait parameters.

    Attributes:
        initial_copies: tickets per new message (power of two sprays
            cleanly, but any value >= 1 works).
        buffer_limit: per-node buffer capacity (None = unlimited).
    """

    initial_copies: int = 8
    buffer_limit: int | None = None

    def __post_init__(self) -> None:
        if self.initial_copies < 1:
            raise ValueError("initial_copies must be >= 1")
        if self.buffer_limit is not None and self.buffer_limit < 1:
            raise ValueError("buffer limit must be >= 1")


@dataclass
class _SprayEntry:
    message: Message
    hops: int
    tickets: int


class SprayAndWaitProtocol(ContactProtocol):
    """One node's binary spray-and-wait instance."""

    name = "spray_and_wait"

    def __init__(self, config: SprayAndWaitConfig | None = None):
        self.config = config if config is not None else SprayAndWaitConfig()
        super().__init__(buffer_limit=self.config.buffer_limit)
        self._sprayed_to: dict[int, set[NodeId]] = {}

    def on_message_created(self, message: Message) -> None:
        self.buffer.add(
            message.uid,
            _SprayEntry(
                message=message, hops=0, tickets=self.config.initial_copies
            ),
        )

    def on_tick_with_neighbors(self, neighbors: set[NodeId]) -> None:
        assert self.api is not None
        for uid in list(self.buffer.keys()):
            entry = self.buffer.get(uid)
            if not isinstance(entry, _SprayEntry):
                continue
            if entry.message.dest in neighbors:
                self._send(entry, entry.message.dest, tickets=1, consume=True)
                continue
            if entry.tickets <= 1:
                continue  # wait phase
            already = self._sprayed_to.setdefault(uid, set())
            fresh = sorted(neighbors - already, key=repr)
            if not fresh:
                continue
            peer = fresh[0]
            give = entry.tickets // 2
            if self._send(entry, peer, tickets=give, consume=False):
                entry.tickets -= give
                already.add(peer)

    def _send(
        self, entry: _SprayEntry, target: NodeId, tickets: int, consume: bool
    ) -> bool:
        assert self.api is not None
        copy = MessageCopy(
            message=entry.message,
            branch="spray",
            mid_rank=tickets,  # tickets ride in the copy envelope
            hops=entry.hops,
        )
        if not self.api.send(data_frame(self.api.node_id, target, copy)):
            return False
        if consume:
            self.buffer.pop(entry.message.uid)
            self._sprayed_to.pop(entry.message.uid, None)
        return True

    def on_frame(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.DATA:
            return
        copy: MessageCopy = frame.payload
        copy = copy.hopped()
        if self.deliver_if_mine(copy):
            return
        # The sender evidently holds this message: never spray it back.
        self._sprayed_to.setdefault(copy.message.uid, set()).add(
            frame.sender
        )
        existing = self.buffer.get(copy.message.uid)
        if isinstance(existing, _SprayEntry):
            existing.tickets += max(1, copy.mid_rank)
            return
        self.buffer.add(
            copy.message.uid,
            _SprayEntry(
                message=copy.message,
                hops=copy.hops,
                tickets=max(1, copy.mid_rank),
            ),
        )
