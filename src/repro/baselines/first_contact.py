"""First contact routing: single copy, handed to the first new contact.

The message performs a random walk over the contact graph — one copy in
the network at any time, handed off whenever a new contact appears (or
directly to the destination when met).  Low storage like direct
delivery, but with relay mobility working for it.  Used as an extension
baseline in the ablation benches.
"""

from __future__ import annotations

from repro.baselines.contact import ContactProtocol
from repro.graphs.udg import NodeId
from repro.sim.messages import Frame, FrameKind, MessageCopy, data_frame


class FirstContactProtocol(ContactProtocol):
    """One node's first-contact instance."""

    name = "first_contact"

    def __init__(self, buffer_limit: int | None = None):
        super().__init__(buffer_limit=buffer_limit)

    def on_tick_with_neighbors(self, neighbors: set[NodeId]) -> None:
        assert self.api is not None
        for uid in list(self.buffer.keys()):
            entry = self.held(uid)
            if entry is None:
                continue
            target: NodeId | None
            if entry.message.dest in neighbors:
                target = entry.message.dest
            else:
                # Deterministic pick among current neighbours.
                target = min(neighbors, key=repr) if neighbors else None
            if target is None:
                continue
            copy = MessageCopy(
                message=entry.message, branch="first_contact", hops=entry.hops
            )
            if self.api.send(data_frame(self.api.node_id, target, copy)):
                self.buffer.pop(uid)

    def on_frame(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.DATA:
            return
        copy: MessageCopy = frame.payload
        copy = copy.hopped()
        if self.deliver_if_mine(copy):
            return
        self.hold(copy.message, hops=copy.hops)
