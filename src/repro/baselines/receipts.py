"""Epidemic routing with delivery receipts (paper Section 1 discussion).

The paper's main criticism of epidemic routing is that "the messages
are never cleared", and it cites Harras & Almeroth's receipt schemes as
the known fix:

- **active receipts**: once a message reaches its destination, a
  receipt for it propagates epidemically; every node holding the
  message deletes it and remembers the receipt so it never re-accepts
  the message.
- **passive receipts**: receipts are not pushed; a node only learns a
  message is delivered when it offers that message to someone who
  already holds a receipt for it, who then responds with the receipt.

This module implements both on top of :class:`EpidemicProtocol`.
Receipts ride the existing summary exchange: the summary payload
becomes ``(message_uids, receipt_uids)`` (active mode) so no extra
frames are needed on the happy path; passive mode answers offending
summaries with a RECEIPT frame.

The paper's open question — "how to stop the broadcasting of the
receipt messages is another question" — is resolved here the standard
way: receipts are fixed-size ids (8 bytes in the frame model), so a
node simply remembers them for the rest of the run; the storage they
displace is three orders of magnitude larger.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.baselines.epidemic import EpidemicConfig, EpidemicProtocol
from repro.graphs.udg import NodeId
from repro.sim.messages import (
    Frame,
    FrameKind,
    ID_BYTES,
    MessageCopy,
)


class ReceiptMode(enum.Enum):
    """How delivery receipts propagate."""

    ACTIVE = "active"
    PASSIVE = "passive"


@dataclass(frozen=True)
class ReceiptEpidemicConfig(EpidemicConfig):
    """Epidemic config plus the receipt mode."""

    receipt_mode: ReceiptMode = ReceiptMode.ACTIVE


def _summary_payload(uids: frozenset[int], receipts: frozenset[int]):
    return (uids, receipts)


class ReceiptEpidemicProtocol(EpidemicProtocol):
    """Epidemic routing that clears delivered messages via receipts."""

    name = "epidemic_receipts"

    def __init__(self, config: ReceiptEpidemicConfig | None = None):
        cfg = config if config is not None else ReceiptEpidemicConfig()
        super().__init__(cfg)
        self.receipt_config = cfg
        self.receipts: set[int] = set()
        self.messages_cleared = 0
        self.receipt_frames_sent = 0

    # -- receipt bookkeeping ------------------------------------------------

    def _learn_receipt(self, uid: int) -> None:
        if uid in self.receipts:
            return
        self.receipts.add(uid)
        if self.buffer.pop(uid) is not None:
            self.messages_cleared += 1

    def _learn_receipts(self, uids) -> None:
        for uid in uids:
            self._learn_receipt(uid)

    # -- summary exchange (overridden to carry receipts) ---------------------

    def _maybe_exchange(self, peer: NodeId) -> None:
        assert self.api is not None
        now = self.api.now()
        last = self._last_exchange.get(peer)
        if last is not None and now - last < self.config.anti_entropy_interval:
            return
        self._last_exchange[peer] = now
        receipts = (
            frozenset(self.receipts)
            if self.receipt_config.receipt_mode is ReceiptMode.ACTIVE
            else frozenset()
        )
        payload = _summary_payload(self.buffer_uids(), receipts)
        size = max(ID_BYTES, ID_BYTES * (len(payload[0]) + len(payload[1])))
        frame = Frame(
            kind=FrameKind.SUMMARY,
            sender=self.api.node_id,
            receiver=peer,
            payload=payload,
            size_bytes=size,
        )
        if self.api.send(frame):
            self.summaries_sent += 1

    def _on_summary(self, frame: Frame) -> None:
        assert self.api is not None
        theirs, their_receipts = frame.payload
        self._learn_receipts(their_receipts)

        if self.receipt_config.receipt_mode is ReceiptMode.PASSIVE:
            # Passive: tell the peer about messages it is still
            # carrying that we know are delivered.
            stale = sorted(theirs & self.receipts)
            if stale:
                receipt = Frame(
                    kind=FrameKind.RECEIPT,
                    sender=self.api.node_id,
                    receiver=frame.sender,
                    payload=tuple(stale),
                    size_bytes=max(ID_BYTES, ID_BYTES * len(stale)),
                )
                if self.api.send(receipt):
                    self.receipt_frames_sent += 1

        missing = sorted(theirs - self.buffer_uids() - self.receipts)
        if not missing:
            return
        if self.config.request_batch is not None:
            missing = missing[: self.config.request_batch]
        from repro.sim.messages import request_frame

        if self.api.send(
            request_frame(self.api.node_id, frame.sender, tuple(missing))
        ):
            self.requests_sent += 1

    # -- data and receipt frames ----------------------------------------------

    def _on_data(self, frame: Frame) -> None:
        copy: MessageCopy = frame.payload
        copy = copy.hopped()
        if copy.message.uid in self.receipts:
            return  # already known delivered: do not re-buffer
        if self.deliver_if_mine(copy):
            # Destination: mint the receipt instead of buffering.
            self._learn_receipt(copy.message.uid)
            return
        if copy.message.uid not in self.buffer:
            self.hold(copy.message, hops=copy.hops)

    def on_frame(self, frame: Frame) -> None:
        if frame.kind is FrameKind.RECEIPT:
            self._learn_receipts(frame.payload)
            return
        super().on_frame(frame)
