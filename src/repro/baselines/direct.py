"""Direct delivery: the source carries its message to the destination.

No relaying at all — a message moves only when its source meets its
destination.  This is the floor of the DTN design space (exactly one
transmission per delivery, minimal storage, unbounded delay) and a
useful sanity anchor for the benches: every routing protocol must beat
its latency and lose to its overhead.
"""

from __future__ import annotations

from repro.baselines.contact import ContactProtocol
from repro.graphs.udg import NodeId
from repro.sim.messages import Frame, FrameKind, MessageCopy, data_frame


class DirectDeliveryProtocol(ContactProtocol):
    """One node's direct-delivery instance."""

    name = "direct"

    def __init__(self, buffer_limit: int | None = None):
        super().__init__(buffer_limit=buffer_limit)

    def on_tick_with_neighbors(self, neighbors: set[NodeId]) -> None:
        assert self.api is not None
        for uid in list(self.buffer.keys()):
            entry = self.held(uid)
            if entry is None or entry.message.dest not in neighbors:
                continue
            copy = MessageCopy(
                message=entry.message, branch="direct", hops=entry.hops
            )
            if self.api.send(
                data_frame(self.api.node_id, entry.message.dest, copy)
            ):
                self.buffer.pop(uid)

    def on_frame(self, frame: Frame) -> None:
        if frame.kind is not FrameKind.DATA:
            return
        copy: MessageCopy = frame.payload
        self.deliver_if_mine(copy.hopped())
