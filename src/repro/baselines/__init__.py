"""Baseline DTN routing protocols and the protocol registry.

- :mod:`repro.baselines.epidemic` — Vahdat & Becker's epidemic routing,
  the benchmark the paper compares GLR against everywhere.
- :mod:`repro.baselines.direct` — direct delivery (source holds until it
  meets the destination): the lower envelope on overhead.
- :mod:`repro.baselines.first_contact` — single-copy random hand-off.
- :mod:`repro.baselines.spray_and_wait` — Spyropoulos et al.'s bounded-
  copy flooding; a natural midpoint between GLR's controlled copies and
  epidemic's unbounded ones (extension beyond the paper).
- :mod:`repro.baselines.one_hop` — one-hop-information geographic
  routing (arXiv 1602.08461): single-copy greedy over beaconed
  neighbour positions, carry otherwise.
- :mod:`repro.baselines.registry` — the string-keyed protocol registry
  every experiment driver constructs protocols through.
"""

from repro.baselines.direct import DirectDeliveryProtocol
from repro.baselines.epidemic import EpidemicConfig, EpidemicProtocol
from repro.baselines.first_contact import FirstContactProtocol
from repro.baselines.one_hop import OneHopConfig, OneHopProtocol
from repro.baselines.receipts import (
    ReceiptEpidemicConfig,
    ReceiptEpidemicProtocol,
    ReceiptMode,
)
from repro.baselines.registry import (
    ProtocolEntry,
    available_protocols,
    protocol_entry,
    protocol_factory,
    register_protocol,
    resolve_protocol,
)
from repro.baselines.spray_and_wait import (
    SprayAndWaitConfig,
    SprayAndWaitProtocol,
)

__all__ = [
    "DirectDeliveryProtocol",
    "EpidemicConfig",
    "EpidemicProtocol",
    "FirstContactProtocol",
    "OneHopConfig",
    "OneHopProtocol",
    "ProtocolEntry",
    "ReceiptEpidemicConfig",
    "ReceiptEpidemicProtocol",
    "ReceiptMode",
    "SprayAndWaitConfig",
    "SprayAndWaitProtocol",
    "available_protocols",
    "protocol_entry",
    "protocol_factory",
    "register_protocol",
    "resolve_protocol",
]
