"""Baseline DTN routing protocols.

- :mod:`repro.baselines.epidemic` — Vahdat & Becker's epidemic routing,
  the benchmark the paper compares GLR against everywhere.
- :mod:`repro.baselines.direct` — direct delivery (source holds until it
  meets the destination): the lower envelope on overhead.
- :mod:`repro.baselines.first_contact` — single-copy random hand-off.
- :mod:`repro.baselines.spray_and_wait` — Spyropoulos et al.'s bounded-
  copy flooding; a natural midpoint between GLR's controlled copies and
  epidemic's unbounded ones (extension beyond the paper).
"""

from repro.baselines.direct import DirectDeliveryProtocol
from repro.baselines.epidemic import EpidemicConfig, EpidemicProtocol
from repro.baselines.first_contact import FirstContactProtocol
from repro.baselines.receipts import (
    ReceiptEpidemicConfig,
    ReceiptEpidemicProtocol,
    ReceiptMode,
)
from repro.baselines.spray_and_wait import (
    SprayAndWaitConfig,
    SprayAndWaitProtocol,
)

__all__ = [
    "DirectDeliveryProtocol",
    "EpidemicConfig",
    "EpidemicProtocol",
    "FirstContactProtocol",
    "ReceiptEpidemicConfig",
    "ReceiptEpidemicProtocol",
    "ReceiptMode",
    "SprayAndWaitConfig",
    "SprayAndWaitProtocol",
]
