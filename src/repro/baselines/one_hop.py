"""One-hop-information geographic DTN routing (arXiv 1602.08461).

The protocol uses only what a node can learn from its one-hop
neighbourhood: beaconed neighbour positions plus the destination
location carried in the packet header.  Each tick, every buffered
message is handed to the neighbour geographically closest to the
believed destination — but only when that neighbour is strictly closer
than the carrier itself (greedy progress).  With no closer neighbour
the node simply carries the message (store-carry-forward); mobility is
the recovery mechanism, so there is no face routing, no trees, and no
multi-copy spraying.

This sits between ``direct`` (never relays) and GLR (plans on the
LDTG): a single-copy geographic protocol whose routing state is
entirely local.  Destination knowledge follows the same convention as
GLR's default ``SOURCE`` mode — the source stamps the true destination
location at creation time, and relays refresh the belief from their own
location tables when they hold something fresher (location diffusion
teaches them via beacons and received packets).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.contact import ContactProtocol
from repro.geometry.primitives import Point, distance
from repro.graphs.udg import NodeId
from repro.sim.messages import Frame, FrameKind, Message, MessageCopy, data_frame
from repro.sim.neighbors import LocationRecord


@dataclass(frozen=True)
class OneHopConfig:
    """Tunables of the one-hop-information protocol.

    Attributes:
        tick_interval: forwarding-decision period in seconds.
        buffer_limit: per-node buffer capacity in messages
            (None = unlimited).
        progress_margin_m: a neighbour must be at least this many metres
            closer to the destination to receive the message (drift
            hysteresis, same role as GLR's progress margin).
    """

    tick_interval: float = 1.0
    buffer_limit: int | None = None
    progress_margin_m: float = 0.0

    def __post_init__(self) -> None:
        if self.tick_interval <= 0:
            raise ValueError("tick interval must be positive")
        if self.buffer_limit is not None and self.buffer_limit < 1:
            raise ValueError("buffer limit must be >= 1")
        if self.progress_margin_m < 0:
            raise ValueError("progress margin must be non-negative")


class OneHopProtocol(ContactProtocol):
    """One node's one-hop-information instance."""

    name = "one_hop"

    def __init__(self, config: OneHopConfig | None = None):
        self.config = config if config is not None else OneHopConfig()
        super().__init__(
            buffer_limit=self.config.buffer_limit,
            tick_interval=self.config.tick_interval,
        )
        #: Believed destination location per buffered uid.
        self._beliefs: dict[int, tuple[Point, float]] = {}
        # Diagnostics exposed for tests and benches.
        self.greedy_forwards = 0
        self.direct_deliveries = 0

    # -- traffic ---------------------------------------------------------

    def on_message_created(self, message: Message) -> None:
        assert self.api is not None
        self.hold(message, hops=0)
        # Source-knows-destination convention (GLR LocationMode.SOURCE).
        self._beliefs[message.uid] = (
            self.api.oracle_position_of(message.dest),
            self.api.now(),
        )

    def on_frame(self, frame: Frame) -> None:
        assert self.api is not None
        if frame.kind is not FrameKind.DATA:
            return
        copy: MessageCopy = frame.payload
        copy = copy.hopped()
        if copy.dest_location is not None and copy.dest_location_time > float(
            "-inf"
        ):
            # Location diffusion: the packet teaches the relay.
            self.api.learn_location(
                copy.message.dest,
                LocationRecord(copy.dest_location, copy.dest_location_time),
            )
        if self.deliver_if_mine(copy):
            return
        self.hold(copy.message, hops=copy.hops)
        if copy.dest_location is not None:
            self._beliefs[copy.message.uid] = (
                copy.dest_location,
                copy.dest_location_time,
            )

    # -- forwarding ------------------------------------------------------

    def on_tick_with_neighbors(self, neighbors: set[NodeId]) -> None:
        assert self.api is not None
        positions = self.api.neighbor_positions()
        my_pos = self.api.position()
        for uid in list(self.buffer.keys()):
            entry = self.held(uid)
            if entry is None:
                continue
            dest = entry.message.dest
            if dest in neighbors:
                if self._hand_off(uid, dest):
                    self.direct_deliveries += 1
                continue
            belief = self._refreshed_belief(uid, dest)
            if belief is None:
                continue
            dest_pos, _ = belief
            best: NodeId | None = None
            best_d = distance(my_pos, dest_pos) - self.config.progress_margin_m
            for nbr in sorted(neighbors, key=repr):
                pos = positions.get(nbr)
                if pos is None:
                    continue
                d = distance(pos, dest_pos)
                if d < best_d:
                    best_d = d
                    best = nbr
            if best is not None and self._hand_off(uid, best):
                self.greedy_forwards += 1
        # Buffer evictions (FIFO when full) leave belief entries behind;
        # prune so the side table cannot outgrow the buffer.
        if len(self._beliefs) > len(self.buffer):
            held = set(self.buffer.keys())
            self._beliefs = {
                uid: b for uid, b in self._beliefs.items() if uid in held
            }

    def _refreshed_belief(
        self, uid: int, dest: NodeId
    ) -> tuple[Point, float] | None:
        assert self.api is not None
        belief = self._beliefs.get(uid)
        record = self.api.location_of(dest)
        if record is not None and (
            belief is None or record.timestamp > belief[1]
        ):
            belief = (record.position, record.timestamp)
            self._beliefs[uid] = belief
        return belief

    def _hand_off(self, uid: int, target: NodeId) -> bool:
        """Send the single copy to ``target``; drop it locally on success."""
        assert self.api is not None
        entry = self.held(uid)
        if entry is None:
            return False
        belief = self._beliefs.get(uid)
        copy = MessageCopy(
            message=entry.message,
            branch="one_hop",
            hops=entry.hops,
            dest_location=belief[0] if belief is not None else None,
            dest_location_time=belief[1] if belief is not None else float("-inf"),
        )
        if not self.api.send(data_frame(self.api.node_id, target, copy)):
            return False
        self.buffer.pop(uid)
        self._beliefs.pop(uid, None)
        return True
