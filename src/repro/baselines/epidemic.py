"""Epidemic routing (Vahdat & Becker) — the paper's benchmark.

On contact, two nodes exchange **summary vectors** (the ids of the
messages they hold); each then requests the messages it lacks, and the
peer streams them over the MAC.  With unbounded buffers and bandwidth
this delivers everything deliverable in minimal time, which is exactly
why the paper uses it as the unbeatable-baseline reference — and why
its weaknesses (contention under load, unbounded storage because
"messages are never cleared") are what GLR attacks.

Fidelity notes:

- Buffers are FIFO ("When storage is limited and the storage space is
  fully occupied, old messages are dropped when new messages come in").
- Anti-entropy repeats while a contact persists (new messages keep
  being generated), throttled by ``anti_entropy_interval``.
- Requests are capped per round (``request_batch``) so a node does not
  dump its entire buffer diff into the transmit queue at once; the
  remainder is fetched on subsequent anti-entropy rounds.  The Table 1
  queue limit (150 frames) would otherwise silently drop the tail —
  real implementations window transfers the same way.
- The destination keeps delivered messages in its buffer (its summary
  vector advertises them, which is epidemic's implicit duplicate
  suppression), and nothing is ever cleared — matching the paper's
  storage accounting where epidemic storage ≈ messages in transit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.contact import ContactProtocol
from repro.graphs.udg import NodeId
from repro.sim.messages import (
    Frame,
    FrameKind,
    MessageCopy,
    data_frame,
    request_frame,
    summary_frame,
)


@dataclass(frozen=True)
class EpidemicConfig:
    """Epidemic routing parameters.

    Attributes:
        buffer_limit: per-node buffer capacity in messages (None =
            unlimited; Figure 7 sweeps this).
        anti_entropy_interval: minimum seconds between summary exchanges
            with the same peer while in continuous contact.
        request_batch: maximum messages requested per exchange round
            (None = request everything missing, Vahdat's actual
            protocol; the link-layer queue limit then drops the excess,
            which is precisely the contention mechanism the paper blames
            for epidemic's slowdown under load).
        tick_interval: contact-detection cadence.
    """

    buffer_limit: int | None = None
    anti_entropy_interval: float = 4.0
    request_batch: int | None = None
    tick_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.buffer_limit is not None and self.buffer_limit < 1:
            raise ValueError("buffer limit must be >= 1")
        if self.anti_entropy_interval <= 0:
            raise ValueError("anti-entropy interval must be positive")
        if self.request_batch is not None and self.request_batch < 1:
            raise ValueError("request batch must be >= 1 (or None)")
        if self.tick_interval <= 0:
            raise ValueError("tick interval must be positive")


class EpidemicProtocol(ContactProtocol):
    """One node's epidemic routing instance."""

    name = "epidemic"

    def __init__(self, config: EpidemicConfig | None = None):
        self.config = config if config is not None else EpidemicConfig()
        super().__init__(
            buffer_limit=self.config.buffer_limit,
            tick_interval=self.config.tick_interval,
        )
        self._last_exchange: dict[NodeId, float] = {}
        # Diagnostics for tests/benches.
        self.summaries_sent = 0
        self.requests_sent = 0
        self.data_sent = 0

    # -- contact handling ---------------------------------------------------

    def on_contact(self, peer: NodeId) -> None:
        self._maybe_exchange(peer)

    def on_tick_with_neighbors(self, neighbors: set[NodeId]) -> None:
        for peer in sorted(neighbors, key=repr):
            self._maybe_exchange(peer)

    def _maybe_exchange(self, peer: NodeId) -> None:
        assert self.api is not None
        now = self.api.now()
        last = self._last_exchange.get(peer)
        if last is not None and now - last < self.config.anti_entropy_interval:
            return
        self._last_exchange[peer] = now
        frame = summary_frame(self.api.node_id, peer, self.buffer_uids())
        if self.api.send(frame):
            self.summaries_sent += 1

    # -- frame handling -------------------------------------------------------

    def on_frame(self, frame: Frame) -> None:
        assert self.api is not None
        if frame.kind is FrameKind.SUMMARY:
            self._on_summary(frame)
        elif frame.kind is FrameKind.REQUEST:
            self._on_request(frame)
        elif frame.kind is FrameKind.DATA:
            self._on_data(frame)

    def _on_summary(self, frame: Frame) -> None:
        assert self.api is not None
        theirs: frozenset[int] = frame.payload
        missing = sorted(theirs - self.buffer_uids())
        if not missing:
            return
        if self.config.request_batch is not None:
            missing = missing[: self.config.request_batch]
        batch = tuple(missing)
        if self.api.send(request_frame(self.api.node_id, frame.sender, batch)):
            self.requests_sent += 1

    def _on_request(self, frame: Frame) -> None:
        assert self.api is not None
        wanted: tuple[int, ...] = frame.payload
        for uid in wanted:
            entry = self.held(uid)
            if entry is None:
                continue  # evicted since the summary was sent
            copy = MessageCopy(
                message=entry.message, branch="epidemic", hops=entry.hops
            )
            if self.api.send(
                data_frame(self.api.node_id, frame.sender, copy)
            ):
                self.data_sent += 1

    def _on_data(self, frame: Frame) -> None:
        copy: MessageCopy = frame.payload
        copy = copy.hopped()
        self.deliver_if_mine(copy)
        # Buffer regardless of delivery: the destination's summary vector
        # advertising the message is what stops further copies.
        if copy.message.uid not in self.buffer:
            self.hold(copy.message, hops=copy.hops)
