"""String-keyed protocol registry: one build path for every protocol.

The mobility registry (:mod:`repro.mobility.registry`) decoupled
*describing* a movement pattern from *constructing* it; this module
does the same for routing protocols.  A registry entry names:

- the **builder** turning a config (plus the campaign-level
  ``buffer_limit`` fallback) into a per-node protocol instance;
- the **config dataclass** the protocol is parameterised by (``None``
  for parameterless protocols such as ``direct``);
- which config field the shared ``buffer_limit`` falls back into
  (GLR calls it ``storage_limit``; the contact protocols call it
  ``buffer_limit``) — hoisted here so the fallback is implemented
  exactly once instead of per ``if protocol ==`` branch;
- which config fields are **not sweepable** through the declarative
  :class:`~repro.experiments.protocols.ProtocolConfig` axis (enum-typed
  fields that would not canonicalise into cache keys).

Built-in protocols (aliases in parentheses)::

    glr                     GLRConfig        (the paper's protocol)
    epidemic                EpidemicConfig
    epidemic_receipts       ReceiptEpidemicConfig
    spray_and_wait (snw)    SprayAndWaitConfig
    one_hop (onehop)        OneHopConfig     (arXiv 1602.08461)
    direct                  —
    first_contact           —

Names are case-insensitive and hyphen/underscore-agnostic.  Third-party
protocols register with :func:`register_protocol`; everything downstream
— ``available_protocols()``, the declarative sweep axis, the CLI
``--protocols`` choices, the runner's factory — derives from the
registry, so a registered protocol is immediately sweepable.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.direct import DirectDeliveryProtocol
from repro.baselines.epidemic import EpidemicConfig, EpidemicProtocol
from repro.baselines.first_contact import FirstContactProtocol
from repro.baselines.one_hop import OneHopConfig, OneHopProtocol
from repro.baselines.receipts import (
    ReceiptEpidemicConfig,
    ReceiptEpidemicProtocol,
)
from repro.baselines.spray_and_wait import (
    SprayAndWaitConfig,
    SprayAndWaitProtocol,
)
from repro.core.protocol import GLRConfig, GLRProtocol
from repro.params import normalize_name
from repro.sim.world import Protocol

_normalize = normalize_name

#: A builder maps (config, buffer_limit) to one node's protocol
#: instance.  ``config`` is the entry's resolved config dataclass (with
#: the buffer fallback already applied) or ``None`` for parameterless
#: protocols, which receive ``buffer_limit`` directly instead.
ProtocolBuilder = Callable[[object, "int | None"], Protocol]


@dataclass(frozen=True)
class ProtocolEntry:
    """How one registered protocol is validated and constructed."""

    name: str
    builder: ProtocolBuilder
    config_class: type | None = None
    #: Config field the shared ``buffer_limit`` falls back into when the
    #: config leaves it unset (None = the builder takes ``buffer_limit``
    #: directly, as the parameterless contact protocols do).
    buffer_field: str | None = None
    non_sweepable: frozenset[str] = frozenset()


_REGISTRY: dict[str, ProtocolEntry] = {}
_ALIASES: dict[str, str] = {}


def register_protocol(
    name: str,
    builder: ProtocolBuilder,
    config_class: type | None = None,
    buffer_field: str | None = None,
    non_sweepable: Sequence[str] = (),
    aliases: Sequence[str] = (),
) -> None:
    """Register a protocol under ``name`` (and optional aliases).

    Re-registering an existing name replaces it, so tests and user code
    can shadow built-ins (direct names win over aliases).  Registrations
    live in this process's registry only; campaign worker processes
    inherit them on fork-based platforms — the same contract as
    :func:`repro.mobility.registry.register_model`.
    """
    if config_class is None and buffer_field is not None:
        raise ValueError("buffer_field requires a config_class")
    if buffer_field is not None and buffer_field not in {
        f.name for f in dataclasses.fields(config_class)
    }:
        raise ValueError(
            f"config class {config_class.__name__} has no field "
            f"{buffer_field!r}"
        )
    canonical = _normalize(name)
    _REGISTRY[canonical] = ProtocolEntry(
        name=canonical,
        builder=builder,
        config_class=config_class,
        buffer_field=buffer_field,
        non_sweepable=frozenset(non_sweepable),
    )
    for alias in aliases:
        _ALIASES[_normalize(alias)] = canonical


def available_protocols() -> list[str]:
    """Canonical names of every registered protocol."""
    return sorted(_REGISTRY)


def protocol_aliases(name: str) -> list[str]:
    """Aliases resolving to ``name``, sorted (empty for most protocols).

    The inverse view of the alias table, for documentation and
    error-message surfaces; raises :class:`ValueError` for an unknown
    protocol, like :func:`resolve_protocol`.
    """
    canonical = resolve_protocol(name)
    return sorted(
        alias for alias, target in _ALIASES.items() if target == canonical
    )


def resolve_protocol(name: str) -> str:
    """Canonical registry name for ``name``; raises for unknown protocols.

    Directly registered names win over aliases, matching the mobility
    registry's shadowing rules.
    """
    normalized = _normalize(name)
    if normalized not in _REGISTRY:
        normalized = _ALIASES.get(normalized, normalized)
    if normalized not in _REGISTRY:
        raise ValueError(
            f"unknown protocol {name!r}; choose from {available_protocols()}"
        )
    return normalized


def protocol_entry(name: str) -> ProtocolEntry:
    """The registry entry for ``name`` (resolving aliases)."""
    return _REGISTRY[resolve_protocol(name)]


def resolve_config(
    protocol: str,
    config: object | None = None,
    buffer_limit: int | None = None,
) -> object | None:
    """The concrete config instance a run of ``protocol`` will use.

    ``None`` config means the protocol's defaults.  The shared
    ``buffer_limit`` fallback lives here — once, for every protocol:
    when the config's buffer field is unset, the campaign-level limit
    fills it in; an explicit config value always wins.  Returns ``None``
    for parameterless protocols (whose builders take ``buffer_limit``
    directly).
    """
    entry = protocol_entry(protocol)
    if entry.config_class is None:
        if config is not None:
            raise ValueError(
                f"protocol {entry.name!r} takes no config, got "
                f"{type(config).__name__}"
            )
        return None
    if config is None:
        config = entry.config_class()
    elif not isinstance(config, entry.config_class):
        raise ValueError(
            f"protocol {entry.name!r} expects a "
            f"{entry.config_class.__name__}, got {type(config).__name__}"
        )
    if (
        entry.buffer_field is not None
        and buffer_limit is not None
        and getattr(config, entry.buffer_field) is None
    ):
        config = dataclasses.replace(
            config, **{entry.buffer_field: buffer_limit}
        )
    return config


def protocol_factory(
    protocol: str,
    config: object | None = None,
    buffer_limit: int | None = None,
) -> Callable[[object], Protocol]:
    """A per-node factory constructing ``protocol`` instances.

    The config is resolved (defaults, type check, buffer fallback) once
    up front; the returned factory then builds one instance per node, as
    :class:`repro.sim.world.World` requires.
    """
    entry = protocol_entry(protocol)
    resolved = resolve_config(protocol, config, buffer_limit)
    return lambda node: entry.builder(resolved, buffer_limit)


# ---------------------------------------------------------------------------
# Built-in protocols
# ---------------------------------------------------------------------------

register_protocol(
    "glr",
    lambda config, buffer_limit: GLRProtocol(config),
    config_class=GLRConfig,
    buffer_field="storage_limit",
    non_sweepable=("location_mode",),
)
register_protocol(
    "epidemic",
    lambda config, buffer_limit: EpidemicProtocol(config),
    config_class=EpidemicConfig,
    buffer_field="buffer_limit",
)
register_protocol(
    "epidemic_receipts",
    lambda config, buffer_limit: ReceiptEpidemicProtocol(config),
    config_class=ReceiptEpidemicConfig,
    buffer_field="buffer_limit",
    non_sweepable=("receipt_mode",),
)
register_protocol(
    "spray_and_wait",
    lambda config, buffer_limit: SprayAndWaitProtocol(config),
    config_class=SprayAndWaitConfig,
    buffer_field="buffer_limit",
    aliases=("snw", "spray"),
)
register_protocol(
    "one_hop",
    lambda config, buffer_limit: OneHopProtocol(config),
    config_class=OneHopConfig,
    buffer_field="buffer_limit",
    aliases=("onehop", "one_hop_information"),
)
register_protocol(
    "direct",
    lambda config, buffer_limit: DirectDeliveryProtocol(
        buffer_limit=buffer_limit
    ),
)
register_protocol(
    "first_contact",
    lambda config, buffer_limit: FirstContactProtocol(
        buffer_limit=buffer_limit
    ),
)
