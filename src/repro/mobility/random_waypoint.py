"""Random waypoint mobility, computed analytically.

Each node repeats: pick a uniform destination inside the region and a
uniform speed in ``[min_speed, max_speed]``, travel there in a straight
line, pause for ``pause_time``, repeat.  The paper's Table 1 settings
are speed uniform in 0–20 m/s with pause time 0 s.

Trajectories are piecewise linear, so instead of ticking a clock the
model materializes *legs* — ``(t_start, t_end, p_start, p_end)`` — lazily
per node and answers position queries by binary search.  Query cost is
O(log legs); leg lists extend on demand to cover any query time.

A strictly positive floor is applied to the minimum speed (default
0.1 m/s).  This sidesteps the well-known RWP pathology where a speed
drawn near zero pins a node on one leg for the entire simulation (with
speed exactly 0 the leg never ends); NS-2's setdest applies the same
guard.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import MobilityModel, Region
from repro.seeding import derive_rng


@dataclass(frozen=True)
class Leg:
    """One straight-line segment (or pause) of a trajectory."""

    t_start: float
    t_end: float
    p_start: Point
    p_end: Point

    def position_at(self, t: float) -> Point:
        """Interpolate along the leg; ``t`` must be within the leg."""
        if self.t_end <= self.t_start:
            return self.p_start
        alpha = (t - self.t_start) / (self.t_end - self.t_start)
        alpha = min(1.0, max(0.0, alpha))
        return Point(
            self.p_start.x + alpha * (self.p_end.x - self.p_start.x),
            self.p_start.y + alpha * (self.p_end.y - self.p_start.y),
        )


class RandomWaypointMobility(MobilityModel):
    """The random waypoint model (paper Table 1 motion pattern)."""

    #: Guard against the zero-speed pathology (see module docstring).
    SPEED_FLOOR = 0.1

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        region: Region,
        seed: int,
        min_speed: float = 0.0,
        max_speed: float = 20.0,
        pause_time: float = 0.0,
    ):
        super().__init__(node_ids, region)
        if max_speed <= 0:
            raise ValueError("max speed must be positive")
        if min_speed < 0 or min_speed > max_speed:
            raise ValueError("need 0 <= min_speed <= max_speed")
        if pause_time < 0:
            raise ValueError("pause time must be non-negative")
        self.min_speed = max(min_speed, self.SPEED_FLOOR)
        self.max_speed = max(max_speed, self.min_speed)
        self.pause_time = pause_time
        self._seed = seed
        self._rngs: dict[NodeId, random.Random] = {}
        self._legs: dict[NodeId, list[Leg]] = {}
        self._leg_ends: dict[NodeId, list[float]] = {}
        for i, node in enumerate(self.node_ids):
            rng = derive_rng(seed, i, "rwp")
            self._rngs[node] = rng
            start = Point(
                rng.uniform(0.0, region.width),
                rng.uniform(0.0, region.height),
            )
            # Seed the leg list with a zero-length leg so extension logic
            # always has a previous endpoint to continue from.
            self._legs[node] = [Leg(0.0, 0.0, start, start)]
            self._leg_ends[node] = [0.0]

    def _extend(self, node: NodeId, until: float) -> None:
        """Materialize legs for ``node`` to cover time ``until``."""
        legs = self._legs[node]
        ends = self._leg_ends[node]
        rng = self._rngs[node]
        while ends[-1] < until:
            last = legs[-1]
            origin = last.p_end
            target = Point(
                rng.uniform(0.0, self.region.width),
                rng.uniform(0.0, self.region.height),
            )
            speed = rng.uniform(self.min_speed, self.max_speed)
            travel_time = origin.distance_to(target) / speed
            t0 = ends[-1]
            t1 = t0 + travel_time
            legs.append(Leg(t0, t1, origin, target))
            ends.append(t1)
            if self.pause_time > 0:
                legs.append(Leg(t1, t1 + self.pause_time, target, target))
                ends.append(t1 + self.pause_time)

    def position(self, node: NodeId, t: float) -> Point:
        self.validate_time(t)
        if node not in self._legs:
            raise KeyError(f"unknown node {node!r}")
        self._extend(node, t)
        ends = self._leg_ends[node]
        index = bisect.bisect_left(ends, t)
        index = min(index, len(ends) - 1)
        return self._legs[node][index].position_at(t)

    def waypoints_until(self, node: NodeId, until: float) -> list[Leg]:
        """Materialized legs covering ``[0, until]`` — used by trace export."""
        self._extend(node, until)
        return [leg for leg in self._legs[node] if leg.t_start <= until]
