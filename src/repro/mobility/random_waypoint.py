"""Random waypoint mobility, computed analytically.

Each node repeats: pick a uniform destination inside the region and a
uniform speed in ``[min_speed, max_speed]``, travel there in a straight
line, pause for ``pause_time``, repeat.  The paper's Table 1 settings
are speed uniform in 0–20 m/s with pause time 0 s.

Trajectories ride on the shared analytic-legs machinery
(:mod:`repro.mobility.legs`): legs materialize lazily per node and
position queries bisect over leg end times.

A strictly positive floor is applied to the minimum speed (default
0.1 m/s).  This sidesteps the well-known RWP pathology where a speed
drawn near zero pins a node on one leg for the entire simulation (with
speed exactly 0 the leg never ends); NS-2's setdest applies the same
guard.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import Region
from repro.mobility.legs import Leg, LegMobility
from repro.seeding import derive_rng

__all__ = ["Leg", "RandomWaypointMobility"]


class RandomWaypointMobility(LegMobility):
    """The random waypoint model (paper Table 1 motion pattern)."""

    #: Guard against the zero-speed pathology (see module docstring).
    SPEED_FLOOR = 0.1

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        region: Region,
        seed: int,
        min_speed: float = 0.0,
        max_speed: float = 20.0,
        pause_time: float = 0.0,
    ):
        super().__init__(node_ids, region)
        if max_speed <= 0:
            raise ValueError("max speed must be positive")
        if min_speed < 0 or min_speed > max_speed:
            raise ValueError("need 0 <= min_speed <= max_speed")
        if pause_time < 0:
            raise ValueError("pause time must be non-negative")
        self.min_speed = max(min_speed, self.SPEED_FLOOR)
        self.max_speed = max(max_speed, self.min_speed)
        self.pause_time = pause_time
        self._seed = seed
        self._rngs: dict[NodeId, random.Random] = {}
        for i, node in enumerate(self.node_ids):
            rng = derive_rng(seed, i, "rwp")
            self._rngs[node] = rng
            start = Point(
                rng.uniform(0.0, region.width),
                rng.uniform(0.0, region.height),
            )
            self._seed_legs(node, start)

    def _advance(self, node: NodeId) -> bool:
        rng = self._rngs[node]
        last = self._legs[node][-1]
        origin = last.p_end
        target = Point(
            rng.uniform(0.0, self.region.width),
            rng.uniform(0.0, self.region.height),
        )
        speed = rng.uniform(self.min_speed, self.max_speed)
        travel_time = origin.distance_to(target) / speed
        t0 = last.t_end
        t1 = t0 + travel_time
        self._append_leg(node, Leg(t0, t1, origin, target))
        if self.pause_time > 0:
            self._append_leg(node, Leg(t1, t1 + self.pause_time, target, target))
        return True
