"""Movement traces: ns-2 ``setdest`` format and trace-driven replay.

The original evaluation ran on NS-2 movement scenario files.  This
module round-trips that format so that (a) trajectories generated here
can be exported for inspection and (b) externally generated ns-2
scenarios can drive this simulator directly.

Supported statements::

    $node_(3) set X_ 150.0
    $node_(3) set Y_ 93.0
    $ns_ at 10.0 "$node_(3) setdest 250.0 100.0 5.0"

Everything else (comments, ``set Z_``, blank lines) is ignored.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import re
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import Region
from repro.mobility.legs import Leg, LegMobility

_RE_INITIAL = re.compile(
    r"\$node_\((?P<node>\d+)\)\s+set\s+(?P<axis>[XY])_\s+(?P<value>[-\d.eE+]+)"
)
_RE_SETDEST = re.compile(
    r"\$ns_\s+at\s+(?P<time>[-\d.eE+]+)\s+\"\$node_\((?P<node>\d+)\)\s+"
    r"setdest\s+(?P<x>[-\d.eE+]+)\s+(?P<y>[-\d.eE+]+)\s+(?P<speed>[-\d.eE+]+)\""
)


@dataclass
class NodeTrace:
    """Initial position plus timed ``setdest`` commands for one node."""

    initial: Point
    commands: list[tuple[float, Point, float]] = field(default_factory=list)

    def to_legs(self) -> list[Leg]:
        """Compile commands into trajectory legs.

        ns-2 semantics: a ``setdest`` issued mid-leg interrupts it — the
        node turns from wherever it currently is.  Commands are processed
        in time order.
        """
        legs: list[Leg] = [Leg(0.0, 0.0, self.initial, self.initial)]
        for at, dest, speed in sorted(self.commands, key=lambda c: c[0]):
            current = _position_on_legs(legs, at)
            last = legs[-1]
            if at < last.t_end:
                # Truncate the interrupted leg at the command time.
                legs[-1] = Leg(last.t_start, at, last.p_start, current)
            elif at > last.t_end:
                legs.append(Leg(last.t_end, at, last.p_end, last.p_end))
            if speed <= 0:
                continue
            travel = current.distance_to(dest) / speed
            legs.append(Leg(at, at + travel, current, dest))
        return legs


def _position_on_legs(legs: Sequence[Leg], t: float) -> Point:
    ends = [leg.t_end for leg in legs]
    index = bisect.bisect_left(ends, t)
    index = min(index, len(legs) - 1)
    return legs[index].position_at(t)


class TraceMobility(LegMobility):
    """Replay trajectories compiled from :class:`NodeTrace` records.

    Trajectories are finite: past the last command a node holds its
    final position forever (``_advance`` never extends).  Every leg
    endpoint must lie inside ``region`` (legs are straight, so the
    whole trajectory then does too) — a trace generated for a different
    field size fails loudly instead of silently breaking the
    stays-inside-the-region invariant every model guarantees.
    """

    #: Tolerance for endpoints sitting on the region border (the ns-2
    #: export rounds coordinates to 6 decimals).
    BORDER_TOL = 1e-6

    def __init__(self, region: Region, traces: Mapping[NodeId, NodeTrace]):
        super().__init__(list(traces), region)
        for node, trace in traces.items():
            legs = trace.to_legs()
            for leg in legs:
                for p in (leg.p_start, leg.p_end):
                    if not region.contains(p, tol=self.BORDER_TOL):
                        raise ValueError(
                            f"trace for node {node!r} leaves the "
                            f"{region.width:g}x{region.height:g} region "
                            f"at {p} (t={leg.t_start:g})"
                        )
            self._preload_legs(node, legs)


def parse_ns2_trace(path: str | Path) -> dict[NodeId, NodeTrace]:
    """Parse an ns-2 movement scenario file into per-node trace records."""
    traces: dict[NodeId, NodeTrace] = {}
    initial_coords: dict[int, dict[str, float]] = {}
    commands: dict[int, list[tuple[float, Point, float]]] = {}

    text = Path(path).read_text()
    for line in text.splitlines():
        m = _RE_INITIAL.search(line)
        if m:
            node = int(m.group("node"))
            initial_coords.setdefault(node, {})[m.group("axis")] = float(
                m.group("value")
            )
            continue
        m = _RE_SETDEST.search(line)
        if m:
            node = int(m.group("node"))
            commands.setdefault(node, []).append(
                (
                    float(m.group("time")),
                    Point(float(m.group("x")), float(m.group("y"))),
                    float(m.group("speed")),
                )
            )

    for node, coords in initial_coords.items():
        if "X" not in coords or "Y" not in coords:
            raise ValueError(f"node {node} is missing an initial coordinate")
        traces[node] = NodeTrace(
            initial=Point(coords["X"], coords["Y"]),
            commands=commands.get(node, []),
        )
    for node in commands:
        if node not in traces:
            raise ValueError(
                f"node {node} has setdest commands but no initial position"
            )
    return traces


@lru_cache(maxsize=256)
def _digest_for_stat(path: str, size: int, mtime_ns: int) -> str:
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def trace_file_digest(path: str | Path) -> str:
    """SHA-256 of a trace file's *content* (hex).

    The campaign cache keys trace-driven scenarios on this digest
    rather than the path string, so editing a trace in place
    invalidates its cached simulations while renaming or copying an
    identical file still hits.  Digests are memoised per
    ``(path, size, mtime)`` so a sweep with thousands of tasks sharing
    one trace hashes it once.
    """
    stat = os.stat(path)
    return _digest_for_stat(str(path), stat.st_size, stat.st_mtime_ns)


def load_ns2_trace(path: str | Path, region: Region) -> TraceMobility:
    """Parse an ns-2 movement scenario file into a mobility model."""
    return TraceMobility(region, parse_ns2_trace(path))


def save_ns2_trace(
    model: LegMobility,
    path: str | Path,
    until: float,
    node_order: Iterable[NodeId] | None = None,
) -> None:
    """Export any leg-based mobility model as an ns-2 movement scenario.

    Works for every model built on :class:`~repro.mobility.legs
    .LegMobility` (random waypoint, random walk, Gauss–Markov,
    Manhattan grid, trace replay).  Nodes are numbered 0..n-1 in
    ``node_order`` (default: model order).
    """
    order = list(node_order) if node_order is not None else model.node_ids
    lines: list[str] = [
        "# ns-2 movement trace exported by repro.mobility.traces",
        f"# horizon: {until} s",
    ]
    for index, node in enumerate(order):
        legs = model.waypoints_until(node, until)
        start = legs[0].p_start
        lines.append(f"$node_({index}) set X_ {start.x:.6f}")
        lines.append(f"$node_({index}) set Y_ {start.y:.6f}")
        lines.append(f"$node_({index}) set Z_ 0.000000")
        for leg in legs:
            if leg.t_end <= leg.t_start:
                continue  # pauses and the seed leg carry no setdest
            duration = leg.t_end - leg.t_start
            dist = leg.p_start.distance_to(leg.p_end)
            if dist == 0.0:
                continue
            speed = dist / duration
            lines.append(
                f'$ns_ at {leg.t_start:.6f} "$node_({index}) setdest '
                f'{leg.p_end.x:.6f} {leg.p_end.y:.6f} {speed:.6f}"'
            )
    Path(path).write_text("\n".join(lines) + "\n")
