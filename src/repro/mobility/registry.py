"""String-keyed mobility registry and declarative mobility configs.

The registry decouples *describing* a movement pattern from
*constructing* it.  A :class:`MobilityConfig` is a pure value — model
name plus scalar parameters, hashable and JSON-friendly — so scenarios
can carry it, the campaign cache can key on it, and sweep grids can
enumerate it.  :func:`build_mobility` turns a config into a live
:class:`~repro.mobility.base.MobilityModel` for a concrete node
population, region, and seed.

Built-in models (aliases in parentheses)::

    random_waypoint (rwp)   min_speed, max_speed, pause_time
    random_walk             min_speed, max_speed, epoch
    gauss_markov            mean_speed, alpha, speed_std, direction_std,
                            update_interval, max_speed, edge_margin
    rpgm (group)            n_groups, group_radius, min_speed, max_speed,
                            pause_time, member_speed
    manhattan (grid)        blocks_x, blocks_y, min_speed, max_speed,
                            turn_prob
    static                  (none)
    trace                   path  [ns-2 setdest scenario file]

Names are case-insensitive and hyphen/underscore-agnostic, so
``"gauss-markov"`` and ``"Gauss_Markov"`` resolve to the same model.
Third-party models register with :func:`register_model`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.graphs.udg import NodeId
from repro.mobility.base import MobilityModel, Region
from repro.params import ParamValue, canonicalise_params, normalize_name
from repro.mobility.gauss_markov import GaussMarkovMobility
from repro.mobility.manhattan import ManhattanGridMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.rpgm import ReferencePointGroupMobility
from repro.mobility.static import StaticMobility
from repro.mobility.traces import TraceMobility, parse_ns2_trace

_normalize = normalize_name


@dataclass(frozen=True)
class MobilityConfig:
    """A declarative movement pattern: model name plus parameters.

    ``params`` is stored as a sorted tuple of ``(name, value)`` pairs so
    equal configs hash equal regardless of construction order, and the
    campaign cache key (which canonicalises dataclasses field-by-field)
    is stable.  Use :meth:`of` for keyword construction.
    """

    model: str
    params: tuple[tuple[str, ParamValue], ...] = ()

    def __post_init__(self) -> None:
        if not self.model or not isinstance(self.model, str):
            raise ValueError("mobility model name must be a non-empty string")
        object.__setattr__(self, "model", _normalize(self.model))
        # Shared rules with ProtocolConfig (repro.params): string
        # names, scalar values, integral floats collapsed to ints so
        # numerically equal configs canonicalise to one cache key.
        items = canonicalise_params(dict(self.params))
        object.__setattr__(self, "params", tuple(sorted(items.items())))

    @classmethod
    def of(cls, model: str, **params: ParamValue) -> "MobilityConfig":
        """Keyword-style constructor: ``MobilityConfig.of("rpgm", n_groups=5)``."""
        return cls(model=model, params=tuple(params.items()))

    def params_dict(self) -> dict[str, ParamValue]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def to_json(self) -> dict:
        """JSON-ready form (inverse of :func:`as_mobility_config`)."""
        return {"model": self.model, "params": self.params_dict()}

    def __str__(self) -> str:
        if not self.params:
            return self.model
        inner = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.model}({inner})"


#: A builder maps (node_ids, region, seed, **params) to a live model.
MobilityBuilder = Callable[..., MobilityModel]

_REGISTRY: dict[str, MobilityBuilder] = {}
_ALIASES: dict[str, str] = {}


def register_model(
    name: str,
    builder: MobilityBuilder,
    aliases: Sequence[str] = (),
) -> None:
    """Register ``builder`` under ``name`` (and optional aliases).

    Re-registering an existing name replaces it, so tests and user code
    can shadow built-ins (direct names win over aliases).

    Registrations live in this process's registry only.  Campaign
    worker processes inherit them on fork-based platforms (Linux);
    under the ``spawn`` start method (macOS/Windows) workers re-import
    with built-ins only, so custom models there must either be
    registered at import time of a module the workers also import, or
    run with ``workers=1``.
    """
    canonical = _normalize(name)
    _REGISTRY[canonical] = builder
    for alias in aliases:
        _ALIASES[_normalize(alias)] = canonical


def available_models() -> list[str]:
    """Canonical names of every registered mobility model."""
    return sorted(_REGISTRY)


def resolve_model(name: str) -> str:
    """Canonical registry name for ``name``; raises for unknown models.

    Directly registered names win over aliases, so ``register_model``
    can shadow a built-in alias (e.g. registering ``"grid"`` hides the
    Manhattan alias of the same name).
    """
    normalized = _normalize(name)
    if normalized not in _REGISTRY:
        normalized = _ALIASES.get(normalized, normalized)
    if normalized not in _REGISTRY:
        raise ValueError(
            f"unknown mobility model {name!r}; choose from "
            f"{available_models()}"
        )
    return normalized


#: How many leading builder parameters the runner supplies positionally
#: (node_ids, region, seed) — see :func:`build_mobility`.
_BUILDER_POSITIONALS = 3


def validate_params(model: str, params: Mapping[str, object]) -> None:
    """Check param names against the model builder's signature.

    Catching typos (``alhpa``, ``n_group``) and missing required
    parameters at config-coercion time means a bad campaign spec fails
    at load, not mid-campaign inside a worker process.  The first
    three builder parameters are runner-supplied positionally
    (whatever their names), and builders taking ``*args``/``**kwargs``
    skip the check.
    """
    canonical = resolve_model(model)
    try:
        signature = inspect.signature(_REGISTRY[canonical])
    except (TypeError, ValueError):  # builtins/odd callables: trust them
        return
    accepted = set()
    required = set()
    for index, parameter in enumerate(signature.parameters.values()):
        if parameter.kind in (
            inspect.Parameter.VAR_KEYWORD,
            inspect.Parameter.VAR_POSITIONAL,
        ):
            return
        if index < _BUILDER_POSITIONALS:
            continue
        accepted.add(parameter.name)
        if parameter.default is inspect.Parameter.empty:
            required.add(parameter.name)
    unknown = sorted(set(params) - accepted)
    if unknown:
        raise ValueError(
            f"mobility model {canonical!r} does not accept parameters "
            f"{unknown}; choose from {sorted(accepted)}"
        )
    missing = sorted(required - set(params))
    if missing:
        raise ValueError(
            f"mobility model {canonical!r} requires parameters {missing}"
        )


def as_mobility_config(
    value: "MobilityConfig | str | Mapping | None",
) -> MobilityConfig | None:
    """Coerce user input into a validated :class:`MobilityConfig`.

    Accepts ``None`` (passed through: "use the scenario's paper-default
    RWP"), a model name string, a mapping of the form
    ``{"model": name, "params": {...}}`` (or with parameters inline
    next to ``"model"``), or an existing config.
    """
    if value is None:
        return None
    if isinstance(value, MobilityConfig):
        config = value
    elif isinstance(value, str):
        config = MobilityConfig(model=value)
    elif isinstance(value, Mapping):
        data = dict(value)
        model = data.pop("model", None)
        if model is None:
            raise ValueError("mobility mapping needs a 'model' key")
        params = data.pop("params", None)
        if params is None:
            params = data
        elif data:
            raise ValueError(
                f"unexpected mobility keys {sorted(data)} next to 'params'"
            )
        elif not isinstance(params, Mapping):
            raise ValueError(
                f"mobility 'params' must be a mapping, got "
                f"{type(params).__name__}"
            )
        config = MobilityConfig.of(str(model), **dict(params))
    else:
        raise ValueError(
            f"cannot interpret {type(value).__name__} as a mobility config"
        )
    config = MobilityConfig(
        model=resolve_model(config.model), params=config.params
    )
    validate_params(config.model, config.params_dict())
    return config


def build_mobility(
    config: MobilityConfig,
    node_ids: Sequence[NodeId],
    region: Region,
    seed: int,
) -> MobilityModel:
    """Construct the model a config describes for a concrete population."""
    canonical = resolve_model(config.model)
    builder = _REGISTRY[canonical]
    try:
        return builder(node_ids, region, seed, **config.params_dict())
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for mobility model {canonical!r}: {exc}"
        ) from exc


# ---------------------------------------------------------------------------
# Built-in builders
# ---------------------------------------------------------------------------

def _build_static(
    node_ids: Sequence[NodeId], region: Region, seed: int
) -> StaticMobility:
    return StaticMobility.uniform(node_ids, region, seed)


def _build_trace(
    node_ids: Sequence[NodeId], region: Region, seed: int, path: str
) -> TraceMobility:
    """Replay an ns-2 scenario file, restricted to the scenario's nodes.

    The file may describe more nodes than the scenario uses (the extra
    trajectories are dropped) but must cover every scenario node.  The
    campaign cache keys on the file's *content hash*
    (:func:`repro.mobility.traces.trace_file_digest`), so editing a
    trace in place invalidates cached simulations and renaming or
    copying an identical file still hits.
    """
    if not path:
        raise ValueError("trace mobility needs a 'path' parameter")
    traces = parse_ns2_trace(path)
    missing = [node for node in node_ids if node not in traces]
    if missing:
        raise ValueError(
            f"trace {path!r} has no trajectory for nodes {missing[:5]} "
            f"({len(missing)} missing; trace covers {len(traces)} nodes)"
        )
    return TraceMobility(region, {node: traces[node] for node in node_ids})


register_model("random_waypoint", RandomWaypointMobility, aliases=("rwp",))
register_model("random_walk", RandomWalkMobility)
register_model("gauss_markov", GaussMarkovMobility)
register_model(
    "rpgm", ReferencePointGroupMobility, aliases=("group", "group_mobility")
)
register_model("manhattan", ManhattanGridMobility, aliases=("grid",))
register_model("static", _build_static)
register_model("trace", _build_trace)
