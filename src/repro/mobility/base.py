"""Mobility model interface.

A mobility model owns a fixed set of node ids and answers position
queries at arbitrary (non-negative) times.  Implementations must be
deterministic functions of their constructor arguments — in particular
of their ``seed`` — so that a scenario re-run reproduces identical
trajectories.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId


@dataclass(frozen=True)
class Region:
    """An axis-aligned rectangular deployment region with origin (0, 0)."""

    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("region dimensions must be positive")

    @property
    def area(self) -> float:
        """Region area in square metres."""
        return self.width * self.height

    def contains(self, p: Point, tol: float = 1e-9) -> bool:
        """True when ``p`` lies inside the region (with tolerance)."""
        return (
            -tol <= p.x <= self.width + tol
            and -tol <= p.y <= self.height + tol
        )

    def clamp(self, p: Point) -> Point:
        """Project ``p`` onto the region."""
        return Point(
            min(max(p.x, 0.0), self.width),
            min(max(p.y, 0.0), self.height),
        )


class MobilityModel(abc.ABC):
    """Deterministic trajectory oracle for a fixed node population."""

    def __init__(self, node_ids: Sequence[NodeId], region: Region):
        if len(set(node_ids)) != len(node_ids):
            raise ValueError("node ids must be unique")
        self._node_ids = list(node_ids)
        self.region = region

    @property
    def node_ids(self) -> list[NodeId]:
        """The node population, in a stable order."""
        return list(self._node_ids)

    @abc.abstractmethod
    def position(self, node: NodeId, t: float) -> Point:
        """Position of ``node`` at time ``t`` (seconds, >= 0)."""

    def positions(self, t: float) -> dict[NodeId, Point]:
        """Positions of every node at time ``t``."""
        return {n: self.position(n, t) for n in self._node_ids}

    def positions_array(self, t: float):
        """Positions at ``t`` as an ``(N, 2)`` float64 array.

        Rows follow ``node_ids`` order.  This fallback evaluates
        per-node :meth:`position` (so any model is batch-queryable and
        trivially agrees with the scalar path); subclasses with
        analytic-leg trajectories override it with a true batch
        evaluation.  Requires numpy — only the vectorized engine calls
        it, and engine selection already guarantees numpy is present.
        """
        import numpy as np

        out = np.empty((len(self._node_ids), 2), dtype=np.float64)
        for i, node in enumerate(self._node_ids):
            p = self.position(node, t)
            out[i, 0] = p.x
            out[i, 1] = p.y
        return out

    def validate_time(self, t: float) -> None:
        """Raise ValueError for negative query times."""
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
