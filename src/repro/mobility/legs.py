"""Shared analytic-legs trajectory machinery.

Every mobility model in this package that moves nodes along piecewise
linear trajectories — random waypoint, random walk, Gauss–Markov,
Manhattan grid, ns-2 trace replay — represents a trajectory as a list
of :class:`Leg` segments and answers position queries by binary search
over leg end times.  :class:`LegMobility` owns that representation:
subclasses only implement :meth:`LegMobility._advance`, which appends
the next leg(s) of a node's trajectory on demand.

Query cost is O(log legs); leg lists extend lazily to cover any query
time, so models never tick a clock.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import MobilityModel, Region


@dataclass(frozen=True)
class Leg:
    """One straight-line segment (or pause) of a trajectory."""

    t_start: float
    t_end: float
    p_start: Point
    p_end: Point

    def position_at(self, t: float) -> Point:
        """Interpolate along the leg; ``t`` must be within the leg."""
        if self.t_end <= self.t_start:
            return self.p_start
        alpha = (t - self.t_start) / (self.t_end - self.t_start)
        alpha = min(1.0, max(0.0, alpha))
        return Point(
            self.p_start.x + alpha * (self.p_end.x - self.p_start.x),
            self.p_start.y + alpha * (self.p_end.y - self.p_start.y),
        )


def reflect(value: float, limit: float) -> float:
    """Reflect a coordinate into ``[0, limit]`` (mirror at the borders)."""
    period = 2.0 * limit
    value = value % period
    if value < 0:
        value += period
    return period - value if value > limit else value


class LegMobility(MobilityModel):
    """Base class for models with lazily materialized piecewise legs."""

    def __init__(self, node_ids, region: Region):
        super().__init__(node_ids, region)
        self._legs: dict[NodeId, list[Leg]] = {}
        self._leg_ends: dict[NodeId, list[float]] = {}
        # Lazy numpy leg-selection cache for positions_array.
        self._batch_cache: dict | None = None

    def _seed_legs(self, node: NodeId, start: Point) -> None:
        """Initialize ``node``'s trajectory with a zero-length leg.

        The seed leg guarantees extension logic always has a previous
        endpoint to continue from.
        """
        self._legs[node] = [Leg(0.0, 0.0, start, start)]
        self._leg_ends[node] = [0.0]

    def _preload_legs(self, node: NodeId, legs: list[Leg]) -> None:
        """Install a complete (finite) trajectory, e.g. from a trace."""
        if not legs:
            raise ValueError(f"node {node!r} has an empty trajectory")
        self._legs[node] = list(legs)
        self._leg_ends[node] = [leg.t_end for leg in legs]

    def _append_leg(self, node: NodeId, leg: Leg) -> None:
        """Extend ``node``'s trajectory by one leg."""
        self._legs[node].append(leg)
        self._leg_ends[node].append(leg.t_end)

    def _advance(self, node: NodeId) -> bool:
        """Append the next leg(s) for ``node``; False when exhausted.

        Finite trajectories (trace replay) return False and the node
        holds its final position forever; generative models append at
        least one leg and return True.
        """
        return False

    def _extend(self, node: NodeId, until: float) -> None:
        """Materialize legs for ``node`` to cover time ``until``."""
        ends = self._leg_ends[node]
        while ends[-1] < until:
            if not self._advance(node):
                break

    def position(self, node: NodeId, t: float) -> Point:
        self.validate_time(t)
        if node not in self._legs:
            raise KeyError(f"unknown node {node!r}")
        self._extend(node, t)
        ends = self._leg_ends[node]
        index = bisect.bisect_left(ends, t)
        index = min(index, len(ends) - 1)
        return self._legs[node][index].position_at(t)

    def positions_array(self, t: float):
        """Batch :meth:`position` over all nodes into an ``(N, 2)`` array.

        Legs are extended and selected per node exactly as the scalar
        path does (same RNG draw order — every model draws from
        per-node RNGs, so trajectories are unchanged), then the active
        legs are interpolated in one vectorized pass evaluating the
        same float64 expressions as :meth:`Leg.position_at`.  IEEE 754
        elementwise arithmetic makes the results bit-identical to the
        scalar path; the batch-mobility golden tests pin that for every
        registered model.

        The per-node leg selection is cached between calls: a node's
        leg stays selected while the query time remains inside it
        (``prev_end < t <= t_end``, the bisect_left choice), so
        successive beacon ticks only re-run Python selection for the
        few nodes whose leg actually changed.
        """
        import numpy as np

        self.validate_time(t)
        n = len(self._node_ids)
        cache = self._batch_cache
        if cache is None:
            cache = self._batch_cache = {
                # t_start, t_end, x0, y0, x1, y1 of each node's leg.
                "segments": np.full((n, 6), np.nan, dtype=np.float64),
                # End of the previous leg: the selected leg is valid
                # for query times in (prev_end, t_end].
                "prev_end": np.full(n, np.inf, dtype=np.float64),
                # True when the trajectory is exhausted (finite traces)
                # and the selected final leg also covers any later t.
                "final": np.zeros(n, dtype=bool),
            }
        segments = cache["segments"]
        prev_end = cache["prev_end"]
        final = cache["final"]
        stale = np.nonzero(
            (t <= prev_end) | ((t > segments[:, 1]) & ~final)
        )[0]
        for i in stale.tolist():
            node = self._node_ids[i]
            self._extend(node, t)
            ends = self._leg_ends[node]
            index = bisect.bisect_left(ends, t)
            index = min(index, len(ends) - 1)
            leg = self._legs[node][index]
            segments[i, 0] = leg.t_start
            segments[i, 1] = leg.t_end
            segments[i, 2] = leg.p_start.x
            segments[i, 3] = leg.p_start.y
            segments[i, 4] = leg.p_end.x
            segments[i, 5] = leg.p_end.y
            prev_end[i] = ends[index - 1] if index > 0 else -np.inf
            final[i] = ends[index] < t
        t_start, t_end = segments[:, 0], segments[:, 1]
        start, end = segments[:, 2:4], segments[:, 4:6]
        # Mirror Leg.position_at: degenerate legs (t_end <= t_start)
        # hold p_start; real legs interpolate with clamped alpha.  The
        # guarded denominator keeps the degenerate lanes off the
        # divide; np.where then discards them for p_start exactly.
        span = t_end - t_start
        moving = span > 0.0
        alpha = (t - t_start) / np.where(moving, span, 1.0)
        np.clip(alpha, 0.0, 1.0, out=alpha)
        interp = start + alpha[:, None] * (end - start)
        return np.where(moving[:, None], interp, start)

    def waypoints_until(self, node: NodeId, until: float) -> list[Leg]:
        """Materialized legs covering ``[0, until]`` — used by trace export."""
        if node not in self._legs:
            raise KeyError(f"unknown node {node!r}")
        self._extend(node, until)
        return [leg for leg in self._legs[node] if leg.t_start <= until]
