"""Shared analytic-legs trajectory machinery.

Every mobility model in this package that moves nodes along piecewise
linear trajectories — random waypoint, random walk, Gauss–Markov,
Manhattan grid, ns-2 trace replay — represents a trajectory as a list
of :class:`Leg` segments and answers position queries by binary search
over leg end times.  :class:`LegMobility` owns that representation:
subclasses only implement :meth:`LegMobility._advance`, which appends
the next leg(s) of a node's trajectory on demand.

Query cost is O(log legs); leg lists extend lazily to cover any query
time, so models never tick a clock.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import MobilityModel, Region


@dataclass(frozen=True)
class Leg:
    """One straight-line segment (or pause) of a trajectory."""

    t_start: float
    t_end: float
    p_start: Point
    p_end: Point

    def position_at(self, t: float) -> Point:
        """Interpolate along the leg; ``t`` must be within the leg."""
        if self.t_end <= self.t_start:
            return self.p_start
        alpha = (t - self.t_start) / (self.t_end - self.t_start)
        alpha = min(1.0, max(0.0, alpha))
        return Point(
            self.p_start.x + alpha * (self.p_end.x - self.p_start.x),
            self.p_start.y + alpha * (self.p_end.y - self.p_start.y),
        )


def reflect(value: float, limit: float) -> float:
    """Reflect a coordinate into ``[0, limit]`` (mirror at the borders)."""
    period = 2.0 * limit
    value = value % period
    if value < 0:
        value += period
    return period - value if value > limit else value


class LegMobility(MobilityModel):
    """Base class for models with lazily materialized piecewise legs."""

    def __init__(self, node_ids, region: Region):
        super().__init__(node_ids, region)
        self._legs: dict[NodeId, list[Leg]] = {}
        self._leg_ends: dict[NodeId, list[float]] = {}

    def _seed_legs(self, node: NodeId, start: Point) -> None:
        """Initialize ``node``'s trajectory with a zero-length leg.

        The seed leg guarantees extension logic always has a previous
        endpoint to continue from.
        """
        self._legs[node] = [Leg(0.0, 0.0, start, start)]
        self._leg_ends[node] = [0.0]

    def _preload_legs(self, node: NodeId, legs: list[Leg]) -> None:
        """Install a complete (finite) trajectory, e.g. from a trace."""
        if not legs:
            raise ValueError(f"node {node!r} has an empty trajectory")
        self._legs[node] = list(legs)
        self._leg_ends[node] = [leg.t_end for leg in legs]

    def _append_leg(self, node: NodeId, leg: Leg) -> None:
        """Extend ``node``'s trajectory by one leg."""
        self._legs[node].append(leg)
        self._leg_ends[node].append(leg.t_end)

    def _advance(self, node: NodeId) -> bool:
        """Append the next leg(s) for ``node``; False when exhausted.

        Finite trajectories (trace replay) return False and the node
        holds its final position forever; generative models append at
        least one leg and return True.
        """
        return False

    def _extend(self, node: NodeId, until: float) -> None:
        """Materialize legs for ``node`` to cover time ``until``."""
        ends = self._leg_ends[node]
        while ends[-1] < until:
            if not self._advance(node):
                break

    def position(self, node: NodeId, t: float) -> Point:
        self.validate_time(t)
        if node not in self._legs:
            raise KeyError(f"unknown node {node!r}")
        self._extend(node, t)
        ends = self._leg_ends[node]
        index = bisect.bisect_left(ends, t)
        index = min(index, len(ends) - 1)
        return self._legs[node][index].position_at(t)

    def waypoints_until(self, node: NodeId, until: float) -> list[Leg]:
        """Materialized legs covering ``[0, until]`` — used by trace export."""
        if node not in self._legs:
            raise KeyError(f"unknown node {node!r}")
        self._extend(node, until)
        return [leg for leg in self._legs[node] if leg.t_start <= until]
