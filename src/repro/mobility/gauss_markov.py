"""Gauss–Markov mobility: smooth motion with tunable memory.

The Gauss–Markov model (Liang & Haas) evolves each node's speed and
direction as first-order autoregressive processes:

    s_n = a*s_{n-1} + (1-a)*mean_speed + sqrt(1-a^2) * N(0, speed_std)
    d_n = a*d_{n-1} + (1-a)*mean_dir   + sqrt(1-a^2) * N(0, direction_std)

``alpha`` tunes the memory: 1 is straight-line ballistic motion, 0 is
memoryless Brownian-like drift.  Unlike random waypoint there are no
sharp turns at waypoints and no spatial bias toward the region centre,
which changes contact patterns enough to flip DTN protocol rankings —
exactly the sensitivity the cross-mobility suites probe.

Boundary handling is the standard one: the *mean* direction steers
toward the region centre inside an edge margin so trajectories curve
away from walls, and any step that still crosses a wall is mirrored
back inside (flipping the direction state) so positions never leave
the region.  Each update interval becomes one analytic leg.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import Region
from repro.mobility.legs import Leg, LegMobility, reflect
from repro.seeding import derive_rng

_TWO_PI = 2.0 * math.pi


class GaussMarkovMobility(LegMobility):
    """Gauss–Markov motion with edge steering and border reflection."""

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        region: Region,
        seed: int,
        mean_speed: float = 10.0,
        alpha: float = 0.75,
        speed_std: float = 3.0,
        direction_std: float = 0.6,
        update_interval: float = 2.0,
        max_speed: float | None = None,
        edge_margin: float | None = None,
    ):
        super().__init__(node_ids, region)
        if not 0.0 <= alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")
        if mean_speed <= 0:
            raise ValueError("mean speed must be positive")
        if speed_std < 0 or direction_std < 0:
            raise ValueError("standard deviations must be non-negative")
        if update_interval <= 0:
            raise ValueError("update interval must be positive")
        self.mean_speed = mean_speed
        self.alpha = alpha
        self.speed_std = speed_std
        self.direction_std = direction_std
        self.update_interval = update_interval
        self.max_speed = 2.0 * mean_speed if max_speed is None else max_speed
        if self.max_speed < mean_speed:
            raise ValueError("max_speed must be >= mean_speed")
        if edge_margin is None:
            edge_margin = 0.15 * min(region.width, region.height)
        if not 0 <= edge_margin < min(region.width, region.height) / 2.0:
            raise ValueError("edge margin must fit inside the region")
        self.edge_margin = edge_margin
        self._rngs: dict[NodeId, random.Random] = {}
        self._speed: dict[NodeId, float] = {}
        self._direction: dict[NodeId, float] = {}
        for i, node in enumerate(self.node_ids):
            rng = derive_rng(seed, i, "gauss-markov")
            self._rngs[node] = rng
            start = Point(
                rng.uniform(0.0, region.width),
                rng.uniform(0.0, region.height),
            )
            self._seed_legs(node, start)
            self._speed[node] = mean_speed
            self._direction[node] = rng.uniform(0.0, _TWO_PI)

    def _mean_direction(self, p: Point, current: float) -> float:
        """Mean direction for the next update: steer off nearby walls."""
        margin = self.edge_margin
        near_edge = (
            p.x < margin
            or p.x > self.region.width - margin
            or p.y < margin
            or p.y > self.region.height - margin
        )
        if not near_edge:
            return current
        target = math.atan2(
            self.region.height / 2.0 - p.y, self.region.width / 2.0 - p.x
        )
        # Express the steering target in the branch closest to the
        # current (unbounded) direction so the AR blend doesn't spin the
        # node through a full turn.
        while target - current > math.pi:
            target -= _TWO_PI
        while current - target > math.pi:
            target += _TWO_PI
        return target

    @staticmethod
    def _bounce_flips(raw: float, limit: float) -> bool:
        """Whether mirroring ``raw`` into [0, limit] nets a direction flip.

        Mirror reflection has period ``2*limit``: an even number of wall
        bounces restores the original heading, an odd number flips it.
        Writing ``raw mod 2*limit = r``, the net motion is flipped
        exactly when ``r > limit`` — checking only "left the region"
        would mis-flip steps long enough to cross the region twice.
        """
        return raw % (2.0 * limit) > limit

    def _advance(self, node: NodeId) -> bool:
        rng = self._rngs[node]
        last = self._legs[node][-1]
        origin = last.p_end
        speed = self._speed[node]
        direction = self._direction[node]
        dt = self.update_interval
        raw_x = origin.x + speed * dt * math.cos(direction)
        raw_y = origin.y + speed * dt * math.sin(direction)
        if self._bounce_flips(raw_x, self.region.width):
            direction = math.pi - direction
        if self._bounce_flips(raw_y, self.region.height):
            direction = -direction
        target = Point(
            reflect(raw_x, self.region.width),
            reflect(raw_y, self.region.height),
        )
        t0 = last.t_end
        self._append_leg(node, Leg(t0, t0 + dt, origin, target))
        # AR(1) update for the next leg's speed and direction.
        a = self.alpha
        noise = math.sqrt(max(0.0, 1.0 - a * a))
        speed = (
            a * speed
            + (1.0 - a) * self.mean_speed
            + noise * rng.gauss(0.0, self.speed_std)
        )
        mean_dir = self._mean_direction(target, direction)
        direction = (
            a * direction
            + (1.0 - a) * mean_dir
            + noise * rng.gauss(0.0, self.direction_std)
        )
        self._speed[node] = min(max(speed, 0.0), self.max_speed)
        self._direction[node] = direction
        return True
