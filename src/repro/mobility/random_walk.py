"""Bounded random walk mobility (extension beyond the paper).

Nodes pick a uniform heading and speed, walk for a fixed epoch, reflect
off region borders, and repeat.  Random walk produces much lower spatial
mixing than random waypoint, which makes it a useful stress model for
the store-and-forward machinery: contacts are rarer and longer.  The
ablation benches use it to show GLR's copy-count decision reacting to a
different mobility regime.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import Region
from repro.mobility.legs import Leg, LegMobility, reflect
from repro.seeding import derive_rng


class RandomWalkMobility(LegMobility):
    """Random direction walk with border reflection."""

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        region: Region,
        seed: int,
        min_speed: float = 0.5,
        max_speed: float = 20.0,
        epoch: float = 30.0,
    ):
        super().__init__(node_ids, region)
        if not 0 < min_speed <= max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.epoch = epoch
        self._rngs: dict[NodeId, random.Random] = {}
        for i, node in enumerate(self.node_ids):
            rng = derive_rng(seed, i, "rw")
            self._rngs[node] = rng
            start = Point(
                rng.uniform(0.0, region.width),
                rng.uniform(0.0, region.height),
            )
            self._seed_legs(node, start)

    def _advance(self, node: NodeId) -> bool:
        rng = self._rngs[node]
        last = self._legs[node][-1]
        origin = last.p_end
        heading = rng.uniform(0.0, 2.0 * math.pi)
        speed = rng.uniform(self.min_speed, self.max_speed)
        t0 = last.t_end
        t1 = t0 + self.epoch
        raw = Point(
            origin.x + speed * self.epoch * math.cos(heading),
            origin.y + speed * self.epoch * math.sin(heading),
        )
        target = Point(
            reflect(raw.x, self.region.width),
            reflect(raw.y, self.region.height),
        )
        # The reflected endpoint is what matters for contact dynamics;
        # we approximate the reflected path by the straight leg to it,
        # which stays inside the region by construction.
        self._append_leg(node, Leg(t0, t1, origin, target))
        return True
