"""Bounded random walk mobility (extension beyond the paper).

Nodes pick a uniform heading and speed, walk for a fixed epoch, reflect
off region borders, and repeat.  Random walk produces much lower spatial
mixing than random waypoint, which makes it a useful stress model for
the store-and-forward machinery: contacts are rarer and longer.  The
ablation benches use it to show GLR's copy-count decision reacting to a
different mobility regime.
"""

from __future__ import annotations

import bisect
import math
import random
from typing import Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import MobilityModel, Region
from repro.mobility.random_waypoint import Leg
from repro.seeding import derive_rng


class RandomWalkMobility(MobilityModel):
    """Random direction walk with border reflection."""

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        region: Region,
        seed: int,
        min_speed: float = 0.5,
        max_speed: float = 20.0,
        epoch: float = 30.0,
    ):
        super().__init__(node_ids, region)
        if not 0 < min_speed <= max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        if epoch <= 0:
            raise ValueError("epoch must be positive")
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.epoch = epoch
        self._rngs: dict[NodeId, random.Random] = {}
        self._legs: dict[NodeId, list[Leg]] = {}
        self._leg_ends: dict[NodeId, list[float]] = {}
        for i, node in enumerate(self.node_ids):
            rng = derive_rng(seed, i, "rw")
            self._rngs[node] = rng
            start = Point(
                rng.uniform(0.0, region.width),
                rng.uniform(0.0, region.height),
            )
            self._legs[node] = [Leg(0.0, 0.0, start, start)]
            self._leg_ends[node] = [0.0]

    def _reflect(self, value: float, limit: float) -> float:
        """Reflect a coordinate into [0, limit] (mirror at the borders)."""
        period = 2.0 * limit
        value = value % period
        if value < 0:
            value += period
        return period - value if value > limit else value

    def _extend(self, node: NodeId, until: float) -> None:
        legs = self._legs[node]
        ends = self._leg_ends[node]
        rng = self._rngs[node]
        while ends[-1] < until:
            origin = legs[-1].p_end
            heading = rng.uniform(0.0, 2.0 * math.pi)
            speed = rng.uniform(self.min_speed, self.max_speed)
            t0 = ends[-1]
            t1 = t0 + self.epoch
            raw = Point(
                origin.x + speed * self.epoch * math.cos(heading),
                origin.y + speed * self.epoch * math.sin(heading),
            )
            target = Point(
                self._reflect(raw.x, self.region.width),
                self._reflect(raw.y, self.region.height),
            )
            # The reflected endpoint is what matters for contact dynamics;
            # we approximate the reflected path by the straight leg to it,
            # which stays inside the region by construction.
            legs.append(Leg(t0, t1, origin, target))
            ends.append(t1)

    def position(self, node: NodeId, t: float) -> Point:
        self.validate_time(t)
        if node not in self._legs:
            raise KeyError(f"unknown node {node!r}")
        self._extend(node, t)
        ends = self._leg_ends[node]
        index = bisect.bisect_left(ends, t)
        index = min(index, len(ends) - 1)
        return self._legs[node][index].position_at(t)
