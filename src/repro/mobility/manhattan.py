"""Manhattan grid mobility: street-constrained motion.

Nodes move only along the lines of a regular street grid — ``blocks_x``
by ``blocks_y`` city blocks filling the region — travelling from
intersection to intersection.  At each intersection a node keeps going
straight with probability ``1 - 2*turn_prob`` and turns left/right with
probability ``turn_prob`` each (invalid choices that would leave the
grid are dropped and the rest renormalized; a boxed-in node U-turns).
Per-street speeds are drawn uniformly from ``[min_speed, max_speed]``.

Street-constrained motion concentrates contacts on shared streets and
intersections, which produces very different encounter statistics from
the open-field models — the urban face of the cross-mobility suites.
Each street segment is one analytic leg.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import Region
from repro.mobility.legs import Leg, LegMobility
from repro.seeding import derive_rng

#: Axis-aligned unit steps: east, north, west, south.
_DIRECTIONS = ((1, 0), (0, 1), (-1, 0), (0, -1))


class ManhattanGridMobility(LegMobility):
    """Intersection-to-intersection movement on a street grid.

    The defaults (10 x 2 blocks) give 150 m square blocks on the
    paper's 1500 m x 300 m strip; override ``blocks_x``/``blocks_y``
    for other regions.
    """

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        region: Region,
        seed: int,
        blocks_x: int = 10,
        blocks_y: int = 2,
        min_speed: float = 5.0,
        max_speed: float = 20.0,
        turn_prob: float = 0.25,
    ):
        super().__init__(node_ids, region)
        if blocks_x < 1 or blocks_y < 1:
            raise ValueError("need at least one block along each axis")
        if not 0 < min_speed <= max_speed:
            raise ValueError("need 0 < min_speed <= max_speed")
        if not 0.0 <= turn_prob <= 0.5:
            raise ValueError("turn probability must be in [0, 0.5]")
        self.blocks_x = blocks_x
        self.blocks_y = blocks_y
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.turn_prob = turn_prob
        self._step_x = region.width / blocks_x
        self._step_y = region.height / blocks_y
        self._rngs: dict[NodeId, random.Random] = {}
        #: Per node: current intersection (i, j) and direction index.
        self._at: dict[NodeId, tuple[int, int]] = {}
        self._dir: dict[NodeId, int] = {}
        for index, node in enumerate(self.node_ids):
            rng = derive_rng(seed, index, "manhattan")
            self._rngs[node] = rng
            i = rng.randrange(blocks_x + 1)
            j = rng.randrange(blocks_y + 1)
            self._at[node] = (i, j)
            self._dir[node] = rng.choice(
                [d for d in range(4) if self._valid(i, j, d)]
            )
            self._seed_legs(node, self._intersection(i, j))

    def _intersection(self, i: int, j: int) -> Point:
        return Point(i * self._step_x, j * self._step_y)

    def _valid(self, i: int, j: int, direction: int) -> bool:
        dx, dy = _DIRECTIONS[direction]
        return 0 <= i + dx <= self.blocks_x and 0 <= j + dy <= self.blocks_y

    def _choose_direction(self, node: NodeId, i: int, j: int) -> int:
        """Next direction at intersection ``(i, j)``: straight or turn."""
        rng = self._rngs[node]
        current = self._dir[node]
        weighted = (
            (current, 1.0 - 2.0 * self.turn_prob),  # straight
            ((current + 1) % 4, self.turn_prob),  # left
            ((current + 3) % 4, self.turn_prob),  # right
        )
        options = [
            (d, w) for d, w in weighted if w > 0 and self._valid(i, j, d)
        ]
        if not options:
            return (current + 2) % 4  # dead end: U-turn
        total = sum(w for _, w in options)
        draw = rng.random() * total
        for d, w in options:
            draw -= w
            if draw <= 0.0:
                return d
        return options[-1][0]

    def _advance(self, node: NodeId) -> bool:
        rng = self._rngs[node]
        i, j = self._at[node]
        direction = self._choose_direction(node, i, j)
        dx, dy = _DIRECTIONS[direction]
        target = (i + dx, j + dy)
        origin = self._intersection(i, j)
        dest = self._intersection(*target)
        speed = rng.uniform(self.min_speed, self.max_speed)
        last = self._legs[node][-1]
        t0 = last.t_end
        t1 = t0 + origin.distance_to(dest) / speed
        self._append_leg(node, Leg(t0, t1, origin, dest))
        self._at[node] = target
        self._dir[node] = direction
        return True
