"""Reference Point Group Mobility: convoys, clusters, partition/merge.

RPGM (Hong et al.) moves *groups*: each group owns a logical reference
point that travels through the region under random waypoint, and every
member tracks its own reference point plus a bounded random offset
inside a disk of radius ``group_radius``.  Groups drift independently,
so the network naturally partitions into clusters that occasionally
meet — the DTN-relevant regime where inter-group delivery must ride on
rare group encounters while intra-group delivery is nearly free.

Member positions are the sum of two piecewise-linear trajectories
(group centre + member offset) clamped to the region, so queries stay
analytic and deterministic; the model never ticks a clock.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import MobilityModel, Region
from repro.mobility.legs import Leg, LegMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.seeding import derive_rng, derive_seed


class _OffsetWalk(LegMobility):
    """Per-member random motion *inside the offset disk*.

    Positions here are offsets relative to the group centre (the disk
    is centred on the origin), not region coordinates — the region is
    carried only to satisfy the mobility interface.  Each leg travels
    to a fresh uniform point in the disk at ``member_speed``.
    """

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        region: Region,
        seed: int,
        group_radius: float,
        member_speed: float,
    ):
        super().__init__(node_ids, region)
        self.group_radius = group_radius
        self.member_speed = member_speed
        self._rngs: dict[NodeId, random.Random] = {}
        for i, node in enumerate(self.node_ids):
            rng = derive_rng(seed, i, "rpgm-offset")
            self._rngs[node] = rng
            self._seed_legs(node, self._disk_point(rng))

    def _disk_point(self, rng: random.Random) -> Point:
        """Uniform point in the offset disk (centred on the origin)."""
        radius = self.group_radius * math.sqrt(rng.random())
        angle = rng.uniform(0.0, 2.0 * math.pi)
        return Point(radius * math.cos(angle), radius * math.sin(angle))

    def _advance(self, node: NodeId) -> bool:
        last = self._legs[node][-1]
        origin = last.p_end
        target = self._disk_point(self._rngs[node])
        travel = max(origin.distance_to(target) / self.member_speed, 1e-9)
        t0 = last.t_end
        self._append_leg(node, Leg(t0, t0 + travel, origin, target))
        return True


class ReferencePointGroupMobility(MobilityModel):
    """Group mobility: RWP group centres plus per-member disk offsets."""

    def __init__(
        self,
        node_ids: Sequence[NodeId],
        region: Region,
        seed: int,
        n_groups: int | None = None,
        group_radius: float = 50.0,
        min_speed: float = 1.0,
        max_speed: float = 20.0,
        pause_time: float = 0.0,
        member_speed: float = 2.0,
    ):
        super().__init__(node_ids, region)
        if n_groups is None:
            n_groups = min(4, len(self._node_ids))
        if not 1 <= n_groups <= len(self._node_ids):
            raise ValueError("need 1 <= n_groups <= number of nodes")
        if group_radius <= 0:
            raise ValueError("group radius must be positive")
        if member_speed <= 0:
            raise ValueError("member speed must be positive")
        self.n_groups = n_groups
        self.group_radius = group_radius
        self.member_speed = member_speed
        #: Group reference points follow random waypoint over the full
        #: region, on an independently derived seed stream.
        self._centers = RandomWaypointMobility(
            list(range(n_groups)),
            region,
            seed=derive_seed(seed, "rpgm-centers"),
            min_speed=min_speed,
            max_speed=max_speed,
            pause_time=pause_time,
        )
        self._offsets = _OffsetWalk(
            self._node_ids, region, seed, group_radius, member_speed
        )
        n = len(self._node_ids)
        self._group: dict[NodeId, int] = {
            node: min(i * n_groups // n, n_groups - 1)
            for i, node in enumerate(self._node_ids)
        }

    def group_of(self, node: NodeId) -> int:
        """Index of the group ``node`` belongs to."""
        return self._group[node]

    def center_position(self, group: int, t: float) -> Point:
        """Reference-point position of ``group`` at time ``t``."""
        return self._centers.position(group, t)

    def position(self, node: NodeId, t: float) -> Point:
        self.validate_time(t)
        if node not in self._group:
            raise KeyError(f"unknown node {node!r}")
        center = self._centers.position(self._group[node], t)
        offset = self._offsets.position(node, t)
        return self.region.clamp(
            Point(center.x + offset.x, center.y + offset.y)
        )

    def positions_array(self, t: float):
        """Batch centre + offset + clamp, matching :meth:`position`.

        Both component models are leg-based, so their batch paths are
        bit-identical to their scalar paths; the add and the clamp use
        the same float64 operations as the scalar composition.
        """
        import numpy as np

        self.validate_time(t)
        centers = self._centers.positions_array(t)
        offsets = self._offsets.positions_array(t)
        rows = np.fromiter(
            (self._group[node] for node in self._node_ids),
            dtype=np.intp,
            count=len(self._node_ids),
        )
        combined = centers[rows] + offsets
        np.minimum(
            np.maximum(combined, 0.0, out=combined),
            (self.region.width, self.region.height),
            out=combined,
        )
        return combined
