"""Mobility models, movement traces, and the mobility registry.

The paper's scenarios use the random waypoint model (uniform 0–20 m/s,
pause time 0 s) inside a rectangular region.  Models here expose a
single query — :meth:`~repro.mobility.base.MobilityModel.position` — and
compute trajectories analytically, so the simulator can ask for any
node's position at any instant without stepping a clock.

- :mod:`repro.mobility.base` — interface and shared helpers.
- :mod:`repro.mobility.legs` — the analytic piecewise-linear machinery.
- :mod:`repro.mobility.static` — fixed placements (Figure 1 topologies).
- :mod:`repro.mobility.random_waypoint` — the paper's motion pattern.
- :mod:`repro.mobility.random_walk` — bounded random walk (extension).
- :mod:`repro.mobility.gauss_markov` — smooth motion, tunable memory.
- :mod:`repro.mobility.rpgm` — reference point group mobility (convoys).
- :mod:`repro.mobility.manhattan` — street-grid constrained motion.
- :mod:`repro.mobility.traces` — ns-2 ``setdest`` import/export and
  trace-driven replay.
- :mod:`repro.mobility.registry` — string-keyed model registry and the
  declarative :class:`~repro.mobility.registry.MobilityConfig` that
  scenarios and campaign grids carry.
"""

from repro.mobility.base import MobilityModel, Region
from repro.mobility.gauss_markov import GaussMarkovMobility
from repro.mobility.legs import Leg, LegMobility
from repro.mobility.manhattan import ManhattanGridMobility
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.registry import (
    MobilityConfig,
    as_mobility_config,
    available_models,
    build_mobility,
    register_model,
)
from repro.mobility.rpgm import ReferencePointGroupMobility
from repro.mobility.static import StaticMobility, uniform_random_positions
from repro.mobility.traces import (
    TraceMobility,
    load_ns2_trace,
    parse_ns2_trace,
    save_ns2_trace,
)

__all__ = [
    "GaussMarkovMobility",
    "Leg",
    "LegMobility",
    "ManhattanGridMobility",
    "MobilityConfig",
    "MobilityModel",
    "RandomWalkMobility",
    "RandomWaypointMobility",
    "ReferencePointGroupMobility",
    "Region",
    "StaticMobility",
    "TraceMobility",
    "as_mobility_config",
    "available_models",
    "build_mobility",
    "load_ns2_trace",
    "parse_ns2_trace",
    "register_model",
    "save_ns2_trace",
    "uniform_random_positions",
]
