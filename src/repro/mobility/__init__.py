"""Mobility models and movement traces.

The paper's scenarios use the random waypoint model (uniform 0–20 m/s,
pause time 0 s) inside a rectangular region.  Models here expose a
single query — :meth:`~repro.mobility.base.MobilityModel.position` — and
compute trajectories analytically, so the simulator can ask for any
node's position at any instant without stepping a clock.

- :mod:`repro.mobility.base` — interface and shared helpers.
- :mod:`repro.mobility.static` — fixed placements (Figure 1 topologies).
- :mod:`repro.mobility.random_waypoint` — the paper's motion pattern.
- :mod:`repro.mobility.random_walk` — bounded random walk (extension).
- :mod:`repro.mobility.traces` — ns-2 ``setdest`` import/export and
  trace-driven replay.
"""

from repro.mobility.base import MobilityModel, Region
from repro.mobility.random_walk import RandomWalkMobility
from repro.mobility.random_waypoint import RandomWaypointMobility
from repro.mobility.static import StaticMobility, uniform_random_positions
from repro.mobility.traces import TraceMobility, load_ns2_trace, save_ns2_trace

__all__ = [
    "MobilityModel",
    "RandomWalkMobility",
    "RandomWaypointMobility",
    "Region",
    "StaticMobility",
    "TraceMobility",
    "load_ns2_trace",
    "save_ns2_trace",
    "uniform_random_positions",
]
