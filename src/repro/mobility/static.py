"""Static placements and uniform random topologies.

Figure 1 of the paper draws static snapshots (50 uniform nodes, radii
250 m and 100 m in a 1000 m square); :func:`uniform_random_positions`
generates exactly those, and :class:`StaticMobility` serves them to any
code written against the mobility interface.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.geometry.primitives import Point
from repro.graphs.udg import NodeId
from repro.mobility.base import MobilityModel, Region


def uniform_random_positions(
    node_ids: Sequence[NodeId], region: Region, seed: int
) -> dict[NodeId, Point]:
    """Independent uniform positions for each node, keyed by node id."""
    rng = random.Random(seed)
    return {
        node: Point(
            rng.uniform(0.0, region.width), rng.uniform(0.0, region.height)
        )
        for node in node_ids
    }


class StaticMobility(MobilityModel):
    """Nodes that never move."""

    def __init__(
        self,
        region: Region,
        placements: Mapping[NodeId, Point],
    ):
        super().__init__(list(placements), region)
        for node, p in placements.items():
            if not region.contains(p):
                raise ValueError(f"node {node!r} placed outside the region")
        self._placements = dict(placements)

    @classmethod
    def uniform(
        cls, node_ids: Sequence[NodeId], region: Region, seed: int
    ) -> "StaticMobility":
        """Uniform random static topology (paper Figure 1 generator)."""
        return cls(region, uniform_random_positions(node_ids, region, seed))

    def position(self, node: NodeId, t: float) -> Point:
        self.validate_time(t)
        return self._placements[node]

    def positions_array(self, t: float):
        """Static placements as a cached read-only ``(N, 2)`` array."""
        import numpy as np

        self.validate_time(t)
        cached = getattr(self, "_array", None)
        if cached is None:
            cached = np.empty((len(self._node_ids), 2), dtype=np.float64)
            for i, node in enumerate(self._node_ids):
                p = self._placements[node]
                cached[i, 0] = p.x
                cached[i, 1] = p.y
            cached.setflags(write=False)
            self._array = cached
        return cached
