"""Tests for scenarios, workload generation, and the runner."""

import pytest

from repro.experiments.common import BENCH_EFFORT, Effort, ci_of, fmt_ci
from repro.experiments.runner import (
    available_protocols,
    build_world,
    run_replicates,
    run_single,
)
from repro.experiments.scenarios import PAPER_TABLE1, Scenario
from repro.experiments.workload import generate_workload


class TestScenario:
    def test_paper_defaults_match_table1(self):
        s = PAPER_TABLE1
        assert s.n_nodes == 50
        assert s.region.width == 1500.0
        assert s.region.height == 300.0
        assert s.max_speed == 20.0
        assert s.pause_time == 0.0
        assert s.message_count == 1980
        assert s.active_nodes == 45
        assert s.payload_bytes == 1000
        assert s.sim_time == 3800.0
        assert s.queue_limit == 150
        assert s.data_rate_bps == 1_000_000.0

    def test_but_replaces_fields(self):
        s = PAPER_TABLE1.but(radius=50.0, message_count=10)
        assert s.radius == 50.0
        assert s.message_count == 10
        assert s.n_nodes == 50  # untouched

    def test_with_seed(self):
        assert PAPER_TABLE1.with_seed(42).seed == 42

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(n_nodes=1)
        with pytest.raises(ValueError):
            Scenario(radius=0.0)
        with pytest.raises(ValueError):
            Scenario(active_nodes=100)
        with pytest.raises(ValueError):
            Scenario(sim_time=0.0)

    def test_traffic_fields_validated(self):
        with pytest.raises(ValueError):
            Scenario(message_interval=0.0)
        with pytest.raises(ValueError):
            Scenario(message_start=-1.0)
        with pytest.raises(ValueError):
            Scenario(payload_bytes=0)
        with pytest.raises(ValueError):
            Scenario(data_rate_bps=0.0)

    def test_speed_pair_validated_at_construction(self):
        # Before the mobility subsystem this only surfaced deep inside
        # RandomWaypointMobility at build_world time.
        with pytest.raises(ValueError, match="min_speed"):
            Scenario(min_speed=30.0, max_speed=20.0)
        with pytest.raises(ValueError, match="min_speed"):
            Scenario(min_speed=-1.0)
        with pytest.raises(ValueError, match="max speed"):
            Scenario(max_speed=0.0)
        Scenario(min_speed=5.0, max_speed=5.0)  # equal speeds are fine

    def test_beacon_interval_validated(self):
        with pytest.raises(ValueError, match="beacon"):
            Scenario(beacon_interval=0.0)
        with pytest.raises(ValueError, match="beacon"):
            Scenario(beacon_interval=-1.0)

    def test_queue_limit_validated(self):
        with pytest.raises(ValueError, match="queue"):
            Scenario(queue_limit=0)
        Scenario(queue_limit=1)

    def test_mobility_strings_coerced(self):
        from repro.mobility.registry import MobilityConfig

        s = Scenario(mobility="gauss-markov")
        assert s.mobility == MobilityConfig.of("gauss_markov")
        assert Scenario().mobility is None
        # Coercion must survive `but` (dataclasses.replace re-inits).
        assert s.but(radius=50.0).mobility == s.mobility

    def test_unknown_mobility_rejected(self):
        with pytest.raises(ValueError, match="unknown mobility model"):
            Scenario(mobility="teleport")

    def test_motion_fields_conflict_with_mobility_config(self):
        # The speed/pause fields only drive the default RWP path; a
        # registry model must take them via its params, otherwise a
        # "speed sweep" x mobility grid would simulate identical cells.
        with pytest.raises(ValueError, match="mobility config"):
            Scenario(mobility="gauss-markov", max_speed=10.0)
        with pytest.raises(ValueError, match="mobility config"):
            Scenario(mobility="rwp", min_speed=5.0)
        with pytest.raises(ValueError, match="mobility config"):
            Scenario(mobility="manhattan", pause_time=30.0)
        # Defaults are fine, and the params route works.
        Scenario(mobility={"model": "rwp", "min_speed": 5.0})

    def test_area(self):
        assert PAPER_TABLE1.area == 450_000.0


class TestWorkload:
    def test_paper_workload_is_1980_messages(self):
        specs = generate_workload(PAPER_TABLE1)
        assert len(specs) == 1980

    def test_all_pairs_distinct_until_exhausted(self):
        specs = generate_workload(PAPER_TABLE1)
        pairs = [(s.source, s.dest) for s in specs]
        assert len(set(pairs)) == 1980  # 45*44 = 1980 distinct pairs

    def test_sources_and_dests_within_active_set(self):
        scenario = Scenario(message_count=100, active_nodes=10)
        for spec in generate_workload(scenario):
            assert 0 <= spec.source < 10
            assert 0 <= spec.dest < 10
            assert spec.source != spec.dest

    def test_one_message_per_interval(self):
        scenario = Scenario(
            message_count=5, message_start=2.0, message_interval=3.0
        )
        times = [s.at_time for s in generate_workload(scenario)]
        assert times == [2.0, 5.0, 8.0, 11.0, 14.0]

    def test_deterministic_per_seed(self):
        a = generate_workload(Scenario(seed=5, message_count=50))
        b = generate_workload(Scenario(seed=5, message_count=50))
        assert a == b

    def test_different_seed_shuffles(self):
        a = generate_workload(Scenario(seed=5, message_count=50))
        b = generate_workload(Scenario(seed=6, message_count=50))
        assert a != b

    def test_cycling_beyond_pair_count(self):
        scenario = Scenario(message_count=10, active_nodes=3)
        specs = generate_workload(scenario)  # 6 distinct pairs, cycles
        assert len(specs) == 10


class TestRunner:
    def test_available_protocols(self):
        assert "glr" in available_protocols()
        assert "epidemic" in available_protocols()

    def test_unknown_protocol_rejected(self):
        scenario = Scenario(message_count=1, sim_time=5.0)
        with pytest.raises(ValueError):
            run_single(scenario, "quantum_routing")

    def test_build_world_wires_everything(self):
        scenario = Scenario(message_count=3, sim_time=10.0)
        world = build_world(scenario, "glr")
        assert len(world.protocols) == 50
        assert world.config.radio.range_m == scenario.radius
        assert world.config.mac.queue_limit == scenario.queue_limit

    def test_default_scenario_uses_paper_rwp_model(self):
        from repro.mobility.random_waypoint import RandomWaypointMobility

        world = build_world(Scenario(message_count=1, sim_time=5.0), "glr")
        assert type(world.mobility) is RandomWaypointMobility

    def test_mobility_config_reaches_the_world(self):
        from repro.mobility.gauss_markov import GaussMarkovMobility
        from repro.mobility.rpgm import ReferencePointGroupMobility

        scenario = Scenario(
            message_count=1, sim_time=5.0, mobility="gauss-markov"
        )
        world = build_world(scenario, "glr")
        assert isinstance(world.mobility, GaussMarkovMobility)
        grouped = Scenario(
            message_count=1,
            sim_time=5.0,
            mobility={"model": "rpgm", "n_groups": 5},
        )
        world = build_world(grouped, "glr")
        assert isinstance(world.mobility, ReferencePointGroupMobility)
        assert world.mobility.n_groups == 5

    def test_mobility_scenario_simulates_end_to_end(self):
        scenario = Scenario(
            n_nodes=10,
            active_nodes=5,
            message_count=3,
            sim_time=20.0,
            mobility="manhattan",
        )
        metrics = run_single(scenario, "epidemic")
        assert metrics.messages_created == 3

    def test_run_single_returns_metrics(self):
        scenario = Scenario(
            radius=150.0, message_count=5, sim_time=40.0, seed=2
        )
        metrics = run_single(scenario, "glr")
        assert metrics.protocol == "glr"
        assert metrics.messages_created == 5
        assert metrics.duration == 40.0

    def test_buffer_limit_applied_to_all_protocols(self):
        scenario = Scenario(message_count=2, sim_time=10.0)
        for protocol in ("glr", "epidemic", "direct"):
            world = build_world(scenario, protocol, buffer_limit=7)
            metrics = world.run(until=10.0, protocol_name=protocol)
            assert metrics.max_peak_storage <= 7

    @pytest.mark.slow
    def test_replicates_use_distinct_seeds(self):
        scenario = Scenario(
            radius=150.0, message_count=5, sim_time=30.0, seed=2
        )
        runs = run_replicates(scenario, "glr", runs=2)
        assert len(runs) == 2
        assert runs[0].frames_sent != runs[1].frames_sent


class TestEffortAndCi:
    def test_effort_validation(self):
        with pytest.raises(ValueError):
            Effort(runs=0, sim_time=10.0, message_count=1)
        with pytest.raises(ValueError):
            Effort(runs=1, sim_time=0.0, message_count=1)

    def test_bench_effort_small(self):
        assert BENCH_EFFORT.runs <= 3
        assert BENCH_EFFORT.sim_time <= 600.0

    def test_ci_of_skips_missing_values(self):
        from tests.analysis.test_ci import make_metrics

        runs = [
            make_metrics(latency=10.0),
            make_metrics(ratio=0.0, latency=None),
        ]
        ci = ci_of(runs, "average_latency")
        assert ci.mean == pytest.approx(10.0)
        assert ci.n == 1

    def test_ci_of_all_missing_returns_zero(self):
        from tests.analysis.test_ci import make_metrics

        runs = [make_metrics(latency=None)]
        ci = ci_of(runs, "average_latency")
        assert ci.mean == 0.0
        assert ci.n == 0

    def test_fmt_ci(self):
        from repro.analysis.ci import ConfidenceInterval

        assert fmt_ci(ConfidenceInterval(1.234, 0.567, 3)) == "1.2±0.6"
