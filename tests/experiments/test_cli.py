"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import EFFORTS, EXPERIMENTS, main

#: Flags for a campaign small enough that tests finish in seconds:
#: 2 scenarios x 2 protocols x 2 replicates = 8 simulations.
TINY_CAMPAIGN = [
    "campaign",
    "--name",
    "cli-tiny",
    "--radii",
    "100,150",
    "--node-counts",
    "12",
    "--protocols",
    "glr,epidemic",
    "--replicates",
    "2",
    "--messages",
    "3",
    "--sim-time",
    "20",
]


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "glr" in out
        assert "bench" in out

    def test_every_paper_artifact_has_an_experiment(self):
        for name in (
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
        ):
            assert name in EXPERIMENTS

    def test_efforts_registered(self):
        assert set(EFFORTS) == {"bench", "spot", "paper"}


class TestRun:
    def test_quick_run(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "glr",
                "--radius",
                "150",
                "--messages",
                "3",
                "--sim-time",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivery ratio" in out
        assert "messages created    3" in out

    def test_run_with_storage_limit(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "epidemic",
                "--messages",
                "3",
                "--sim-time",
                "20",
                "--storage-limit",
                "5",
            ]
        )
        assert code == 0

    def test_bad_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "nonsense"])


class TestExperiment:
    def test_fig1_experiment(self, capsys):
        assert main(["experiment", "fig1", "--effort", "bench"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "components" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_workers_flag_threads_through(self, capsys, tmp_path):
        code = main(
            [
                "experiment",
                "table3",
                "--effort",
                "bench",
                "--workers",
                "2",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "custody" in out


class TestCampaign:
    def test_campaign_runs_and_reports_cells(self, capsys):
        assert main(TINY_CAMPAIGN + ["--quiet"]) == 0
        out = capsys.readouterr().out
        assert "8 simulations" in out
        assert "cli-tiny/radius=100.0" in out
        assert "cache: disabled" in out

    def test_campaign_resumes_from_cache(self, capsys, tmp_path):
        args = TINY_CAMPAIGN + [
            "--workers",
            "2",
            "--cache-dir",
            str(tmp_path),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "8 misses" in first
        assert "(ran)" in first

        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cache: 8 hits, 0 misses (100.0% hit rate)" in second
        assert "(cache)" in second and "(ran)" not in second

        # The summary tables (everything after the progress log) match:
        # cached metrics are identical to the freshly simulated ones.
        def summary(text):
            return [
                line
                for line in text.splitlines()
                if "|" in line
            ]

        assert summary(first) == summary(second)

    def test_csv_flags_tolerate_spaces(self, capsys):
        args = list(TINY_CAMPAIGN)
        args[args.index("glr,epidemic")] = "glr, epidemic"
        args[args.index("100,150")] = "100, 150"
        assert main(args + ["--quiet"]) == 0
        out = capsys.readouterr().out
        assert "8 simulations" in out

    def test_bad_inputs_exit_2_with_clean_error(self, capsys):
        assert main(["campaign", "--protocols", "warp_drive"]) == 2
        assert "unknown protocol" in capsys.readouterr().err
        assert main(["campaign", "--radii", "100,100"]) == 2
        assert "duplicate" in capsys.readouterr().err
        assert main(["campaign", "--node-counts", ","]) == 2
        assert "--node-counts" in capsys.readouterr().err
        assert main(["campaign", "--spec", "/nonexistent.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_campaign_from_json_spec(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "json-spec",
                    "base": {
                        "n_nodes": 12,
                        "active_nodes": 6,
                        "message_count": 3,
                        "sim_time": 20.0,
                    },
                    "grid": {"radius": [100.0, 150.0]},
                    "protocols": ["glr"],
                    "replicates": 2,
                }
            )
        )
        code = main(
            ["campaign", "--spec", str(spec_path), "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "json-spec/radius=100.0" in out
        assert "4 simulations" in out


class TestMobilityCli:
    def test_list_shows_models_and_suites(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mobility models:" in out
        assert "gauss_markov" in out
        assert "suites:" in out
        assert "cross-mobility" in out

    def test_campaign_mobility_grid(self, capsys):
        code = main(
            [
                "campaign",
                "--name",
                "cli-mob",
                "--mobility",
                "rwp,manhattan",
                "--node-counts",
                "10",
                "--protocols",
                "glr",
                "--replicates",
                "1",
                "--messages",
                "2",
                "--sim-time",
                "15",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 simulations" in out
        assert "mobility=random_waypoint" in out
        assert "mobility=manhattan" in out

    def test_campaign_unknown_mobility_exits_2(self, capsys):
        assert main(["campaign", "--mobility", "teleport"]) == 2
        assert "unknown mobility model" in capsys.readouterr().err

    def test_campaign_engine_grid(self, capsys):
        code = main(
            [
                "campaign",
                "--name",
                "cli-engines",
                "--engines",
                "reference,vectorized",
                "--node-counts",
                "10",
                "--protocols",
                "glr",
                "--replicates",
                "1",
                "--messages",
                "2",
                "--sim-time",
                "15",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 simulations" in out
        assert "engine=reference" in out
        assert "engine=vectorized" in out

    def test_campaign_unknown_engine_exits_2(self, capsys):
        assert main(["campaign", "--engines", "warp"]) == 2
        assert "engine" in capsys.readouterr().err

    def test_run_engine_flag(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "glr",
                "--engine",
                "vectorized",
                "--messages",
                "3",
                "--sim-time",
                "20",
            ]
        )
        assert code == 0
        assert "delivery ratio" in capsys.readouterr().out

    def test_run_vectorized_without_numpy_exits_2(self, capsys, monkeypatch):
        from repro.sim import arraystate

        monkeypatch.setattr(arraystate, "_numpy_cache", None)
        code = main(
            ["run", "--protocol", "glr", "--engine", "vectorized", "--messages", "2"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "numpy" in err
        assert "reference" in err

    def test_campaign_suite(self, capsys, monkeypatch):
        from repro.experiments.common import Effort
        from repro.cli import EFFORTS

        monkeypatch.setitem(
            EFFORTS, "bench", Effort(runs=1, sim_time=10.0, message_count=2)
        )
        code = main(
            [
                "campaign",
                "--suite",
                "convoy",
                "--replicates",
                "1",
                "--effort",
                "bench",
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "convoy/mobility=rpgm" in out
        assert "6 simulations" in out  # 3 RPGM variants x 2 protocols

    def test_campaign_unknown_suite_rejected(self):
        with pytest.raises(SystemExit):
            main(["campaign", "--suite", "nonsense"])

    def test_campaign_suite_rejects_conflicting_flags(self, capsys):
        assert main(
            ["campaign", "--suite", "convoy", "--protocols", "glr"]
        ) == 2
        err = capsys.readouterr().err
        assert "--protocols" in err and "--suite" in err
        assert main(
            ["campaign", "--suite", "convoy", "--messages", "50"]
        ) == 2
        assert "--messages" in capsys.readouterr().err

    def test_campaign_spec_and_suite_mutually_exclusive(self, capsys):
        assert main(
            ["campaign", "--spec", "x.json", "--suite", "convoy"]
        ) == 2
        assert "one or the other" in capsys.readouterr().err

    def test_spec_composes_with_seed_and_replicates(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "compose",
                    "base": {"n_nodes": 10, "active_nodes": 5,
                             "message_count": 2, "sim_time": 15.0},
                    "protocols": ["glr"],
                    "replicates": 3,
                }
            )
        )
        code = main(
            ["campaign", "--spec", str(spec_path), "--replicates", "1",
             "--seed", "9", "--quiet"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 replicates = 1 simulations" in out

    def test_campaign_spec_rejects_conflicting_flags(self, capsys):
        assert main(
            ["campaign", "--spec", "x.json", "--protocols", "glr",
             "--radii", "50,100"]
        ) == 2
        err = capsys.readouterr().err
        assert "--spec" in err and "--protocols" in err and "--radii" in err

    def test_campaign_effort_is_suite_only(self, capsys):
        assert main(
            ["campaign", "--radii", "50,100", "--effort", "bench"]
        ) == 2
        assert "--effort" in capsys.readouterr().err
        assert main(
            ["campaign", "--spec", "x.json", "--effort", "bench"]
        ) == 2
        assert "--effort" in capsys.readouterr().err

    def test_experiment_mobility_flag(self, capsys, tmp_path, monkeypatch):
        from repro.experiments.common import Effort
        from repro.cli import EFFORTS

        monkeypatch.setitem(
            EFFORTS, "bench", Effort(runs=1, sim_time=10.0, message_count=2)
        )
        code = main(
            [
                "experiment",
                "fig6",
                "--effort",
                "bench",
                "--mobility",
                "gauss-markov",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert "fig6" in capsys.readouterr().out

    def test_fig1_rejects_mobility(self, capsys):
        assert main(
            ["experiment", "fig1", "--mobility", "gauss-markov"]
        ) == 2
        assert "static-topology" in capsys.readouterr().err


class TestCampaignV2Cli:
    """Protocol-param sweeps, metrics streams, shards, merge/aggregate."""

    def _grid_args(self, **extra):
        args = [
            "campaign",
            "--name",
            "v2",
            "--radii",
            "100,150",
            "--node-counts",
            "12",
            "--protocols",
            "glr",
            "--protocol-param",
            "custody=true,false",
            "--replicates",
            "1",
            "--messages",
            "3",
            "--sim-time",
            "20",
            "--quiet",
        ]
        for flag, value in extra.items():
            args += [f"--{flag.replace('_', '-')}", str(value)]
        return args

    def test_protocol_param_expands_the_axis(self, capsys):
        assert main(self._grid_args()) == 0
        out = capsys.readouterr().out
        assert "2 protocols" in out
        assert "4 simulations" in out
        assert "glr(custody=True)" in out
        assert "glr(custody=False)" in out

    def test_protocol_param_value_parsing(self, capsys):
        # ints, floats, and bools must reach the config as their own
        # types; a bad field name must exit cleanly.
        args = [
            "campaign",
            "--protocols",
            "glr",
            "--protocol-param",
            "sparse_copies=2,3",
            "--node-counts",
            "10",
            "--replicates",
            "1",
            "--messages",
            "2",
            "--sim-time",
            "15",
            "--quiet",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "glr(sparse_copies=2)" in out

    def test_bad_protocol_param_exits_2(self, capsys):
        assert main(["campaign", "--protocol-param", "custody"]) == 2
        assert "name=v1,v2" in capsys.readouterr().err
        assert main(["campaign", "--protocol-param", "warp=1,2"]) == 2
        assert "does not accept" in capsys.readouterr().err
        assert (
            main(["campaign", "--protocol-param", "custody=true,true"]) == 2
        )
        assert "duplicate" in capsys.readouterr().err

    def test_protocol_param_conflicts_with_suite(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--suite",
                    "convoy",
                    "--protocol-param",
                    "custody=true,false",
                ]
            )
            == 2
        )
        assert "--protocol-param" in capsys.readouterr().err

    def test_stream_written_and_resumed(self, capsys, tmp_path):
        stream = tmp_path / "v2.jsonl"
        assert main(self._grid_args(stream=stream)) == 0
        capsys.readouterr()
        assert stream.exists()
        assert main(self._grid_args(stream=stream)) == 0
        out = capsys.readouterr().out
        assert "stream: 4 tasks resumed" in out

    def test_shard_flags_validated(self, capsys, tmp_path):
        assert main(self._grid_args(shard_index=0)) == 2
        assert "together" in capsys.readouterr().err
        assert (
            main(self._grid_args(shard_index=0, shard_count=2)) == 2
        )
        assert "--stream" in capsys.readouterr().err
        assert (
            main(
                self._grid_args(
                    shard_index=5,
                    shard_count=2,
                    stream=tmp_path / "s.jsonl",
                )
            )
            == 2
        )
        assert "shard_index" in capsys.readouterr().err

    def test_sharded_merge_aggregate_matches_unsharded(
        self, capsys, tmp_path
    ):
        full = tmp_path / "full.jsonl"
        assert main(self._grid_args(stream=full)) == 0
        capsys.readouterr()

        for index in range(2):
            assert (
                main(
                    self._grid_args(
                        stream=tmp_path / f"shard{index}.jsonl",
                        shard_index=index,
                        shard_count=2,
                    )
                )
                == 0
            )
        capsys.readouterr()

        merged = tmp_path / "merged.jsonl"
        assert (
            main(
                [
                    "campaign",
                    "merge",
                    "--out",
                    str(merged),
                    str(tmp_path / "shard0.jsonl"),
                    str(tmp_path / "shard1.jsonl"),
                ]
            )
            == 0
        )
        assert "merged 2 streams" in capsys.readouterr().out

        assert main(["campaign", "aggregate", "--stream", str(merged)]) == 0
        merged_table = capsys.readouterr().out
        assert main(["campaign", "aggregate", "--stream", str(full)]) == 0
        full_table = capsys.readouterr().out
        assert merged_table == full_table
        assert "glr(custody=False)" in merged_table

    def test_merge_refuses_mismatched_specs(self, capsys, tmp_path):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        assert main(self._grid_args(stream=a)) == 0
        other = self._grid_args(stream=b)
        other[other.index("--radii") + 1] = "100,200"
        assert main(other) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "campaign",
                    "merge",
                    "--out",
                    str(tmp_path / "m.jsonl"),
                    str(a),
                    str(b),
                ]
            )
            == 2
        )
        assert "same campaign spec" in capsys.readouterr().err

    def test_merge_cache_union_flags_must_pair(self, capsys, tmp_path):
        a = tmp_path / "a.jsonl"
        assert main(self._grid_args(stream=a)) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "campaign",
                    "merge",
                    "--out",
                    str(tmp_path / "m.jsonl"),
                    str(a),
                    "--caches",
                    "x,y",
                ]
            )
            == 2
        )
        assert "--cache-out" in capsys.readouterr().err

    def test_aggregate_missing_stream_exits_2(self, capsys, tmp_path):
        assert (
            main(
                [
                    "campaign",
                    "aggregate",
                    "--stream",
                    str(tmp_path / "nope.jsonl"),
                ]
            )
            == 2
        )
        assert "cannot read" in capsys.readouterr().err

    def test_suite_mobility_x_protocol_listed(self, capsys):
        assert main(["list"]) == 0
        assert "mobility-x-protocol" in capsys.readouterr().out

    def test_heartbeat_touched_per_task(self, capsys, tmp_path):
        heartbeat = tmp_path / "hb"
        args = [
            "campaign",
            "--node-counts",
            "10",
            "--protocols",
            "glr",
            "--replicates",
            "1",
            "--messages",
            "2",
            "--sim-time",
            "15",
            "--quiet",
            "--heartbeat",
            str(heartbeat),
        ]
        assert main(args) == 0
        assert heartbeat.exists()


class TestMobilityParamCli:
    """--mobility-param mirrors --protocol-param for movement models."""

    def _args(self, *extra):
        return [
            "campaign",
            "--name",
            "mp",
            "--mobility",
            "rpgm",
            "--node-counts",
            "10",
            "--protocols",
            "glr",
            "--replicates",
            "1",
            "--messages",
            "2",
            "--sim-time",
            "15",
            "--quiet",
            *extra,
        ]

    def test_expands_the_mobility_axis(self, capsys):
        code = main(self._args("--mobility-param", "n_groups=2,3"))
        assert code == 0
        out = capsys.readouterr().out
        assert "2 simulations" in out
        assert "mobility=rpgm(n_groups=2)" in out
        assert "mobility=rpgm(n_groups=3)" in out

    def test_axes_take_cartesian_product(self, capsys):
        code = main(
            self._args(
                "--mobility-param",
                "n_groups=2,3",
                "--mobility-param",
                "group_radius=40,80",
            )
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 simulations" in out
        assert "mobility=rpgm(group_radius=40,n_groups=2)" in out

    def test_registry_validation_at_parse_time(self, capsys):
        # A typo'd parameter name fails with the registry's message
        # before any simulation starts.
        assert main(self._args("--mobility-param", "n_grps=2,3")) == 2
        err = capsys.readouterr().err
        assert "does not accept" in err and "n_groups" in err

    def test_requires_mobility(self, capsys):
        assert (
            main(["campaign", "--mobility-param", "n_groups=2,3"]) == 2
        )
        assert "--mobility" in capsys.readouterr().err

    def test_malformed_and_duplicate_entries_rejected(self, capsys):
        assert main(self._args("--mobility-param", "n_groups")) == 2
        assert "name=v1,v2" in capsys.readouterr().err
        assert main(self._args("--mobility-param", "n_groups=2,2")) == 2
        assert "duplicate" in capsys.readouterr().err
        assert (
            main(
                self._args(
                    "--mobility-param",
                    "n_groups=2,3",
                    "--mobility-param",
                    "n_groups=4,5",
                )
            )
            == 2
        )
        assert "given twice" in capsys.readouterr().err

    def test_conflicts_with_suite(self, capsys):
        assert (
            main(
                [
                    "campaign",
                    "--suite",
                    "convoy",
                    "--mobility-param",
                    "n_groups=2,3",
                ]
            )
            == 2
        )
        assert "--mobility-param" in capsys.readouterr().err


class TestOrchestrateCli:
    def _args(self, run_dir, *extra):
        return [
            "campaign",
            "orchestrate",
            "--name",
            "cli-orch",
            "--radii",
            "100,150",
            "--node-counts",
            "10",
            "--protocols",
            "glr",
            "--replicates",
            "1",
            "--messages",
            "2",
            "--sim-time",
            "15",
            "--shards",
            "2",
            "--poll-interval",
            "0.05",
            "--dir",
            str(run_dir),
            *extra,
        ]

    def test_orchestrate_runs_and_merges(self, capsys, tmp_path):
        assert main(self._args(tmp_path / "run")) == 0
        out = capsys.readouterr().out
        assert "orchestrating campaign cli-orch" in out
        assert "2 simulations" in out
        assert "orchestrated (static scheduler): 2 shard(s)" in out
        assert (tmp_path / "run" / "campaign.jsonl").exists()
        assert "cli-orch/radius=100.0" in out

    def test_orchestrate_shape_flags_validated(self, capsys, tmp_path):
        args = self._args(tmp_path)
        args[args.index("glr")] = "warp_drive"
        assert main(args) == 2
        assert "unknown protocol" in capsys.readouterr().err

    def test_orchestrate_bad_shards_exit_2(self, capsys, tmp_path):
        args = self._args(tmp_path)
        args[args.index("--shards") + 1] = "0"
        assert main(args) == 2
        assert "shards" in capsys.readouterr().err

    def test_orchestrate_stealing_runs_and_reports(self, capsys, tmp_path):
        code = main(
            self._args(
                tmp_path / "steal",
                "--scheduler",
                "stealing",
                "--steal-threshold",
                "1",
                "--lease-batch",
                "1",
            )
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "orchestrated (stealing scheduler): 2 shard(s)" in out
        assert "lease(s) stolen" in out
        assert "summary: shard 0" in out
        assert (tmp_path / "steal" / "campaign.jsonl").exists()
        assert (tmp_path / "steal" / "shard0.tasks.json").exists()

    def test_orchestrate_unknown_scheduler_rejected(self, tmp_path):
        with pytest.raises(SystemExit):  # argparse choices
            main(self._args(tmp_path, "--scheduler", "round-robin"))

    def test_orchestrate_chaos_slow_validated(self, capsys, tmp_path):
        args = self._args(
            tmp_path, "--chaos-slow-shard", "5", "--chaos-slow-s", "0.1"
        )
        assert main(args) == 2
        assert "chaos_slow_shard" in capsys.readouterr().err


class TestHostedOrchestrateCli:
    """`--hosts`: distributed orchestration over transport specs."""

    def _args(self, run_dir, *extra):
        return [
            "campaign",
            "orchestrate",
            "--name",
            "cli-hosted",
            "--radii",
            "100,150",
            "--node-counts",
            "10",
            "--protocols",
            "glr",
            "--replicates",
            "1",
            "--messages",
            "2",
            "--sim-time",
            "15",
            "--poll-interval",
            "0.05",
            "--dir",
            str(run_dir),
            *extra,
        ]

    def test_bad_host_spec_rejected_at_parse_time(self, tmp_path):
        # argparse `type` validation: the parser itself exits 2 before
        # any spec expansion or run-dir creation happens.
        with pytest.raises(SystemExit) as excinfo:
            main(self._args(tmp_path / "r", "--hosts", "@nonsense"))
        assert excinfo.value.code == 2
        assert not (tmp_path / "r").exists()

    def test_empty_hosts_rejected_at_parse_time(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(self._args(tmp_path, "--hosts", ""))
        assert excinfo.value.code == 2

    def test_hosts_conflicts_with_shards(self, capsys, tmp_path):
        args = self._args(
            tmp_path, "--shards", "2", "--hosts", f"store:{tmp_path}/h0"
        )
        assert main(args) == 2
        assert "exactly one of --shards or --hosts" in (
            capsys.readouterr().err
        )

    def test_one_of_shards_or_hosts_required(self, capsys, tmp_path):
        assert main(self._args(tmp_path)) == 2
        assert "exactly one of --shards or --hosts" in (
            capsys.readouterr().err
        )

    def test_hosts_conflicts_with_static_scheduler(self, capsys, tmp_path):
        args = self._args(
            tmp_path,
            "--hosts",
            f"store:{tmp_path}/h0",
            "--scheduler",
            "static",
        )
        assert main(args) == 2
        assert "--scheduler static conflicts with --hosts" in (
            capsys.readouterr().err
        )

    def test_hosts_conflicts_with_per_shard_chaos(self, capsys, tmp_path):
        args = self._args(
            tmp_path,
            "--hosts",
            f"store:{tmp_path}/h0",
            "--chaos-kill-shard",
            "0",
        )
        assert main(args) == 2
        assert "--chaos-kill-host" in capsys.readouterr().err

    def test_chaos_kill_host_needs_hosts(self, capsys, tmp_path):
        args = self._args(
            tmp_path, "--shards", "2", "--chaos-kill-host", "0"
        )
        assert main(args) == 2
        assert "--chaos-kill-host needs --hosts" in capsys.readouterr().err

    def test_orchestrates_over_store_hosts(self, capsys, tmp_path):
        hosts = f"store:{tmp_path}/h0,store:{tmp_path}/h1"
        assert main(
            self._args(tmp_path / "run", "--hosts", hosts)
        ) == 0
        out = capsys.readouterr().out
        assert "2 host(s)" in out
        assert (
            "orchestrated (stealing scheduler"
            " across 2 host(s)): 2 shard(s)" in out
        )
        assert (tmp_path / "run" / "campaign.jsonl").exists()
        assert "cli-hosted/radius=100.0" in out
        # The workers ran against the store roots.
        assert (tmp_path / "h0" / "spec.json").exists()
        assert (tmp_path / "h1" / "spec.json").exists()

    def test_chaos_kill_host_recovers_end_to_end(self, capsys, tmp_path):
        hosts = f"store:{tmp_path}/h0,store:{tmp_path}/h1"
        code = main(
            self._args(
                tmp_path / "run",
                "--hosts",
                hosts,
                "--chaos-kill-host",
                "0",
                "--chaos-kill-after",
                "0",
                "--steal-threshold",
                "1",
                "--lease-batch",
                "1",
            )
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vanished" in out
        assert "reclaim: moved" in out
        assert (tmp_path / "run" / "campaign.jsonl").exists()

    def test_watch_dir_reads_mirrored_multi_host_run(
        self, capsys, tmp_path
    ):
        hosts = f"store:{tmp_path}/h0,store:{tmp_path}/h1"
        assert main(
            self._args(tmp_path / "run", "--hosts", hosts)
        ) == 0
        capsys.readouterr()
        # The run dir holds supervisor-side mirrors named exactly like
        # local shard streams, so watch --dir needs no new flags.
        assert main(
            ["campaign", "watch", "--dir", str(tmp_path / "run"), "--once"]
        ) == 0
        out = capsys.readouterr().out
        assert "cli-hosted" in out


class TestTasksCli:
    """`repro campaign --tasks FILE`: the stealing scheduler's worker
    mode, driven directly against a hand-written assignment file."""

    def _spec_and_keys(self):
        from repro.experiments.campaign import (
            CampaignSpec,
            campaign_spec_hash,
            task_key,
        )
        from repro.experiments.scenarios import Scenario

        spec = CampaignSpec(
            name="cli-tasks",
            base=Scenario(
                name="cli-tasks",
                n_nodes=10,
                active_nodes=5,
                message_count=2,
                sim_time=15.0,
                seed=3,
            ),
            protocols=("glr",),
            replicates=2,
        )
        keys = [
            task_key(task)
            for _, cell_spec in spec.cell_specs()
            for task in cell_spec.tasks()
        ]
        return spec, campaign_spec_hash(spec), keys

    def _write_spec(self, tmp_path, spec):
        import json as jsonlib

        spec_file = tmp_path / "spec.json"
        spec_file.write_text(jsonlib.dumps(spec.to_dict()))
        return spec_file

    def _run_args(self, spec_file, tasks_file, stream, *extra):
        return [
            "campaign",
            "--spec",
            str(spec_file),
            "--tasks",
            str(tasks_file),
            "--stream",
            str(stream),
            "--quiet",
            *extra,
        ]

    def test_executes_exactly_the_listed_tasks(self, capsys, tmp_path):
        from repro.experiments.scheduler import write_assignment
        from repro.experiments.stream import load_stream

        spec, spec_hash, keys = self._spec_and_keys()
        spec_file = self._write_spec(tmp_path, spec)
        tasks_file = tmp_path / "w0.tasks.json"
        write_assignment(
            tasks_file, 0, spec_hash, keys[:1], batch=1, closed=True
        )
        stream = tmp_path / "w0.jsonl"
        assert main(self._run_args(spec_file, tasks_file, stream)) == 0
        out = capsys.readouterr().out
        assert "leased subset" in out
        info = load_stream(stream, quarantine=False)
        assert [r["key"] for r in info.records] == keys[:1]

    def test_reruns_skip_recorded_tasks(self, capsys, tmp_path):
        from repro.experiments.scheduler import write_assignment
        from repro.experiments.stream import load_stream

        spec, spec_hash, keys = self._spec_and_keys()
        spec_file = self._write_spec(tmp_path, spec)
        tasks_file = tmp_path / "w0.tasks.json"
        write_assignment(
            tasks_file, 0, spec_hash, keys, batch=2, closed=True
        )
        stream = tmp_path / "w0.jsonl"
        assert main(self._run_args(spec_file, tasks_file, stream)) == 0
        before = stream.read_bytes()
        capsys.readouterr()
        assert main(self._run_args(spec_file, tasks_file, stream)) == 0
        assert "stream: 2 tasks resumed" in capsys.readouterr().out
        assert stream.read_bytes() == before
        assert len(load_stream(stream, quarantine=False).records) == len(
            keys
        )

    def test_requires_stream(self, capsys, tmp_path):
        spec, spec_hash, keys = self._spec_and_keys()
        spec_file = self._write_spec(tmp_path, spec)
        assert (
            main(
                [
                    "campaign",
                    "--spec",
                    str(spec_file),
                    "--tasks",
                    str(tmp_path / "w0.tasks.json"),
                ]
            )
            == 2
        )
        assert "--stream" in capsys.readouterr().err

    def test_conflicts_with_shard_flags(self, capsys, tmp_path):
        spec, spec_hash, keys = self._spec_and_keys()
        spec_file = self._write_spec(tmp_path, spec)
        assert (
            main(
                self._run_args(
                    spec_file,
                    tmp_path / "w0.tasks.json",
                    tmp_path / "s.jsonl",
                    "--shard-index",
                    "0",
                    "--shard-count",
                    "2",
                )
            )
            == 2
        )
        assert "one or the other" in capsys.readouterr().err

    def test_mismatched_assignment_spec_hash_exits_3(
        self, capsys, tmp_path
    ):
        from repro.experiments.scheduler import write_assignment

        spec, _, keys = self._spec_and_keys()
        spec_file = self._write_spec(tmp_path, spec)
        tasks_file = tmp_path / "w0.tasks.json"
        write_assignment(
            tasks_file, 0, "f" * 64, keys[:1], batch=1, closed=True
        )
        code = main(
            self._run_args(
                spec_file, tasks_file, tmp_path / "w0.jsonl"
            )
        )
        assert code == 3
        assert "refusing to mix" in capsys.readouterr().err

    def test_orphaned_worker_exits_4_when_assignment_goes_quiet(
        self, capsys, tmp_path
    ):
        from repro.experiments.scheduler import write_assignment

        spec, spec_hash, _ = self._spec_and_keys()
        spec_file = self._write_spec(tmp_path, spec)
        tasks_file = tmp_path / "w0.tasks.json"
        # No pending work, not closed, and nobody ever touches the
        # file again: exactly what a SIGKILLed supervisor leaves
        # behind.  The worker must exit (code 4), not poll forever.
        write_assignment(
            tasks_file, 0, spec_hash, [], batch=1, closed=False
        )
        code = main(
            self._run_args(
                spec_file, tasks_file, tmp_path / "w0.jsonl",
                "--wait-timeout", "0.3",
            )
        )
        assert code == 4
        assert "supervisor" in capsys.readouterr().err

    def test_negative_wait_timeout_rejected(self, capsys, tmp_path):
        # A typo'd negative must not silently mean "wait forever"
        # (only 0 is the documented sentinel for that).
        spec, spec_hash, _ = self._spec_and_keys()
        spec_file = self._write_spec(tmp_path, spec)
        code = main(
            self._run_args(
                spec_file, tmp_path / "w0.tasks.json",
                tmp_path / "w0.jsonl", "--wait-timeout", "-5",
            )
        )
        assert code == 2
        assert "--wait-timeout" in capsys.readouterr().err

    def test_wait_timeout_without_tasks_rejected(self, capsys, tmp_path):
        # Only the --tasks worker has an idle wait to bound; accepting
        # the flag elsewhere would arm nothing while looking armed.
        spec, _, _ = self._spec_and_keys()
        spec_file = self._write_spec(tmp_path, spec)
        code = main(
            [
                "campaign",
                "--spec",
                str(spec_file),
                "--stream",
                str(tmp_path / "w.jsonl"),
                "--quiet",
                "--wait-timeout",
                "60",
            ]
        )
        assert code == 2
        assert "--tasks" in capsys.readouterr().err

    def test_unknown_task_keys_exit_3(self, capsys, tmp_path):
        from repro.experiments.scheduler import write_assignment

        spec, spec_hash, _ = self._spec_and_keys()
        spec_file = self._write_spec(tmp_path, spec)
        tasks_file = tmp_path / "w0.tasks.json"
        write_assignment(
            tasks_file, 0, spec_hash, ["f" * 64], batch=1, closed=True
        )
        code = main(
            self._run_args(
                spec_file, tasks_file, tmp_path / "w0.jsonl"
            )
        )
        assert code == 3
        assert "does not expand to" in capsys.readouterr().err


class TestWatchCli:
    def _write_stream(self, tmp_path, capsys):
        stream = tmp_path / "w.jsonl"
        args = [
            "campaign",
            "--name",
            "cli-watch",
            "--node-counts",
            "10",
            "--protocols",
            "glr",
            "--replicates",
            "2",
            "--messages",
            "2",
            "--sim-time",
            "15",
            "--quiet",
            "--stream",
            str(stream),
        ]
        assert main(args) == 0
        capsys.readouterr()
        return stream

    def test_watch_once_renders_partial_aggregate(self, capsys, tmp_path):
        stream = self._write_stream(tmp_path, capsys)
        assert main(["campaign", "watch", str(stream), "--once"]) == 0
        out = capsys.readouterr().out
        assert "2/2 tasks recorded" in out
        assert "cli-watch" in out

    def test_watch_dir_globs_shard_streams(self, capsys, tmp_path):
        stream = self._write_stream(tmp_path, capsys)
        stream.rename(tmp_path / "shard0.jsonl")
        assert main(
            ["campaign", "watch", "--dir", str(tmp_path), "--once"]
        ) == 0
        assert "tasks recorded" in capsys.readouterr().out

    def test_watch_needs_streams_or_dir_not_both(self, capsys, tmp_path):
        assert main(["campaign", "watch"]) == 2
        assert "one or the other" in capsys.readouterr().err
        assert (
            main(
                ["campaign", "watch", "x.jsonl", "--dir", str(tmp_path)]
            )
            == 2
        )
        assert "one or the other" in capsys.readouterr().err

    def test_watch_once_with_no_streams_yet_exits_2(self, capsys, tmp_path):
        assert (
            main(["campaign", "watch", "--dir", str(tmp_path), "--once"])
            == 2
        )
        assert "no campaign streams" in capsys.readouterr().err
