"""Tests for the command-line interface."""

import pytest

from repro.cli import EFFORTS, EXPERIMENTS, main


class TestList:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "glr" in out
        assert "bench" in out

    def test_every_paper_artifact_has_an_experiment(self):
        for name in (
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
        ):
            assert name in EXPERIMENTS

    def test_efforts_registered(self):
        assert set(EFFORTS) == {"bench", "spot", "paper"}


class TestRun:
    def test_quick_run(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "glr",
                "--radius",
                "150",
                "--messages",
                "3",
                "--sim-time",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delivery ratio" in out
        assert "messages created    3" in out

    def test_run_with_storage_limit(self, capsys):
        code = main(
            [
                "run",
                "--protocol",
                "epidemic",
                "--messages",
                "3",
                "--sim-time",
                "20",
                "--storage-limit",
                "5",
            ]
        )
        assert code == 0

    def test_bad_protocol_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--protocol", "nonsense"])


class TestExperiment:
    def test_fig1_experiment(self, capsys):
        assert main(["experiment", "fig1", "--effort", "bench"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out
        assert "components" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])
