"""Tests for the campaign orchestrator: supervise, requeue, watch.

The orchestrator's contract: one call fans a campaign out over real
worker subprocesses and the collected result is bit-identical to a
serial run — through worker death (chaos SIGKILL), run-dir resume, and
permanently failing shards (clean abort with the worker's log tail).
The watcher is strictly read-only: partial aggregates with honest run
counts, and it never mutates or repairs a live stream.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.experiments import orchestrator as orchestrator_module
from repro.experiments.campaign import (
    CampaignSpec,
    campaign_spec_hash,
    run_campaign,
    task_key,
)
from repro.experiments.orchestrator import (
    OrchestratorError,
    orchestrate_campaign,
    render_watch,
    watch_view,
)
from repro.experiments.scenarios import Scenario
from repro.experiments.stream import StreamError, stream_task_count
from repro.seeding import shard_sizes

TINY = Scenario(
    name="orch-tiny",
    n_nodes=10,
    active_nodes=5,
    radius=150.0,
    message_count=2,
    sim_time=15.0,
    seed=3,
)

#: 2 radii x 2 protocols x 2 replicates = 8 tasks; small enough that a
#: full orchestrated run (subprocess workers included) takes seconds.
SPEC = CampaignSpec(
    name="orch",
    base=TINY,
    grid=(("radius", (120.0, 180.0)),),
    protocols=("glr", "epidemic"),
    replicates=2,
)


@pytest.fixture(scope="module")
def orchestrated(tmp_path_factory):
    """One orchestrated run of SPEC, shared by the read-only tests."""
    run_dir = tmp_path_factory.mktemp("orchestrated")
    events: list[str] = []
    outcome = orchestrate_campaign(
        SPEC,
        shards=2,
        run_dir=run_dir,
        poll_interval=0.05,
        on_event=events.append,
    )
    return outcome, events, run_dir


@pytest.fixture(scope="module")
def serial_reference():
    return run_campaign(SPEC)


class TestOrchestratedRun:
    def test_matches_serial_reference_bit_for_bit(
        self, orchestrated, serial_reference
    ):
        outcome, _, _ = orchestrated
        assert outcome.result.render() == serial_reference.render()
        assert outcome.result.metrics == serial_reference.metrics

    def test_shard_accounting_covers_every_task(self, orchestrated):
        outcome, _, _ = orchestrated
        expected = [status.expected_tasks for status in outcome.shards]
        assert sum(expected) == SPEC.total_tasks()
        keys = [
            task_key(task)
            for _, cell_spec in SPEC.cell_specs()
            for task in cell_spec.tasks()
        ]
        assert expected == shard_sizes(keys, 2)
        for status in outcome.shards:
            if status.expected_tasks:
                assert status.state == "done"
                assert status.recorded == status.expected_tasks
            else:
                assert status.state == "empty"
                assert status.attempts == 0

    def test_merged_stream_holds_every_record(self, orchestrated):
        outcome, _, run_dir = orchestrated
        assert outcome.merged_stream == run_dir / "campaign.jsonl"
        assert stream_task_count(outcome.merged_stream) == SPEC.total_tasks()

    def test_run_dir_artifacts(self, orchestrated):
        outcome, _, run_dir = orchestrated
        spec_doc = json.loads((run_dir / "spec.json").read_text())
        restored = CampaignSpec.from_dict(spec_doc)
        assert campaign_spec_hash(restored) == campaign_spec_hash(SPEC)
        for status in outcome.shards:
            if status.expected_tasks:
                assert status.stream.exists()
                assert status.heartbeat.exists()
                assert status.log.exists()

    def test_events_narrate_launch_and_completion(self, orchestrated):
        _, events, _ = orchestrated
        assert any(event.startswith("launched shard") for event in events)
        assert any("done" in event for event in events)
        assert any("merged" in event for event in events)

    def test_final_summary_reports_per_shard_attempts(self, orchestrated):
        # Requeues used to be the only rebalancing that surfaced; the
        # final summary now carries per-shard attempt counts too.
        outcome, events, _ = orchestrated
        for status in outcome.shards:
            assert any(
                event.startswith(f"summary: shard {status.index}: ")
                and f"{status.attempts} attempt(s)" in event
                for event in events
            )
        assert outcome.scheduler == "static"
        assert outcome.steals == 0

    def test_rerun_with_same_dir_resumes_streams_untouched(
        self, orchestrated
    ):
        outcome, _, run_dir = orchestrated
        before = {
            status.stream: status.stream.read_bytes()
            for status in outcome.shards
            if status.expected_tasks
        }
        events: list[str] = []
        again = orchestrate_campaign(
            SPEC,
            shards=2,
            run_dir=run_dir,
            poll_interval=0.05,
            on_event=events.append,
        )
        # The relaunched workers stream-resume: every task is already
        # recorded, so the shard streams do not change by one byte.
        for stream, payload in before.items():
            assert stream.read_bytes() == payload
        assert any("resuming" in event for event in events)
        assert again.result.render() == outcome.result.render()

    def test_mismatched_run_dir_is_refused(self, orchestrated, tmp_path):
        _, _, run_dir = orchestrated
        other = CampaignSpec(
            name="orch", base=TINY, protocols=("glr",), replicates=1
        )
        with pytest.raises(StreamError, match="spec hash"):
            orchestrate_campaign(
                other, shards=2, run_dir=run_dir, poll_interval=0.05
            )


class TestChaosRecovery:
    def test_sigkilled_worker_is_requeued_and_campaign_completes(
        self, tmp_path, serial_reference
    ):
        events: list[str] = []
        outcome = orchestrate_campaign(
            SPEC,
            shards=2,
            run_dir=tmp_path / "chaos",
            poll_interval=0.05,
            on_event=events.append,
            chaos_kill_shard=0,
            chaos_kill_after=0,  # at launch: deterministic
        )
        assert any("chaos: SIGKILL shard 0" in event for event in events)
        assert any("requeuing" in event for event in events)
        assert outcome.requeues >= 1
        assert outcome.shards[0].attempts >= 2
        # Recovery is invisible in the result: still bit-identical.
        assert outcome.result.render() == serial_reference.render()
        assert outcome.result.metrics == serial_reference.metrics

    def test_chaos_shard_must_exist(self, tmp_path):
        with pytest.raises(ValueError, match="chaos_kill_shard"):
            orchestrate_campaign(
                SPEC, shards=2, run_dir=tmp_path, chaos_kill_shard=5
            )


class TestFailureHandling:
    def test_persistently_failing_shard_aborts_with_log_tail(
        self, tmp_path, monkeypatch
    ):
        # Replace the worker command with one that dies instantly, so
        # the abort path runs without simulating anything.
        monkeypatch.setattr(
            orchestrator_module,
            "_worker_command",
            lambda *args, **kwargs: [
                sys.executable,
                "-c",
                "print('worker log line'); raise SystemExit(7)",
            ],
        )
        with pytest.raises(OrchestratorError, match="shard") as excinfo:
            orchestrate_campaign(
                SPEC,
                shards=1,
                run_dir=tmp_path,
                poll_interval=0.05,
                max_attempts=2,
            )
        message = str(excinfo.value)
        assert "[7, 7]" in message  # both attempts' exit codes
        assert "worker log line" in message  # the log tail is surfaced

    def test_bad_scheduler_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="scheduler"):
            orchestrate_campaign(
                SPEC, shards=2, run_dir=tmp_path, scheduler="round-robin"
            )
        with pytest.raises(ValueError, match="lease_batch"):
            orchestrate_campaign(
                SPEC, shards=2, run_dir=tmp_path, lease_batch=0
            )
        with pytest.raises(ValueError, match="steal_threshold"):
            orchestrate_campaign(
                SPEC, shards=2, run_dir=tmp_path, steal_threshold=0
            )
        with pytest.raises(ValueError, match="chaos_slow_shard"):
            orchestrate_campaign(
                SPEC, shards=2, run_dir=tmp_path, chaos_slow_shard=5
            )
        with pytest.raises(ValueError, match="chaos_slow_s"):
            orchestrate_campaign(
                SPEC, shards=2, run_dir=tmp_path,
                chaos_slow_shard=0, chaos_slow_s=0.0,
            )

    def test_bad_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="shards"):
            orchestrate_campaign(SPEC, shards=0, run_dir=tmp_path)
        with pytest.raises(ValueError, match="workers_per_shard"):
            orchestrate_campaign(
                SPEC, shards=1, run_dir=tmp_path, workers_per_shard=0
            )
        with pytest.raises(ValueError, match="max_attempts"):
            orchestrate_campaign(
                SPEC, shards=1, run_dir=tmp_path, max_attempts=0
            )
        with pytest.raises(ValueError, match="max_concurrent"):
            orchestrate_campaign(
                SPEC, shards=2, run_dir=tmp_path, max_concurrent=0
            )
        with pytest.raises(ValueError, match="poll_interval"):
            orchestrate_campaign(
                SPEC, shards=1, run_dir=tmp_path, poll_interval=0.0
            )
        with pytest.raises(ValueError, match="stall_timeout"):
            orchestrate_campaign(
                SPEC, shards=1, run_dir=tmp_path, stall_timeout=0.0
            )


class TestStealingScheduler:
    """Supervision behaviours specific to ``scheduler="stealing"``.

    (Result equivalence through steals, slow shards, and mid-steal
    worker death lives in ``test_equivalence.py``.)
    """

    def test_every_shard_launches_even_with_an_empty_partition(
        self, tmp_path, serial_reference
    ):
        # A tiny campaign can leave a shard's hash partition empty;
        # under stealing that worker still launches — an idle worker
        # is a steal target, not noise.
        tiny = CampaignSpec(
            name="orch", base=TINY, protocols=("glr",), replicates=1
        )
        events: list[str] = []
        outcome = orchestrate_campaign(
            tiny,
            shards=4,
            run_dir=tmp_path / "wide",
            poll_interval=0.05,
            scheduler="stealing",
            on_event=events.append,
        )
        assert all(status.attempts >= 1 for status in outcome.shards)
        assert sum(s.recorded for s in outcome.shards) == tiny.total_tasks()
        assert any("closing assignments" in event for event in events)

    def test_max_concurrent_below_shards_reclaims_queued_leases(
        self, tmp_path, serial_reference
    ):
        # Regression: with fewer slots than shards, the launched
        # workers used to go idle waiting on never-closed assignment
        # files while the queued slots' keep-window leases could never
        # move — a silent deadlock.  A queued slot has no worker in
        # flight, so its leases are reclaimed wholesale onto the idle
        # live workers and the campaign completes on one slot.
        events: list[str] = []
        outcome = orchestrate_campaign(
            SPEC,
            shards=3,
            run_dir=tmp_path / "capped",
            poll_interval=0.05,
            scheduler="stealing",
            max_concurrent=1,
            on_event=events.append,
        )
        assert any(
            event.startswith("reclaim: moved") for event in events
        )
        assert outcome.steals >= 1
        assert sum(s.recorded for s in outcome.shards) >= (
            SPEC.total_tasks()
        )
        assert outcome.result.render() == serial_reference.render()
        assert outcome.result.metrics == serial_reference.metrics

    def test_assignment_files_live_next_to_the_streams(self, tmp_path):
        run_dir = tmp_path / "run"
        outcome = orchestrate_campaign(
            SPEC,
            shards=2,
            run_dir=run_dir,
            poll_interval=0.05,
            scheduler="stealing",
        )
        assert outcome.scheduler == "stealing"
        for status in outcome.shards:
            assert (run_dir / f"shard{status.index}.tasks.json").exists()
            assert status.stream.exists()

    def test_finished_run_dir_resumes_without_running_anything(
        self, tmp_path, serial_reference
    ):
        run_dir = tmp_path / "resume"
        first = orchestrate_campaign(
            SPEC, shards=2, run_dir=run_dir, poll_interval=0.05,
            scheduler="stealing",
        )
        before = {
            status.stream: status.stream.read_bytes()
            for status in first.shards
            if status.stream.exists()
        }
        events: list[str] = []
        again = orchestrate_campaign(
            SPEC, shards=2, run_dir=run_dir, poll_interval=0.05,
            scheduler="stealing", on_event=events.append,
        )
        # Everything was recorded already: zero launches, streams
        # untouched, same aggregate.
        assert all(status.attempts == 0 for status in again.shards)
        for stream, payload in before.items():
            assert stream.read_bytes() == payload
        assert any("resuming" in event for event in events)
        assert again.result.render() == serial_reference.render()

    def test_mismatched_run_dir_is_refused(self, tmp_path):
        run_dir = tmp_path / "mismatch"
        orchestrate_campaign(
            SPEC, shards=2, run_dir=run_dir, poll_interval=0.05,
            scheduler="stealing",
        )
        other = CampaignSpec(
            name="orch", base=TINY, protocols=("glr",), replicates=1
        )
        with pytest.raises(StreamError, match="spec hash"):
            orchestrate_campaign(
                other, shards=2, run_dir=run_dir, poll_interval=0.05,
                scheduler="stealing",
            )

    def test_persistently_failing_worker_aborts_with_log_tail(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr(
            orchestrator_module,
            "_worker_command",
            lambda *args, **kwargs: [
                sys.executable,
                "-c",
                "print('stealing worker log'); raise SystemExit(9)",
            ],
        )
        with pytest.raises(OrchestratorError, match="shard") as excinfo:
            orchestrate_campaign(
                SPEC,
                shards=1,
                run_dir=tmp_path,
                poll_interval=0.05,
                max_attempts=2,
                scheduler="stealing",
            )
        message = str(excinfo.value)
        assert "[9, 9]" in message
        assert "stealing worker log" in message


class TestWatch:
    """watch_view over in-process shard streams (no subprocesses)."""

    @pytest.fixture()
    def shard_streams(self, tmp_path):
        streams = []
        for index in range(2):
            stream = tmp_path / f"shard{index}.jsonl"
            run_campaign(
                SPEC,
                stream_path=stream,
                shard_index=index,
                shard_count=2,
            )
            streams.append(stream)
        return streams

    def test_partial_view_reports_honest_counts(self, shard_streams):
        view = watch_view(shard_streams[:1])
        assert view.total == SPEC.total_tasks()
        assert 0 < view.done < view.total
        assert not view.finished
        assert view.total_cells == len(SPEC.cells())
        rendered = render_watch(view)
        assert f"{view.done}/{view.total} tasks recorded" in rendered

    def test_full_view_matches_live_aggregate(
        self, shard_streams, serial_reference
    ):
        view = watch_view(shard_streams)
        assert view.finished
        assert view.complete_cells == view.total_cells
        assert view.result.render() == serial_reference.render()

    def test_watching_never_mutates_a_live_stream(self, shard_streams):
        # Simulate a worker mid-append: torn tail on one stream.
        with open(shard_streams[0], "a") as handle:
            handle.write('{"kind": "task", "key": "in-fli')
        before = [stream.read_bytes() for stream in shard_streams]
        view = watch_view(shard_streams)
        assert view.result.stream_damaged >= 1
        assert "skipped" in render_watch(view)
        assert [s.read_bytes() for s in shard_streams] == before
        for stream in shard_streams:
            sidecar = stream.with_name(stream.name + ".quarantined")
            assert not sidecar.exists()

    def test_empty_cells_render_as_waiting(self, tmp_path):
        from repro.experiments.stream import init_stream

        stream = tmp_path / "fresh.jsonl"
        init_stream(stream, campaign_spec_hash(SPEC), SPEC.to_dict())
        view = watch_view([stream])
        assert view.done == 0 and not view.finished
        assert "no task records yet" in render_watch(view)

    def test_mixed_campaign_streams_refused(self, shard_streams, tmp_path):
        other_spec = CampaignSpec(
            name="other", base=TINY, protocols=("glr",), replicates=1
        )
        other = tmp_path / "other.jsonl"
        run_campaign(other_spec, stream_path=other)
        with pytest.raises(StreamError, match="spec hash"):
            watch_view([shard_streams[0], other])

    def test_no_streams_refused(self):
        with pytest.raises(StreamError, match="nothing to watch"):
            watch_view([])


class TestSpawnLeakFix:
    """A failed worker launch must not leak the already-open log handle."""

    @pytest.mark.parametrize("scheduler", ["static", "stealing"])
    def test_launch_failure_closes_log_handle(
        self, tmp_path, monkeypatch, scheduler
    ):
        import builtins

        opened: list = []
        real_open = builtins.open

        def tracking_open(file, *args, **kwargs):
            handle = real_open(file, *args, **kwargs)
            if str(file).endswith(".log"):
                opened.append(handle)
            return handle

        def exploding_popen(*args, **kwargs):
            raise OSError("simulated launch failure")

        monkeypatch.setattr(builtins, "open", tracking_open)
        monkeypatch.setattr(
            orchestrator_module.subprocess, "Popen", exploding_popen
        )
        with pytest.raises(OSError, match="simulated launch failure"):
            orchestrate_campaign(
                SPEC,
                shards=2,
                run_dir=tmp_path / "run",
                poll_interval=0.05,
                scheduler=scheduler,
            )
        assert opened, "the launch path never opened a worker log"
        assert all(handle.closed for handle in opened)


class TestHostsValidation:
    def test_hosts_and_shards_conflict(self, tmp_path):
        with pytest.raises(ValueError, match="hosts or shards"):
            orchestrate_campaign(
                SPEC, shards=2, run_dir=tmp_path,
                hosts=[f"store:{tmp_path}/h0"],
            )

    def test_one_of_hosts_or_shards_required(self, tmp_path):
        with pytest.raises(ValueError, match="shards is required"):
            orchestrate_campaign(SPEC, run_dir=tmp_path)

    def test_run_dir_required(self):
        with pytest.raises(ValueError, match="run_dir"):
            orchestrate_campaign(SPEC, shards=2)

    def test_per_shard_chaos_conflicts_with_hosts(self, tmp_path):
        with pytest.raises(ValueError, match="single-machine only"):
            orchestrate_campaign(
                SPEC, run_dir=tmp_path,
                hosts=[f"store:{tmp_path}/h0"], chaos_kill_shard=0,
            )
        with pytest.raises(ValueError, match="single-machine only"):
            orchestrate_campaign(
                SPEC, run_dir=tmp_path,
                hosts=[f"store:{tmp_path}/h0"], chaos_slow_shard=0,
            )

    def test_chaos_kill_host_needs_hosts(self, tmp_path):
        with pytest.raises(ValueError, match="hosts mode"):
            orchestrate_campaign(
                SPEC, shards=2, run_dir=tmp_path, chaos_kill_host=0
            )

    def test_chaos_kill_host_must_be_a_slot(self, tmp_path):
        with pytest.raises(ValueError, match="chaos_kill_host"):
            orchestrate_campaign(
                SPEC, run_dir=tmp_path,
                hosts=[f"store:{tmp_path}/h0"], chaos_kill_host=1,
            )

    def test_duplicate_hosts_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="twice"):
            orchestrate_campaign(
                SPEC, run_dir=tmp_path,
                hosts=[f"store:{tmp_path}/h0", f"store:{tmp_path}/h0"],
            )

    def test_bad_host_spec_rejected_before_anything_runs(self, tmp_path):
        with pytest.raises(ValueError, match="host spec"):
            orchestrate_campaign(SPEC, run_dir=tmp_path / "r", hosts=["@bad"])
        assert not (tmp_path / "r").exists()


class TestHostedOrchestration:
    """Cross-machine orchestration over ObjectStoreTransport pseudo-hosts.

    A pseudo-host is just a store root whose worker is a local
    subprocess — the full transport path (spec push, assignment push,
    stream/heartbeat mirror pull, remote-root worker command) runs
    exactly as it would against a real fleet, minus the network.
    """

    def test_two_hosts_match_serial_bit_for_bit(
        self, tmp_path, serial_reference
    ):
        events: list[str] = []
        outcome = orchestrate_campaign(
            SPEC,
            run_dir=tmp_path / "run",
            hosts=[f"store:{tmp_path}/h0", f"store:{tmp_path}/h1"],
            poll_interval=0.05,
            on_event=events.append,
        )
        assert outcome.scheduler == "stealing"
        assert outcome.hosts == (
            f"store:{tmp_path}/h0", f"store:{tmp_path}/h1",
        )
        assert outcome.result.render() == serial_reference.render()
        assert outcome.result.metrics == serial_reference.metrics
        # The workers really ran against the store roots, not the
        # run dir: each host holds its own stream object...
        from repro.experiments.transport import ObjectStoreTransport

        stored = [
            ObjectStoreTransport(tmp_path / f"h{index}").list()
            for index in range(2)
        ]
        assert any(f"shard{i}.jsonl" in keys
                   for i, keys in enumerate(stored))
        assert all("spec.json" in keys for keys in stored)
        # ...and the run dir holds the supervisor-side mirrors.
        assert (tmp_path / "run" / "shard0.jsonl").exists() or (
            tmp_path / "run" / "shard1.jsonl"
        ).exists()

    def test_host_killed_at_launch_reclaims_onto_survivor(
        self, tmp_path, serial_reference
    ):
        """chaos_kill_after=0 vanishes the host deterministically at
        launch: every one of its leases must reclaim onto the
        survivor and the final aggregate stay byte-identical."""
        events: list[str] = []
        outcome = orchestrate_campaign(
            SPEC,
            run_dir=tmp_path / "run",
            hosts=[f"store:{tmp_path}/h0", f"store:{tmp_path}/h1"],
            poll_interval=0.05,
            on_event=events.append,
            chaos_kill_host=0,
            chaos_kill_after=0,
        )
        lost = outcome.shards[0]
        assert lost.state == "lost"
        assert lost.requeues == 1
        assert any("vanished" in event for event in events)
        assert any("requeuing" in event for event in events)
        assert any(event.startswith("reclaim: moved") for event in events)
        assert outcome.result.render() == serial_reference.render()
        assert outcome.result.metrics == serial_reference.metrics

    def test_elastic_join_gets_leases_mid_campaign(
        self, tmp_path, serial_reference
    ):
        """A host appended to hosts.json mid-run registers a slot and
        work rebalances onto it through the normal steal path."""
        run_dir = tmp_path / "run"
        events: list[str] = []
        joined = {"done": False}

        def on_event(message: str) -> None:
            events.append(message)
            if not joined["done"] and message.startswith("launched shard"):
                joined["done"] = True
                (run_dir / "hosts.json").write_text(
                    json.dumps({"join": [f"store:{tmp_path}/h-late"]}),
                    encoding="utf-8",
                )

        outcome = orchestrate_campaign(
            SPEC,
            run_dir=run_dir,
            hosts=[f"store:{tmp_path}/h0"],
            poll_interval=0.05,
            lease_batch=1,
            steal_threshold=1,
            on_event=on_event,
        )
        assert len(outcome.shards) == 2
        assert outcome.hosts == (
            f"store:{tmp_path}/h0", f"store:{tmp_path}/h-late",
        )
        assert any(
            event.startswith("join: host") and "registered as shard 1"
            in event
            for event in events
        )
        late = outcome.shards[1]
        assert late.attempts >= 1
        assert late.stolen_to >= 1
        assert late.recorded >= 1
        assert outcome.result.render() == serial_reference.render()
        assert outcome.result.metrics == serial_reference.metrics

    def test_join_of_bad_spec_burns_the_entry_not_the_run(
        self, tmp_path, serial_reference
    ):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "hosts.json").write_text(
            json.dumps({"join": ["@nonsense"]}), encoding="utf-8"
        )
        events: list[str] = []
        outcome = orchestrate_campaign(
            SPEC,
            run_dir=run_dir,
            hosts=[f"store:{tmp_path}/h0"],
            poll_interval=0.05,
            on_event=events.append,
        )
        assert any(event.startswith("join: bad host spec") for event in events)
        assert len(outcome.shards) == 1
        assert outcome.result.metrics == serial_reference.metrics
