"""Tests for the campaign engine: specs, cache, parallel determinism."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.protocol import GLRConfig
from repro.experiments.campaign import (
    CACHE_FORMAT,
    CampaignSpec,
    ReplicateSpec,
    ReplicateTask,
    ResultCache,
    execute_tasks,
    run_campaign,
    run_replicate_specs,
    task_key,
    task_payload,
)
from repro.experiments.runner import run_replicates
from repro.experiments.scenarios import Scenario
from repro.mobility.registry import MobilityConfig
from repro.sim.adversary import AdversaryConfig

#: Small enough that a full grid with replicates finishes in seconds.
TINY = Scenario(
    name="tiny",
    n_nodes=12,
    active_nodes=6,
    radius=150.0,
    message_count=4,
    sim_time=25.0,
    seed=3,
)


def metrics_fingerprint(metrics):
    """Everything observable about a run, for exact comparisons."""
    return dataclasses.asdict(metrics)


class TestTaskKey:
    def test_stable_for_equal_tasks(self):
        a = ReplicateTask(TINY, "glr", 0)
        b = ReplicateTask(TINY.but(), "glr", 0)
        assert task_key(a) == task_key(b)

    def test_differs_by_seed_protocol_and_config(self):
        base = ReplicateTask(TINY, "glr", 0)
        assert task_key(base) != task_key(
            ReplicateTask(TINY.with_seed(99), "glr", 0)
        )
        assert task_key(base) != task_key(ReplicateTask(TINY, "epidemic", 0))
        assert task_key(base) != task_key(
            ReplicateTask(TINY, "glr", 0, glr_config=GLRConfig(custody=False))
        )
        assert task_key(base) != task_key(
            ReplicateTask(TINY, "glr", 0, buffer_limit=5)
        )

    def test_scenario_name_is_not_code_relevant(self):
        renamed = ReplicateTask(TINY.but(name="other-name"), "glr", 0)
        assert task_key(ReplicateTask(TINY, "glr", 0)) == task_key(renamed)
        assert "name" not in task_payload(renamed)["scenario"]

    def test_payload_is_json_round_trippable(self):
        task = ReplicateTask(
            TINY, "glr", 0, glr_config=GLRConfig(copies_override=3)
        )
        payload = task_payload(task)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["format"] == CACHE_FORMAT

    def test_mobility_config_is_cache_relevant(self):
        base = ReplicateTask(TINY, "glr", 0)
        keys = {
            task_key(ReplicateTask(TINY.but(mobility=m), "glr", 0))
            for m in (
                "rwp",
                "gauss_markov",
                MobilityConfig.of("rpgm", n_groups=2),
                MobilityConfig.of("rpgm", n_groups=5),
            )
        }
        keys.add(task_key(base))  # mobility=None (paper RWP path)
        assert len(keys) == 5

    def test_equivalent_mobility_forms_share_a_key(self):
        a = ReplicateTask(TINY.but(mobility="gauss-markov"), "glr", 0)
        b = ReplicateTask(
            TINY.but(mobility={"model": "gauss_markov"}), "glr", 0
        )
        c = ReplicateTask(
            TINY.but(mobility=MobilityConfig.of("gauss_markov")), "glr", 0
        )
        assert task_key(a) == task_key(b) == task_key(c)
        payload = task_payload(a)
        assert json.loads(json.dumps(payload)) == payload


class TestReplicateSpec:
    def test_tasks_use_replicate_seed_rule(self):
        spec = ReplicateSpec(scenario=TINY, protocol="glr", runs=3)
        seeds = [t.scenario.seed for t in spec.tasks()]
        assert seeds == [TINY.seed, TINY.seed + 1000, TINY.seed + 2000]

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            ReplicateSpec(scenario=TINY, protocol="glr", runs=0)


class TestCache:
    def _one_task(self):
        return ReplicateSpec(scenario=TINY, protocol="glr", runs=1).tasks()[0]

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._one_task()
        [metrics] = execute_tasks([task], cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        loaded = cache.load(task)
        assert loaded == metrics
        assert cache.hits == 1

    def test_cached_entry_is_actually_used(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._one_task()
        execute_tasks([task], cache=cache)
        # Tamper with a stored metric: if the second execution returns
        # the sentinel, it came from the cache, not a re-simulation.
        path = cache.path_for(task_key(task))
        payload = json.loads(path.read_text())
        payload["metrics"]["events_processed"] = 987654321
        path.write_text(json.dumps(payload))
        [resumed] = execute_tasks([task], cache=cache)
        assert resumed.events_processed == 987654321

    def test_corrupt_json_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._one_task()
        [metrics] = execute_tasks([task], cache=cache)
        path = cache.path_for(task_key(task))
        path.write_text("{ not json !!!")
        [recomputed] = execute_tasks([task], cache=cache)
        assert recomputed == metrics
        # ... and the corrupt entry was repaired in place.
        assert cache.load(task) == metrics

    def test_partial_entry_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._one_task()
        [metrics] = execute_tasks([task], cache=cache)
        path = cache.path_for(task_key(task))
        payload = json.loads(path.read_text())
        del payload["metrics"]["delivery_ratio"]
        path.write_text(json.dumps(payload))
        assert cache.load(task) is None
        [recomputed] = execute_tasks([task], cache=cache)
        assert recomputed == metrics

    def test_extra_field_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._one_task()
        execute_tasks([task], cache=cache)
        path = cache.path_for(task_key(task))
        payload = json.loads(path.read_text())
        payload["metrics"]["bogus_field"] = 1
        path.write_text(json.dumps(payload))
        assert cache.load(task) is None

    def test_format_version_mismatch_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._one_task()
        execute_tasks([task], cache=cache)
        path = cache.path_for(task_key(task))
        payload = json.loads(path.read_text())
        payload["format"] = CACHE_FORMAT + 1
        path.write_text(json.dumps(payload))
        assert cache.load(task) is None

    def test_protocol_mismatch_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._one_task()
        execute_tasks([task], cache=cache)
        path = cache.path_for(task_key(task))
        payload = json.loads(path.read_text())
        payload["metrics"]["protocol"] = "epidemic"
        path.write_text(json.dumps(payload))
        assert cache.load(task) is None

    def test_per_node_storage_keys_restored_as_ints(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._one_task()
        [metrics] = execute_tasks([task], cache=cache)
        loaded = cache.load(task)
        assert loaded.per_node_peak_storage == metrics.per_node_peak_storage
        assert all(
            isinstance(k, int) for k in loaded.per_node_peak_storage
        )


class TestDeterminism:
    def test_parallel_matches_serial_per_replicate(self):
        """Core hazard check: workers=4 must be bit-identical to serial."""
        spec = ReplicateSpec(scenario=TINY, protocol="glr", runs=4)
        [serial] = run_replicate_specs([spec], workers=1)
        [parallel] = run_replicate_specs([spec], workers=4)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert metrics_fingerprint(s) == metrics_fingerprint(p)

    def test_engine_matches_run_replicates_reference(self):
        """The serial reference path and the engine agree exactly."""
        reference = run_replicates(TINY, "glr", runs=2)
        spec = ReplicateSpec(scenario=TINY, protocol="glr", runs=2)
        [engine] = run_replicate_specs([spec], workers=2)
        for r, e in zip(reference, engine):
            assert metrics_fingerprint(r) == metrics_fingerprint(e)

    def test_run_replicates_workers_path_identical(self):
        reference = run_replicates(TINY, "epidemic", runs=2)
        parallel = run_replicates(TINY, "epidemic", runs=2, workers=2)
        for r, p in zip(reference, parallel):
            assert metrics_fingerprint(r) == metrics_fingerprint(p)

    def test_run_replicates_cache_dir_path(self, tmp_path):
        first = run_replicates(
            TINY, "glr", runs=2, cache_dir=str(tmp_path)
        )
        second = run_replicates(
            TINY, "glr", runs=2, cache_dir=str(tmp_path)
        )
        for a, b in zip(first, second):
            assert metrics_fingerprint(a) == metrics_fingerprint(b)


class TestExecuteTasks:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            execute_tasks([], workers=0)

    def test_preserves_input_order(self):
        specs = [
            ReplicateSpec(scenario=TINY, protocol="glr", runs=2),
            ReplicateSpec(
                scenario=TINY.but(radius=100.0), protocol="epidemic", runs=2
            ),
        ]
        tasks = [t for s in specs for t in s.tasks()]
        results = execute_tasks(tasks, workers=4)
        for task, metrics in zip(tasks, results):
            assert metrics.protocol == task.protocol

    def test_progress_reports_every_task(self, tmp_path):
        spec = ReplicateSpec(scenario=TINY, protocol="glr", runs=3)
        events = []
        execute_tasks(
            spec.tasks(),
            cache=ResultCache(tmp_path),
            progress=events.append,
        )
        assert [e.done for e in events] == [1, 2, 3]
        assert all(e.total == 3 and not e.cached for e in events)
        events.clear()
        execute_tasks(
            spec.tasks(),
            cache=ResultCache(tmp_path),
            progress=events.append,
        )
        assert all(e.cached for e in events)


class TestCampaignSpec:
    def _spec(self):
        return CampaignSpec(
            name="grid",
            base=TINY,
            grid=(("radius", (100.0, 150.0)), ("message_count", (2, 4))),
            protocols=("glr", "epidemic"),
            replicates=2,
        )

    def test_grid_expansion(self):
        spec = self._spec()
        scenarios = spec.scenarios()
        assert len(scenarios) == 4
        assert scenarios[0].name == "grid/radius=100.0,message_count=2"
        assert spec.total_tasks() == 4 * 2 * 2

    def test_empty_grid_is_single_scenario(self):
        spec = CampaignSpec(name="solo", base=TINY)
        assert [s.name for s in spec.scenarios()] == ["solo"]

    def test_rejects_unknown_protocol_and_field(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="x", base=TINY, protocols=("warp",))
        with pytest.raises(ValueError):
            CampaignSpec(name="x", base=TINY, grid=(("warp_factor", (1,)),))
        with pytest.raises(ValueError):
            CampaignSpec(name="x", base=TINY, replicates=0)

    def test_rejects_duplicate_grid_values(self):
        # Duplicate values would expand to identically named cells that
        # silently overwrite each other in the campaign result map.
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(
                name="x", base=TINY, grid=(("radius", (100.0, 100.0)),)
            )

    def test_dict_round_trip(self):
        spec = self._spec()
        rebuilt = CampaignSpec.from_dict(spec.to_dict())
        assert rebuilt == spec

    def test_from_dict_region_pair(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "doc",
                "base": {"region": [800, 200], "n_nodes": 10,
                         "active_nodes": 5},
                "grid": {"radius": [50.0, 100.0]},
                "protocols": ["glr"],
                "replicates": 2,
            }
        )
        assert spec.base.region.width == 800.0
        assert len(spec.scenarios()) == 2

    def test_from_dict_rejects_unknown_base_field(self):
        with pytest.raises(ValueError):
            CampaignSpec.from_dict({"name": "x", "base": {"warp": 9}})


class TestMobilityAxis:
    """The tentpole acceptance: one spec sweeping >= 4 movement models."""

    def _spec(self, replicates=1):
        return CampaignSpec(
            name="mob",
            base=TINY,
            grid=(
                ("mobility", ("rwp", "gauss-markov", "rpgm", "manhattan")),
            ),
            protocols=("glr",),
            replicates=replicates,
        )

    def test_grid_values_coerced_to_configs(self):
        spec = self._spec()
        (field, values), = spec.grid
        assert field == "mobility"
        assert all(isinstance(v, MobilityConfig) for v in values)
        names = [s.name for s in spec.scenarios()]
        assert names == [
            "mob/mobility=random_waypoint",
            "mob/mobility=gauss_markov",
            "mob/mobility=rpgm",
            "mob/mobility=manhattan",
        ]

    def test_duplicate_models_rejected_across_forms(self):
        # "rwp" and "random_waypoint" are the same model; the coerced
        # values must collide in the duplicate check.
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(
                name="dup",
                base=TINY,
                grid=(("mobility", ("rwp", "random_waypoint")),),
            )

    def test_parallel_matches_serial_across_models(self):
        spec = self._spec()
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=4)
        assert set(serial.metrics) == set(parallel.metrics)
        assert len(serial.metrics) == 4
        for cell in serial.metrics:
            for s, p in zip(serial.metrics[cell], parallel.metrics[cell]):
                assert metrics_fingerprint(s) == metrics_fingerprint(p)

    def test_cache_resume_is_bit_identical(self, tmp_path):
        spec = self._spec()
        cold = run_campaign(spec, workers=2, cache_dir=tmp_path)
        assert cold.cache_misses == 4 and cold.cache_hits == 0
        resumed = run_campaign(spec, workers=2, cache_dir=tmp_path)
        assert resumed.cache_hits == 4 and resumed.cache_misses == 0
        for cell in cold.metrics:
            for a, b in zip(cold.metrics[cell], resumed.metrics[cell]):
                assert metrics_fingerprint(a) == metrics_fingerprint(b)

    def test_dict_round_trip_with_mobility(self):
        spec = CampaignSpec(
            name="rt",
            base=TINY.but(mobility="gauss-markov"),
            grid=(
                (
                    "mobility",
                    (
                        MobilityConfig.of("rpgm", n_groups=2),
                        MobilityConfig.of("manhattan", blocks_x=4),
                    ),
                ),
            ),
            protocols=("glr",),
            replicates=2,
        )
        document = json.loads(json.dumps(spec.to_dict()))
        assert CampaignSpec.from_dict(document) == spec


class TestRunCampaign:
    def test_end_to_end_with_cache_resume(self, tmp_path):
        spec = CampaignSpec(
            name="e2e",
            base=TINY,
            grid=(("radius", (100.0, 150.0)),),
            protocols=("glr", "epidemic"),
            replicates=3,
        )
        first = run_campaign(spec, workers=2, cache_dir=tmp_path)
        assert first.cache_misses == spec.total_tasks() == 12
        assert first.cache_hits == 0
        assert set(first.metrics) == {
            (scenario.name, str(protocol))
            for scenario in spec.scenarios()
            for protocol in spec.protocols
        }

        resumed = run_campaign(spec, workers=2, cache_dir=tmp_path)
        assert resumed.cache_hits == 12
        assert resumed.cache_misses == 0
        for cell, runs in first.metrics.items():
            for a, b in zip(runs, resumed.metrics[cell]):
                assert metrics_fingerprint(a) == metrics_fingerprint(b)
        assert "100.0% hit rate" in resumed.cache_line()

    def test_summaries_and_render(self, tmp_path):
        spec = CampaignSpec(name="render", base=TINY, replicates=2)
        result = run_campaign(spec, cache_dir=tmp_path)
        summaries = result.summaries()
        assert ("render", "glr") in summaries
        assert summaries[("render", "glr")].runs == 2
        text = result.render()
        assert "render" in text and "glr" in text
        assert "cache:" in result.cache_line()

    def test_cache_line_disabled_without_cache_dir(self):
        spec = CampaignSpec(name="nocache", base=TINY, replicates=1)
        result = run_campaign(spec)
        assert result.cache_line() == "cache: disabled"


class TestTasksWorkerIdleTimeout:
    """The ``--tasks`` worker's orphan bound: a quiet, unclosed
    assignment file means the supervisor died — the worker must stop
    polling after ``wait_timeout`` instead of orbiting forever."""

    def _spec(self):
        return CampaignSpec(name="idle", base=TINY, replicates=1)

    def _empty_assignment(self, tmp_path, spec, closed=False, version=0):
        from repro.experiments.campaign import campaign_spec_hash
        from repro.experiments.scheduler import write_assignment

        tasks_file = tmp_path / "w0.tasks.json"
        write_assignment(
            tasks_file, 0, campaign_spec_hash(spec), [], batch=1,
            closed=closed, version=version,
        )
        return tasks_file

    def test_quiet_unclosed_assignment_times_out(self, tmp_path):
        from repro.experiments.scheduler import AssignmentIdleTimeout

        spec = self._spec()
        tasks_file = self._empty_assignment(tmp_path, spec)
        with pytest.raises(AssignmentIdleTimeout, match="supervisor"):
            run_campaign(
                spec,
                stream_path=tmp_path / "w0.jsonl",
                tasks_file=tasks_file,
                wait_interval=0.05,
                wait_timeout=0.2,
            )

    def test_supervisor_touches_reset_the_idle_clock(self, tmp_path):
        import os
        import threading
        import time as time_module

        from repro.experiments.campaign import campaign_spec_hash
        from repro.experiments.scheduler import write_assignment

        spec = self._spec()
        tasks_file = self._empty_assignment(tmp_path, spec)

        def supervisor():
            # Freshen the file's mtime well past the worker's timeout
            # (the live supervisor's per-tick beacon), then close it.
            # The timeout is several multiples of the touch period (and
            # of a 1 s coarse-mtime granularity), so a loaded machine
            # cannot flake this into a spurious AssignmentIdleTimeout.
            deadline = time_module.monotonic() + 2.5
            while time_module.monotonic() < deadline:
                os.utime(tasks_file)
                time_module.sleep(0.1)
            write_assignment(
                tasks_file, 0, campaign_spec_hash(spec), [], batch=1,
                closed=True, version=1,
            )

        thread = threading.Thread(target=supervisor)
        thread.start()
        try:
            result = run_campaign(
                spec,
                stream_path=tmp_path / "w0.jsonl",
                tasks_file=tasks_file,
                wait_interval=0.05,
                wait_timeout=1.5,
            )
        finally:
            thread.join()
        assert result.metrics == {}  # nothing leased, clean exit

    def test_bad_wait_timeout_rejected(self, tmp_path):
        spec = self._spec()
        tasks_file = self._empty_assignment(tmp_path, spec, closed=True)
        with pytest.raises(ValueError, match="wait_timeout"):
            run_campaign(
                spec,
                stream_path=tmp_path / "w0.jsonl",
                tasks_file=tasks_file,
                wait_timeout=0.0,
            )


class TestProtocolAxis:
    """The v2 tentpole: protocol-config variants as a sweep axis."""

    def _spec(self):
        from repro.experiments.protocols import ProtocolConfig

        return CampaignSpec(
            name="proto",
            base=TINY,
            protocols=(
                "glr",
                ProtocolConfig.of("glr", custody=False),
                {"protocol": "epidemic", "params": {"request_batch": 4}},
            ),
            replicates=1,
        )

    def test_protocols_coerced_to_configs(self):
        from repro.experiments.protocols import ProtocolConfig

        spec = self._spec()
        assert all(isinstance(p, ProtocolConfig) for p in spec.protocols)
        labels = [str(p) for p in spec.protocols]
        assert labels == [
            "glr",
            "glr(custody=False)",
            "epidemic(request_batch=4)",
        ]

    def test_duplicate_variants_rejected_across_forms(self):
        from repro.experiments.protocols import ProtocolConfig

        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(
                name="dup",
                base=TINY,
                protocols=("glr", ProtocolConfig.of("glr")),
            )

    def test_bad_param_fails_at_spec_load(self):
        with pytest.raises(ValueError, match="does not accept"):
            CampaignSpec(
                name="x",
                base=TINY,
                protocols=({"protocol": "glr", "chek_interval": 1.0},),
            )

    def test_same_protocol_different_configs_distinct_cells(self):
        spec = self._spec()
        result = run_campaign(spec)
        assert set(result.metrics) == {
            ("proto", "glr"),
            ("proto", "glr(custody=False)"),
            ("proto", "epidemic(request_batch=4)"),
        }

    def test_variant_metrics_match_explicit_config_runs(self):
        from repro.experiments.protocols import ProtocolConfig
        from repro.experiments.runner import run_single

        spec = CampaignSpec(
            name="match",
            base=TINY,
            protocols=(ProtocolConfig.of("glr", custody=False),),
            replicates=1,
        )
        result = run_campaign(spec)
        [[campaign_metrics]] = result.metrics.values()
        direct = run_single(
            TINY, "glr", glr_config=GLRConfig(custody=False)
        )
        assert metrics_fingerprint(campaign_metrics) == metrics_fingerprint(
            direct
        )

    def test_dict_round_trip_with_protocol_params(self):
        spec = self._spec()
        document = json.loads(json.dumps(spec.to_dict()))
        assert CampaignSpec.from_dict(document) == spec

    def test_plain_protocols_serialise_as_strings(self):
        spec = CampaignSpec(
            name="plain", base=TINY, protocols=("glr", "epidemic")
        )
        assert spec.to_dict()["protocols"] == ["glr", "epidemic"]

    def test_task_keys_distinct_per_variant(self):
        spec = self._spec()
        keys = {task_key(t) for s in spec.specs() for t in s.tasks()}
        assert len(keys) == spec.total_tasks()

    def test_paramless_config_normalises_to_none_in_spec(self):
        # ReplicateSpec(protocol="glr") and
        # ReplicateSpec(..., protocol_config=ProtocolConfig.of("glr"))
        # are the same logical cell; their tasks must share cache keys
        # and stream identities.
        from repro.experiments.protocols import ProtocolConfig

        bare = ReplicateSpec(scenario=TINY, protocol="glr", runs=1)
        via_config = ReplicateSpec(
            scenario=TINY,
            protocol="glr",
            runs=1,
            protocol_config=ProtocolConfig.of("glr"),
        )
        assert via_config.protocol_config is None
        assert task_key(via_config.tasks()[0]) == task_key(
            bare.tasks()[0]
        )

    def test_spec_rejects_protocol_config_plus_concrete_config(self):
        # The conflict must surface at spec build time, not inside a
        # worker process mid-campaign.
        from repro.experiments.protocols import ProtocolConfig

        with pytest.raises(ValueError, match="not both"):
            ReplicateSpec(
                scenario=TINY,
                protocol="glr",
                glr_config=GLRConfig(custody=False),
                protocol_config=ProtocolConfig.of("glr", custody=False),
            )

    def test_bare_variant_tasks_have_no_protocol_config(self):
        # ProtocolConfig with no params must key identically to the
        # pre-axis engine (and stay eligible for v2 cache migration).
        spec = CampaignSpec(
            name="bare", base=TINY, protocols=("glr",), replicates=1
        )
        [cell] = spec.specs()
        assert cell.protocol_config is None
        [task] = cell.tasks()
        assert task.protocol_config is None
        assert task.protocol_label == "glr"


class TestGridOrderRoundTrip:
    def test_grid_axis_order_survives_sorted_json(self):
        """Sorted-key JSON encoders must not reorder sweep axes."""
        spec = CampaignSpec(
            name="order",
            base=TINY,
            # 'radius' sorts after 'message_count'; an object-shaped
            # grid would flip them and rename every cell.
            grid=(("radius", (100.0, 150.0)), ("message_count", (2, 4))),
            replicates=1,
        )
        document = json.loads(json.dumps(spec.to_dict(), sort_keys=True))
        rebuilt = CampaignSpec.from_dict(document)
        assert rebuilt == spec
        assert [s.name for s in rebuilt.scenarios()] == [
            s.name for s in spec.scenarios()
        ]

    def test_mapping_grid_still_accepted(self):
        spec = CampaignSpec.from_dict(
            {
                "name": "legacy",
                "base": {"n_nodes": 10, "active_nodes": 5,
                         "message_count": 2, "sim_time": 15.0},
                "grid": {"radius": [100.0, 150.0]},
                "protocols": ["glr"],
                "replicates": 1,
            }
        )
        assert len(spec.scenarios()) == 2


class TestMergeCaches:
    def test_union_copies_missing_entries(self, tmp_path):
        from repro.experiments.campaign import merge_caches

        spec = ReplicateSpec(scenario=TINY, protocol="glr", runs=2)
        tasks = spec.tasks()
        cache_a = ResultCache(tmp_path / "a")
        cache_b = ResultCache(tmp_path / "b")
        execute_tasks(tasks[:1], cache=cache_a)
        execute_tasks(tasks[1:], cache=cache_b)

        copied = merge_caches(
            tmp_path / "union", [tmp_path / "a", tmp_path / "b"]
        )
        assert copied == 2
        union = ResultCache(tmp_path / "union")
        assert union.load(tasks[0]) is not None
        assert union.load(tasks[1]) is not None

    def test_existing_entries_not_recopied(self, tmp_path):
        from repro.experiments.campaign import merge_caches

        spec = ReplicateSpec(scenario=TINY, protocol="glr", runs=1)
        cache = ResultCache(tmp_path / "a")
        execute_tasks(spec.tasks(), cache=cache)
        assert merge_caches(tmp_path / "u", [tmp_path / "a"]) == 1
        assert merge_caches(tmp_path / "u", [tmp_path / "a"]) == 0

    def test_missing_dir_rejected(self, tmp_path):
        from repro.experiments.campaign import merge_caches

        with pytest.raises(ValueError, match="does not exist"):
            merge_caches(tmp_path / "u", [tmp_path / "nope"])


class TestAdversaryAxis:
    """Adversary injection as a campaign axis with stable cache keys."""

    def _spec(self, replicates=1):
        return CampaignSpec(
            name="adv",
            base=TINY,
            grid=(
                ("adversary", (None, "blackhole:0.25", "liar:0.25")),
            ),
            protocols=("epidemic",),
            replicates=replicates,
        )

    def test_grid_values_coerced_to_configs(self):
        spec = self._spec()
        (field, values), = spec.grid
        assert field == "adversary"
        assert values[0] is None
        assert all(
            isinstance(v, AdversaryConfig) for v in values[1:]
        )
        names = [s.name for s in spec.scenarios()]
        assert names == [
            "adv/adversary=none",
            "adv/adversary=blackhole:0.25",
            "adv/adversary=location_lying:0.25",
        ]

    def test_adversary_is_cache_relevant(self):
        base = ReplicateTask(TINY, "epidemic", 0)
        keys = {
            task_key(
                ReplicateTask(TINY.but(adversary=a), "epidemic", 0)
            )
            for a in (
                "blackhole:0.1",
                "blackhole:0.3",
                "selective_drop:0.3",
                AdversaryConfig.of("selective_drop", 0.3, drop_rate=0.9),
            )
        }
        keys.add(task_key(base))
        assert len(keys) == 5

    def test_honest_cell_keys_like_pre_axis_tasks(self):
        # fraction=0 and "no adversary" are the same spelling: honest
        # tasks must hit caches written before the axis existed.
        honest = ReplicateTask(
            TINY.but(adversary="blackhole:0"), "epidemic", 0
        )
        assert task_key(honest) == task_key(
            ReplicateTask(TINY, "epidemic", 0)
        )
        assert "adversary" not in task_payload(honest)["scenario"]

    def test_equivalent_forms_share_a_key(self):
        a = ReplicateTask(TINY.but(adversary="greyhole:0.25"), "epidemic", 0)
        b = ReplicateTask(
            TINY.but(adversary={"mode": "selective_drop", "fraction": 0.25}),
            "epidemic",
            0,
        )
        assert task_key(a) == task_key(b)
        payload = task_payload(a)
        assert json.loads(json.dumps(payload)) == payload

    def test_parallel_matches_serial_across_cells(self):
        spec = self._spec()
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=3)
        assert set(serial.metrics) == set(parallel.metrics)
        assert len(serial.metrics) == 3
        for cell in serial.metrics:
            for s, p in zip(serial.metrics[cell], parallel.metrics[cell]):
                assert metrics_fingerprint(s) == metrics_fingerprint(p)

    def test_cache_resume_is_bit_identical(self, tmp_path):
        spec = self._spec()
        cold = run_campaign(spec, workers=2, cache_dir=tmp_path)
        assert cold.cache_misses == 3 and cold.cache_hits == 0
        resumed = run_campaign(spec, workers=2, cache_dir=tmp_path)
        assert resumed.cache_hits == 3 and resumed.cache_misses == 0
        for cell in cold.metrics:
            for a, b in zip(cold.metrics[cell], resumed.metrics[cell]):
                assert metrics_fingerprint(a) == metrics_fingerprint(b)

    def test_duplicate_specs_rejected_across_forms(self):
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(
                name="dup",
                base=TINY,
                grid=(
                    ("adversary", ("greyhole:0.2", "selective_drop:0.2")),
                ),
            )

    def test_dict_round_trip_with_adversary(self):
        spec = CampaignSpec(
            name="rt",
            base=TINY.but(adversary="blackhole:0.2"),
            grid=(
                (
                    "adversary",
                    (
                        None,
                        AdversaryConfig.of(
                            "selective_drop", 0.3, drop_rate=0.9
                        ),
                    ),
                ),
            ),
            protocols=("epidemic",),
            replicates=2,
        )
        document = json.loads(json.dumps(spec.to_dict()))
        assert CampaignSpec.from_dict(document) == spec

    def test_delivery_degrades_across_the_axis(self):
        result = run_campaign(self._spec(), workers=3)
        by_cell = {
            scenario: summary.delivery_ratio.mean
            for (scenario, _), summary in result.summaries().items()
        }
        honest = by_cell["adv/adversary=none"]
        assert by_cell["adv/adversary=blackhole:0.25"] < honest
