"""Smoke tests for the figure/table experiment drivers.

Each driver runs at a tiny effort and must return well-formed,
paper-comparable output.  Shape assertions (who wins) are reserved for
the benchmarks, which run at higher effort; here we assert structure
and basic sanity so the drivers stay correct under refactoring.
"""

import pytest

from repro.experiments import ablations, figures, tables
from repro.experiments.common import Effort

TINY = Effort(runs=1, sim_time=120.0, message_count=20)


class TestFig1:
    def test_structure_and_story(self):
        result = figures.fig1_topology(runs=3, seed=1)
        assert result.xs == [250.0, 100.0]
        comp_250, comp_100 = result.series["components"]
        assert comp_250.mean < comp_100.mean  # 250 m far more connected
        frac_250, frac_100 = result.series["reachable_pair_fraction"]
        assert frac_250.mean > frac_100.mean
        assert "fig1" in result.render()


class TestFig3:
    @pytest.mark.slow
    def test_returns_one_latency_per_interval(self):
        result = figures.fig3_check_interval(
            intervals=(0.6, 1.2), effort=TINY
        )
        assert result.xs == [0.6, 1.2]
        assert len(result.series["glr_latency_s"]) == 2
        for ci in result.series["glr_latency_s"]:
            assert ci.mean >= 0.0


class TestLoadFigures:
    @pytest.mark.slow
    def test_fig5_structure(self):
        result = figures.fig5_latency_vs_load(loads=(10, 20), effort=TINY)
        assert result.xs == [10.0, 20.0]
        assert set(result.series) == {"glr_latency_s", "epidemic_latency_s"}

    @pytest.mark.slow
    def test_fig4_uses_50m(self):
        result = figures.fig4_latency_vs_load(loads=(10,), effort=TINY)
        assert "50m" in result.title


class TestFig6:
    @pytest.mark.slow
    def test_latency_decreases_with_radius(self):
        result = figures.fig6_latency_vs_radius(
            radii=(100.0, 250.0), effort=TINY
        )
        glr = result.series["glr_latency_s"]
        assert glr[1].mean <= glr[0].mean * 1.5  # broadly non-increasing


class TestFig7:
    @pytest.mark.slow
    def test_delivery_ratios_in_range(self):
        result = figures.fig7_delivery_vs_storage(
            limits=(5, 50), effort=TINY
        )
        for series in result.series.values():
            for ci in series:
                assert 0.0 <= ci.mean <= 1.0


class TestTables:
    @pytest.mark.slow
    def test_table2_has_four_rows(self):
        result = tables.table2_location(effort=TINY)
        assert len(result.rows) == 4
        rendered = result.render()
        assert "all nodes know" in rendered
        assert "no nodes know" in rendered

    @pytest.mark.slow
    def test_table3_custody_rows(self):
        result = tables.table3_custody(effort=TINY)
        labels = [row[0] for row in result.rows]
        assert labels == ["without", "with"]

    @pytest.mark.slow
    def test_table4_rows_per_load(self):
        result = tables.table4_storage_vs_load(loads=(10, 20), effort=TINY)
        assert [row[0] for row in result.rows] == ["10", "20"]

    @pytest.mark.slow
    def test_table5_rows_per_radius(self):
        result = tables.table5_storage_vs_radius(
            radii=(250.0, 100.0), effort=TINY
        )
        assert [row[0] for row in result.rows] == ["250", "100"]

    @pytest.mark.slow
    def test_table6_has_both_protocols(self):
        result = tables.table6_hops(radii=(150.0,), effort=TINY)
        assert result.headers == ["radius_m", "glr_hops", "epidemic_hops"]
        assert len(result.rows) == 1


class TestAblations:
    @pytest.mark.slow
    def test_copies_ablation_includes_algorithm1(self):
        result = ablations.ablation_copies(copy_counts=(1,), effort=TINY)
        labels = [row[0] for row in result.rows]
        assert labels == ["1", "algorithm-1"]

    @pytest.mark.slow
    def test_spanner_ablation_rows(self):
        result = ablations.ablation_spanner(effort=TINY)
        assert [row[0] for row in result.rows] == ["ldt", "udg"]

    @pytest.mark.slow
    def test_protocol_comparison_covers_all(self):
        result = ablations.ablation_protocols(effort=TINY)
        assert len(result.rows) == 5
