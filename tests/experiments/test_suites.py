"""Tests for the named cross-mobility scenario suites."""

import dataclasses

import pytest

from repro.experiments.campaign import run_campaign
from repro.experiments.common import Effort
from repro.experiments.suites import (
    CROSS_MOBILITY_MODELS,
    SUITES,
    available_suites,
    build_suite,
    suite_description,
)
#: Small enough that a whole-suite smoke run finishes in seconds.
TINY_EFFORT = Effort(runs=1, sim_time=15.0, message_count=2)

TINY_BASE = {"n_nodes": 10, "active_nodes": 5}


class TestSuiteCatalogue:
    def test_expected_suites_present(self):
        assert {
            "paper-table1",
            "cross-mobility",
            "sparse-dtn",
            "convoy",
            "urban-grid",
        } <= set(available_suites())

    def test_descriptions_exist(self):
        for name in available_suites():
            assert suite_description(name)

    def test_every_suite_builds_and_expands(self):
        for name in available_suites():
            spec = build_suite(name, seed=3, replicates=2)
            assert spec.total_tasks() > 0
            assert spec.replicates == 2
            assert all(s.seed == 3 for s in spec.scenarios())

    def test_cross_mobility_covers_four_models(self):
        assert len(CROSS_MOBILITY_MODELS) >= 4
        assert {m.model for m in CROSS_MOBILITY_MODELS} >= {
            "random_waypoint",
            "gauss_markov",
            "rpgm",
            "manhattan",
        }
        spec = build_suite("cross-mobility")
        (field, values), = spec.grid
        assert field == "mobility"
        assert values == CROSS_MOBILITY_MODELS

    def test_effort_scales_the_base_scenario(self):
        spec = build_suite("convoy", effort=TINY_EFFORT)
        assert spec.base.sim_time == TINY_EFFORT.sim_time
        assert spec.base.message_count == TINY_EFFORT.message_count

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            build_suite("does-not-exist")

    def test_base_overrides_patch_the_scenario(self):
        spec = build_suite(
            "urban-grid", effort=TINY_EFFORT, base_overrides=TINY_BASE
        )
        assert spec.base.n_nodes == 10
        assert spec.base.active_nodes == 5

    def test_builders_are_deterministic(self):
        for name in SUITES:
            assert build_suite(name, seed=7) == build_suite(name, seed=7)


class TestSuiteExecution:
    def test_cross_mobility_suite_runs_parallel_identical_to_serial(self):
        """Acceptance: a suite sweeping 4 movement models executes, and
        parallel runs are bit-identical to serial."""
        spec = build_suite(
            "cross-mobility",
            replicates=1,
            effort=TINY_EFFORT,
            base_overrides=TINY_BASE,
        )
        spec = dataclasses.replace(spec, protocols=("glr", "epidemic"))
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=4)
        assert len(serial.metrics) == 4 * 2  # 4 models x 2 protocols
        for cell in serial.metrics:
            for s, p in zip(serial.metrics[cell], parallel.metrics[cell]):
                assert dataclasses.asdict(s) == dataclasses.asdict(p)

    def test_convoy_suite_runs_through_cache(self, tmp_path):
        spec = build_suite(
            "convoy",
            replicates=1,
            effort=TINY_EFFORT,
            base_overrides=TINY_BASE,
        )
        cold = run_campaign(spec, cache_dir=tmp_path)
        resumed = run_campaign(spec, cache_dir=tmp_path)
        assert cold.cache_misses == spec.total_tasks()
        assert resumed.cache_hits == spec.total_tasks()
        for cell in cold.metrics:
            for a, b in zip(cold.metrics[cell], resumed.metrics[cell]):
                assert dataclasses.asdict(a) == dataclasses.asdict(b)


class TestMobilityXProtocolSuite:
    def test_present_and_described(self):
        assert "mobility-x-protocol" in available_suites()
        assert suite_description("mobility-x-protocol")

    def test_sweeps_protocol_configs_and_mobility_jointly(self):
        from repro.experiments.protocols import ProtocolConfig

        spec = build_suite("mobility-x-protocol", replicates=2)
        (field, values), = spec.grid
        assert field == "mobility"
        assert len(values) >= 2
        assert all(isinstance(p, ProtocolConfig) for p in spec.protocols)
        swept_fields = {
            name for p in spec.protocols for name, _ in p.params
        }
        assert {"custody", "check_interval"} <= swept_fields

    def test_runs_end_to_end_with_cache(self, tmp_path):
        spec = build_suite(
            "mobility-x-protocol",
            replicates=1,
            effort=TINY_EFFORT,
            base_overrides=TINY_BASE,
        )
        result = run_campaign(spec, workers=2, cache_dir=tmp_path)
        assert len(result.metrics) == len(spec.scenarios()) * len(
            spec.protocols
        )
        labels = {protocol for _, protocol in result.metrics}
        assert "glr(custody=False)" in labels
        assert "glr(check_interval=1.8)" in labels
        resumed = run_campaign(spec, workers=2, cache_dir=tmp_path)
        assert resumed.cache_hits == spec.total_tasks()
