"""Tests for the lease-based work-stealing scheduler.

The board's contracts: the initial assignment IS the static
``stable_shard`` partition (zero-steal runs are the static runs),
steals move only provably unstarted leases (beyond the keep window),
reclaim/lease compose for dead-worker requeues, and the planner is a
pure function whose zero-steal behaviour on balanced shards is
deterministic.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments.scheduler import (
    ASSIGNMENT_FORMAT,
    LeaseBoard,
    SchedulerError,
    assignment_path,
    plan_steals,
    read_assignment,
    write_assignment,
)
from repro.seeding import shard_partition

HASH = "c" * 64

KEYS = [f"task-{i:03d}" for i in range(20)]


def board_for(tmp_path, workers=2, batch=1, done=(), keys=KEYS):
    return LeaseBoard(
        keys,
        workers=workers,
        run_dir=tmp_path,
        spec_hash=HASH,
        batch=batch,
        done=done,
    )


class TestAssignmentFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "w0.tasks.json"
        write_assignment(
            path, worker=0, spec_hash=HASH, keys=["a", "b"], batch=2,
            closed=False, version=3,
        )
        doc = read_assignment(path)
        assert doc.worker == 0
        assert doc.spec_hash == HASH
        assert doc.keys == ("a", "b")
        assert doc.batch == 2
        assert doc.closed is False
        assert doc.version == 3

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(SchedulerError, match="cannot read"):
            read_assignment(tmp_path / "nope.json")

    def test_not_an_assignment_raises(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"some": "json"}')
        with pytest.raises(SchedulerError, match="not a scheduler"):
            read_assignment(path)

    def test_future_format_raises(self, tmp_path):
        path = tmp_path / "w0.tasks.json"
        write_assignment(path, 0, HASH, ["a"], batch=1)
        doc = json.loads(path.read_text())
        doc["format"] = ASSIGNMENT_FORMAT + 1
        path.write_text(json.dumps(doc))
        with pytest.raises(SchedulerError, match="format"):
            read_assignment(path)

    def test_malformed_fields_raise(self, tmp_path):
        path = tmp_path / "w0.tasks.json"
        write_assignment(path, 0, HASH, ["a"], batch=1)
        good = json.loads(path.read_text())
        for field, value in (
            ("keys", "not-a-list"),
            ("keys", ["a", "a"]),
            ("batch", 0),
            ("spec_hash", None),
        ):
            doc = dict(good)
            doc[field] = value
            path.write_text(json.dumps(doc))
            with pytest.raises(SchedulerError):
                read_assignment(path)


class TestLeaseBoardInitialAssignment:
    def test_equals_the_static_shard_partition(self, tmp_path):
        """The zero-steal contract: workers start from exactly the
        partition a static ``--shard-index`` run would execute."""
        board = board_for(tmp_path, workers=3)
        assert board.assignments == shard_partition(KEYS, 3)
        for worker in range(3):
            doc = read_assignment(board.path(worker))
            assert list(doc.keys) == shard_partition(KEYS, 3)[worker]
            assert not doc.closed

    def test_paths_live_next_to_the_spec(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        assert board.path(0) == assignment_path(tmp_path, 0)
        assert board.path(0).name == "shard0.tasks.json"

    def test_resume_excludes_done_keys(self, tmp_path):
        done = set(KEYS[:5])
        board = board_for(tmp_path, workers=2, done=done)
        for worker in range(2):
            assert not set(board.remaining(worker)) & done
            assert not set(read_assignment(board.path(worker)).keys) & done
        assert board.done == done

    def test_duplicate_keys_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unique"):
            board_for(tmp_path, keys=["a", "a"])

    def test_bad_arguments_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            board_for(tmp_path, workers=0)
        with pytest.raises(ValueError, match="batch"):
            board_for(tmp_path, batch=0)


class TestLeaseBoardProgress:
    def test_record_done_shrinks_remaining(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        key = board.assignments[0][0]
        board.record_done(key)
        assert key not in board.remaining(0)
        assert not board.complete

    def test_unknown_keys_ignored(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        board.record_done("not-a-campaign-key")
        assert "not-a-campaign-key" not in board.done

    def test_complete_when_every_key_recorded(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        for key in KEYS:
            board.record_done(key)
        assert board.complete

    def test_stealable_respects_the_keep_window(self, tmp_path):
        board = board_for(tmp_path, workers=1, batch=3)
        remaining = board.remaining(0)
        # The first `batch` keys may be in the worker's current
        # snapshot; only the rest are provably unstarted.
        assert board.stealable(0) == remaining[3:]

    def test_written_files_prune_done_keys(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        victim_keys = board.assignments[0]
        board.record_done(victim_keys[0])
        # Any rewrite (here: close) drops keys recorded elsewhere, so
        # a worker never re-runs work that already finished.
        board.close_all()
        doc = read_assignment(board.path(0))
        assert victim_keys[0] not in doc.keys
        assert doc.closed


class TestSteal:
    def test_moves_tail_keys_and_rewrites_both_files(self, tmp_path):
        board = board_for(tmp_path, workers=2, batch=1)
        victim_before = list(board.assignments[0])
        thief_before = list(board.assignments[1])
        moved = board.steal(0, 1, 2)
        assert moved == victim_before[-2:]
        assert board.assignments[0] == victim_before[:-2]
        assert board.assignments[1] == thief_before + moved
        assert list(read_assignment(board.path(0)).keys) == (
            victim_before[:-2]
        )
        assert list(read_assignment(board.path(1)).keys) == (
            thief_before + moved
        )
        # Versions bump on both sides.
        assert read_assignment(board.path(0)).version == 1
        assert read_assignment(board.path(1)).version == 1

    def test_never_takes_the_keep_window(self, tmp_path):
        board = board_for(tmp_path, workers=2, batch=2)
        victim = list(board.assignments[0])
        moved = board.steal(0, 1, len(KEYS))  # ask for everything
        assert board.assignments[0] == victim[:2]  # window survives
        assert moved == victim[2:]

    def test_steal_from_self_rejected(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        with pytest.raises(ValueError, match="itself"):
            board.steal(0, 0, 1)

    def test_nothing_stealable_moves_nothing(self, tmp_path):
        board = board_for(tmp_path, workers=2, batch=len(KEYS))
        assert board.steal(0, 1, 5) == []
        assert read_assignment(board.path(0)).version == 0

    def test_reclaim_takes_everything_including_the_window(self, tmp_path):
        board = board_for(tmp_path, workers=2, batch=5)
        victim = list(board.assignments[0])
        board.record_done(victim[0])
        reclaimed = board.reclaim(0)
        assert reclaimed == victim[1:]  # done keys are not reclaimed
        assert board.assignments[0] == []
        assert list(read_assignment(board.path(0)).keys) == []

    def test_reclaim_then_lease_requeues_elsewhere(self, tmp_path):
        """Dead-worker requeue composes: reclaim + lease."""
        board = board_for(tmp_path, workers=2)
        orphaned = board.reclaim(0)
        board.lease(1, orphaned)
        assert set(orphaned) <= set(board.assignments[1])
        assert set(orphaned) <= set(read_assignment(board.path(1)).keys)

    def test_lease_ignores_already_held_keys(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        held = list(board.assignments[1])
        board.lease(1, held[:2])
        assert board.assignments[1] == held


class TestPlanSteals:
    def test_balanced_shards_plan_nothing(self, tmp_path):
        """Zero-steal behaviour: no idle worker, no plan."""
        board = board_for(tmp_path, workers=2)
        assert plan_steals(board, idle=[], busy=[0, 1]) == []

    def test_idle_worker_with_no_victim_plans_nothing(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        for key in KEYS:
            board.record_done(key)
        assert plan_steals(board, idle=[0, 1], busy=[]) == []

    def test_idle_worker_takes_half_of_the_biggest_victim(self, tmp_path):
        board = board_for(tmp_path, workers=2, batch=1)
        for key in board.assignments[1]:
            board.record_done(key)
        stealable = len(board.stealable(0))
        plan = plan_steals(board, idle=[1], busy=[0], threshold=1)
        assert plan == [(0, 1, (stealable + 1) // 2)]

    def test_threshold_suppresses_small_steals(self, tmp_path):
        board = board_for(tmp_path, workers=2, batch=1)
        for key in board.assignments[1]:
            board.record_done(key)
        stealable = len(board.stealable(0))
        assert plan_steals(board, [1], [0], threshold=stealable + 1) == []
        assert plan_steals(board, [1], [0], threshold=stealable) != []

    def test_two_idle_workers_split_the_victim(self, tmp_path):
        board = board_for(tmp_path, workers=3, batch=1)
        victim = max(range(3), key=lambda w: len(board.stealable(w)))
        for worker in range(3):
            if worker != victim:
                for key in board.assignments[worker]:
                    board.record_done(key)
        idle = [w for w in range(3) if w != victim]
        plan = plan_steals(board, idle, [victim], threshold=1)
        assert len(plan) == 2
        assert {thief for _, thief, _ in plan} == set(idle)
        total = len(board.stealable(victim))
        assert sum(count for _, _, count in plan) >= total - 1

    def test_bad_threshold_rejected(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        with pytest.raises(ValueError, match="threshold"):
            plan_steals(board, [0], [1], threshold=0)


class TestBoardWriteHook:
    def test_on_write_fires_for_every_rewrite(self, tmp_path):
        """The multi-host supervisor pushes assignment files through
        this hook; missing a rewrite would strand a remote worker on a
        stale lease set."""
        calls = []
        board = LeaseBoard(
            KEYS,
            workers=2,
            run_dir=tmp_path,
            spec_hash=HASH,
            batch=1,
            on_write=lambda worker, path: calls.append((worker, path)),
        )
        # Construction writes every worker's file once.
        assert [worker for worker, _ in calls] == [0, 1]
        assert calls[0][1] == board.path(0)
        calls.clear()
        moved = board.steal(
            max(range(2), key=lambda w: len(board.stealable(w))),
            min(range(2), key=lambda w: len(board.stealable(w))),
            1,
        )
        assert moved
        assert len(calls) == 2  # both sides of a steal rewrite
        calls.clear()
        board.close_all()
        assert [worker for worker, _ in calls] == [0, 1]

    def test_hook_sees_file_already_on_disk(self, tmp_path):
        """on_write(worker, path) must be called after the atomic
        replace lands, so a push hook ships the new content."""
        seen = []

        def hook(worker, path):
            seen.append(read_assignment(path).version)

        board = LeaseBoard(
            KEYS, workers=1, run_dir=tmp_path, spec_hash=HASH, on_write=hook
        )
        board.close_all()
        assert seen == [0, 1]
        assert read_assignment(board.path(0)).closed


class TestAddWorker:
    def test_join_gets_an_empty_open_assignment(self, tmp_path):
        board = board_for(tmp_path, workers=2)
        index = board.add_worker()
        assert index == 2
        assert board.workers == 3
        assignment = read_assignment(board.path(2))
        assert assignment.keys == ()
        assert not assignment.closed
        # The joined slot participates in normal leasing.
        board.lease(2, ["k-join"] if "k-join" in KEYS else [KEYS[0]])
        assert board.remaining(2) == [KEYS[0]]

    def test_join_after_close_gets_a_closed_assignment(self, tmp_path):
        """A worker joining a finished campaign must exit immediately,
        not wait forever on an open empty file."""
        board = board_for(tmp_path, workers=1)
        for key in KEYS:
            board.record_done(key)
        board.close_all()
        index = board.add_worker()
        assert read_assignment(board.path(index)).closed

    def test_join_fires_the_write_hook(self, tmp_path):
        calls = []
        board = LeaseBoard(
            KEYS,
            workers=1,
            run_dir=tmp_path,
            spec_hash=HASH,
            on_write=lambda worker, path: calls.append(worker),
        )
        board.add_worker()
        assert calls == [0, 1]
