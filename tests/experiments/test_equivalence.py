"""Golden determinism/equivalence harness for campaign engine v2.

Locks down the properties every v2 surface must preserve:

- serial, parallel, sharded-then-merged, and *orchestrated* (shard
  worker subprocesses supervised by
  :mod:`repro.experiments.orchestrator` — under both the static and
  the work-stealing scheduler, through steals, slow workers, and
  workers that die mid-steal) executions of one campaign are
  bit-identical per (scenario, protocol, seed);
- a default-protocol v2 campaign reproduces the v1 serial reference
  path (``run_replicates`` / ``run_single``, unchanged since the seed)
  on probe scenarios;
- stream-rebuilt aggregates equal live aggregates, byte for byte;
- a campaign killed after K tasks resumes from its stream alone (no
  result cache), runs exactly the remaining tasks, and converges to
  the uninterrupted stream;
- v2-format cache entries migrate to v3 keys on read;
- trace mobility cache keys follow file *content*, not the path.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.campaign import (
    CACHE_FORMAT,
    CampaignSpec,
    ReplicateSpec,
    ReplicateTask,
    ResultCache,
    campaign_result_from_stream,
    campaign_spec_hash,
    execute_tasks,
    legacy_task_key,
    run_campaign,
    task_key,
)
from repro.experiments.orchestrator import orchestrate_campaign
from repro.experiments.protocols import ProtocolConfig
from repro.experiments.runner import run_replicates, run_single
from repro.experiments.scenarios import Scenario
from repro.experiments.stream import merge_streams
from repro.mobility.base import Region
from repro.mobility.registry import MobilityConfig
from repro.seeding import replicate_seed, stable_shard

TINY = Scenario(
    name="tiny",
    n_nodes=10,
    active_nodes=5,
    radius=150.0,
    message_count=2,
    sim_time=15.0,
    seed=3,
)

#: Three scenario/protocol probes spanning the surfaces v1 covered:
#: the paper RWP default path, a registry mobility model, and a
#: non-GLR baseline protocol.
PROBES = (
    (TINY, "glr"),
    (TINY.but(name="probe-gm", mobility="gauss-markov", radius=120.0),
     "glr"),
    (TINY.but(name="probe-epi", seed=7), "epidemic"),
)


def fingerprint(metrics):
    return dataclasses.asdict(metrics)


def stream_essence(path):
    """A stream's lines with per-run provenance stripped.

    ``wall_time_s`` (timing), ``cached`` (where the result came from),
    and ``phase_profile`` (opt-in wall-time attribution) legitimately
    differ between two executions of the same campaign; everything
    else — header, keys, seeds, metrics, order — must not.
    """
    essence = []
    for line in path.read_text().splitlines():
        record = json.loads(line)
        record.pop("wall_time_s", None)
        record.pop("cached", None)
        record.pop("phase_profile", None)
        essence.append(json.dumps(record, sort_keys=True))
    return essence


def cell_fingerprints(result):
    return {
        cell: [fingerprint(m) for m in runs]
        for cell, runs in result.metrics.items()
    }


@pytest.fixture
def v2_spec():
    """A campaign exercising all v2 axes: grid x mobility x protocol."""
    return CampaignSpec(
        name="equiv",
        base=TINY,
        grid=(
            ("radius", (120.0, 180.0)),
            ("mobility", (MobilityConfig.of("random_waypoint"),
                          MobilityConfig.of("gauss_markov"))),
        ),
        protocols=(
            "glr",
            ProtocolConfig.of("glr", custody=False),
        ),
        replicates=2,
    )


class TestSerialParallelShardEquivalence:
    def test_serial_equals_parallel_equals_sharded_merged(
        self, v2_spec, tmp_path
    ):
        serial = run_campaign(
            v2_spec, workers=1, stream_path=tmp_path / "serial.jsonl"
        )
        parallel = run_campaign(
            v2_spec, workers=4, stream_path=tmp_path / "parallel.jsonl"
        )
        shards = []
        for index in range(2):
            shards.append(
                run_campaign(
                    v2_spec,
                    workers=2,
                    stream_path=tmp_path / f"shard{index}.jsonl",
                    shard_index=index,
                    shard_count=2,
                )
            )
        merge_streams(
            tmp_path / "merged.jsonl",
            [tmp_path / "shard0.jsonl", tmp_path / "shard1.jsonl"],
        )
        merged = campaign_result_from_stream(tmp_path / "merged.jsonl")

        reference = cell_fingerprints(serial)
        assert cell_fingerprints(parallel) == reference
        assert cell_fingerprints(merged) == reference
        assert merged.render() == serial.render()

    def test_orchestrated_equals_sharded_by_hand_equals_serial(
        self, v2_spec, tmp_path
    ):
        """The acceptance property: `repro campaign orchestrate
        --shards 2 --workers-per-shard 2` == hand-launched shards ==
        serial, bit for bit."""
        serial = run_campaign(
            v2_spec, workers=1, stream_path=tmp_path / "serial.jsonl"
        )
        for index in range(2):
            run_campaign(
                v2_spec,
                workers=2,
                stream_path=tmp_path / f"hand{index}.jsonl",
                shard_index=index,
                shard_count=2,
            )
        merge_streams(
            tmp_path / "hand.jsonl",
            [tmp_path / "hand0.jsonl", tmp_path / "hand1.jsonl"],
        )
        by_hand = campaign_result_from_stream(tmp_path / "hand.jsonl")
        orchestrated = orchestrate_campaign(
            v2_spec,
            shards=2,
            workers_per_shard=2,
            run_dir=tmp_path / "orchestrated",
            poll_interval=0.05,
        )

        reference = cell_fingerprints(serial)
        assert cell_fingerprints(by_hand) == reference
        assert cell_fingerprints(orchestrated.result) == reference
        assert orchestrated.result.render() == serial.render()
        # The orchestrator's merged stream holds the same records as
        # the hand merge, in the same canonical order — identical up
        # to per-run provenance (wall_time_s, cached).
        assert stream_essence(orchestrated.merged_stream) == stream_essence(
            tmp_path / "hand.jsonl"
        )

    def test_shards_partition_tasks_exactly(self, v2_spec):
        tasks = [t for s in v2_spec.specs() for t in s.tasks()]
        assignment = [stable_shard(task_key(t), 3) for t in tasks]
        assert all(0 <= shard < 3 for shard in assignment)
        # Every task lands in exactly one shard; together they cover
        # the whole campaign (partition, not sampling).
        per_shard = [assignment.count(i) for i in range(3)]
        assert sum(per_shard) == v2_spec.total_tasks()

    def test_shard_assignment_stable_across_expansion(self, v2_spec):
        tasks = [t for s in v2_spec.specs() for t in s.tasks()]
        again = [t for s in v2_spec.specs() for t in s.tasks()]
        assert [stable_shard(task_key(t), 5) for t in tasks] == [
            stable_shard(task_key(t), 5) for t in again
        ]

    def test_bad_shard_arguments_rejected(self, v2_spec, tmp_path):
        with pytest.raises(ValueError, match="together"):
            run_campaign(v2_spec, shard_index=0)
        with pytest.raises(ValueError, match="shard_index"):
            run_campaign(v2_spec, shard_index=2, shard_count=2)
        with pytest.raises(ValueError, match="shard_count"):
            run_campaign(v2_spec, shard_index=0, shard_count=0)


class TestStealingSchedulerEquivalence:
    """Scheduling must not change results: stolen/rebalanced runs merge
    to the same streams and aggregates as serial and static runs."""

    def _reference(self, v2_spec, tmp_path):
        serial = run_campaign(
            v2_spec, workers=1, stream_path=tmp_path / "serial.jsonl"
        )
        for index in range(2):
            run_campaign(
                v2_spec,
                workers=2,
                stream_path=tmp_path / f"hand{index}.jsonl",
                shard_index=index,
                shard_count=2,
            )
        merge_streams(
            tmp_path / "hand.jsonl",
            [tmp_path / "hand0.jsonl", tmp_path / "hand1.jsonl"],
        )
        return serial

    def test_stealing_equals_static_equals_serial(self, v2_spec, tmp_path):
        serial = self._reference(v2_spec, tmp_path)
        stolen = orchestrate_campaign(
            v2_spec,
            shards=2,
            workers_per_shard=2,
            run_dir=tmp_path / "stealing",
            poll_interval=0.05,
            scheduler="stealing",
            steal_threshold=1,
            lease_batch=1,
        )
        assert stolen.scheduler == "stealing"
        assert cell_fingerprints(stolen.result) == cell_fingerprints(serial)
        assert stolen.result.render() == serial.render()
        # The merged stream is the hand-sharded merge, up to per-run
        # provenance — wherever each task actually executed.
        assert stream_essence(stolen.merged_stream) == stream_essence(
            tmp_path / "hand.jsonl"
        )

    def test_chaos_slow_shard_forces_steals_same_result(
        self, v2_spec, tmp_path
    ):
        """A lagging worker's leases migrate (>= 1 steal fires) and the
        rebalanced run still merges bit-identically."""
        serial = self._reference(v2_spec, tmp_path)
        events: list[str] = []
        stolen = orchestrate_campaign(
            v2_spec,
            shards=2,
            run_dir=tmp_path / "slow",
            poll_interval=0.05,
            scheduler="stealing",
            steal_threshold=1,
            lease_batch=1,
            chaos_slow_shard=0,
            chaos_slow_s=0.6,
            on_event=events.append,
        )
        assert stolen.steals >= 1
        assert any(event.startswith("steal: moved") for event in events)
        assert sum(s.stolen_to for s in stolen.shards) == stolen.steals
        assert cell_fingerprints(stolen.result) == cell_fingerprints(serial)
        assert stolen.result.render() == serial.render()
        assert stream_essence(stolen.merged_stream) == stream_essence(
            tmp_path / "hand.jsonl"
        )

    def test_worker_death_composes_with_stealing(self, v2_spec, tmp_path):
        """Lease reclaim + requeue compose: the slow shard's worker is
        SIGKILLed mid-run, its replacement stream-resumes while steals
        keep draining its leases — and nothing changes in the result."""
        serial = self._reference(v2_spec, tmp_path)
        events: list[str] = []
        stolen = orchestrate_campaign(
            v2_spec,
            shards=2,
            run_dir=tmp_path / "die",
            poll_interval=0.05,
            scheduler="stealing",
            steal_threshold=1,
            lease_batch=1,
            chaos_kill_shard=0,
            chaos_kill_after=0,  # at launch: deterministic
            chaos_slow_shard=0,
            chaos_slow_s=0.4,
            on_event=events.append,
        )
        assert any("chaos: SIGKILL shard 0" in event for event in events)
        assert stolen.requeues >= 1
        assert stolen.shards[0].attempts >= 2
        # The replacement worker resumed the same stream while its
        # slot's leases stayed stealable; both mechanisms fired.
        assert stolen.steals >= 1
        assert cell_fingerprints(stolen.result) == cell_fingerprints(serial)
        assert stolen.result.render() == serial.render()

    def test_profiled_run_bit_identical_modulo_profile(
        self, v2_spec, tmp_path, monkeypatch
    ):
        """``REPRO_PROFILE_PHASES=1`` adds a ``phase_profile`` block to
        every task record and changes nothing else: metrics, keys,
        seeds, and order are bit-identical to the unprofiled run."""
        from repro.telemetry.profile import PHASES

        serial = self._reference(v2_spec, tmp_path)
        monkeypatch.setenv("REPRO_PROFILE_PHASES", "1")
        profiled = orchestrate_campaign(
            v2_spec,
            shards=2,
            workers_per_shard=2,
            run_dir=tmp_path / "profiled",
            poll_interval=0.05,
            scheduler="stealing",
            steal_threshold=1,
            lease_batch=1,
        )
        assert cell_fingerprints(profiled.result) == cell_fingerprints(
            serial
        )
        assert profiled.result.render() == serial.render()
        # Same records as the unprofiled hand-sharded reference, up to
        # provenance (stream_essence strips phase_profile).
        assert stream_essence(profiled.merged_stream) == stream_essence(
            tmp_path / "hand.jsonl"
        )
        records = [
            json.loads(line)
            for line in
            profiled.merged_stream.read_text().splitlines()[1:]
        ]
        assert records and all(
            set(record["phase_profile"]) == set(PHASES)
            for record in records
        )
        assert all(
            value >= 0.0
            for record in records
            for value in record["phase_profile"].values()
        )

    def test_balanced_run_with_high_threshold_never_steals(
        self, v2_spec, tmp_path
    ):
        """Zero-steal behaviour: with no imbalance worth moving, the
        run IS the static partition (assignment files included)."""
        from repro.experiments.scheduler import read_assignment
        from repro.seeding import shard_partition

        serial = self._reference(v2_spec, tmp_path)
        stolen = orchestrate_campaign(
            v2_spec,
            shards=2,
            run_dir=tmp_path / "balanced",
            poll_interval=0.05,
            scheduler="stealing",
            steal_threshold=10**6,
        )
        assert stolen.steals == 0
        keys = [
            task_key(task)
            for _, cell_spec in stolen.result.spec.cell_specs()
            for task in cell_spec.tasks()
        ]
        partition = shard_partition(keys, 2)
        for index, status in enumerate(stolen.shards):
            doc = read_assignment(tmp_path / "balanced"
                                  / f"shard{index}.tasks.json")
            # Closed files prune recorded keys, so compare the keys
            # each stream actually recorded to the static partition.
            assert doc.closed and doc.keys == ()
            assert status.recorded == len(partition[index])
        assert cell_fingerprints(stolen.result) == cell_fingerprints(serial)


class TestV1Reproduction:
    """Default-protocol v2 campaigns == the pre-PR serial reference."""

    @pytest.mark.parametrize(
        "scenario,protocol", PROBES,
        ids=[s.name for s, _ in PROBES],
    )
    def test_campaign_reproduces_reference_metrics(
        self, scenario, protocol, tmp_path
    ):
        reference = run_replicates(scenario, protocol, runs=2)
        spec = CampaignSpec(
            name=scenario.name,
            base=scenario,
            protocols=(protocol,),
            replicates=2,
        )
        result = run_campaign(
            spec,
            workers=2,
            cache_dir=tmp_path / "cache",
            stream_path=tmp_path / "stream.jsonl",
        )
        [runs] = result.metrics.values()
        assert [fingerprint(m) for m in runs] == [
            fingerprint(m) for m in reference
        ]

    def test_replicate_seeds_unchanged_from_v1(self):
        spec = ReplicateSpec(scenario=TINY, protocol="glr", runs=3)
        assert [t.scenario.seed for t in spec.tasks()] == [
            replicate_seed(TINY.seed, i) for i in range(3)
        ]
        assert [t.scenario.seed for t in spec.tasks()] == [3, 1003, 2003]


class TestStreamAggregationEquivalence:
    def test_stream_rebuild_equals_live_result(self, v2_spec, tmp_path):
        live = run_campaign(
            v2_spec, workers=2, stream_path=tmp_path / "s.jsonl"
        )
        rebuilt = campaign_result_from_stream(tmp_path / "s.jsonl")
        assert cell_fingerprints(rebuilt) == cell_fingerprints(live)
        assert rebuilt.render() == live.render()
        assert rebuilt.spec == v2_spec

    def test_stream_resume_skips_everything(self, v2_spec, tmp_path):
        run_campaign(v2_spec, stream_path=tmp_path / "s.jsonl")
        resumed = run_campaign(v2_spec, stream_path=tmp_path / "s.jsonl")
        assert resumed.stream_hits == v2_spec.total_tasks()
        assert resumed.cache_misses == 0

    def test_aggregate_reads_around_torn_tail_without_repairing(
        self, v2_spec, tmp_path
    ):
        # Aggregation is read-only: on a live stream, the "torn" tail
        # may be a record some writer is about to finish — report what
        # is valid, mutate nothing.
        stream = tmp_path / "s.jsonl"
        live = run_campaign(v2_spec, stream_path=stream)
        with open(stream, "a") as handle:
            handle.write('{"kind": "task", "key": "in-flight')
        before = stream.read_bytes()
        rebuilt = campaign_result_from_stream(stream)
        assert cell_fingerprints(rebuilt) == cell_fingerprints(live)
        assert stream.read_bytes() == before
        assert not stream.with_name(stream.name + ".quarantined").exists()

    def test_partial_stream_renders_actual_run_counts(
        self, v2_spec, tmp_path
    ):
        # A single shard's aggregate must not read like the full
        # campaign: the runs column shows what each cell aggregates.
        run_campaign(
            v2_spec,
            stream_path=tmp_path / "s0.jsonl",
            shard_index=0,
            shard_count=2,
        )
        partial = campaign_result_from_stream(tmp_path / "s0.jsonl")
        assert "runs" in partial.render()
        counts = {len(runs) for runs in partial.metrics.values()}
        assert counts  # the shard covers something...
        assert any(
            len(runs) < v2_spec.replicates
            for runs in partial.metrics.values()
        ) or len(partial.metrics) < len(v2_spec.cells())

    def test_aggregate_refuses_superseded_task_generations(
        self, v2_spec, tmp_path
    ):
        # If task keys change under a stream (e.g. a trace file edited
        # in place), resumed runs append a second generation of
        # records for the same cells.  Stream-alone aggregation cannot
        # tell which generation is current and must refuse rather than
        # mix populations into one CI.
        import json as jsonlib

        stream = tmp_path / "s.jsonl"
        run_campaign(v2_spec, stream_path=stream)
        lines = stream.read_text().splitlines()
        clone = jsonlib.loads(lines[1])
        assert clone["kind"] == "task"
        clone["key"] = "f" * 64  # same cell+replicate, different key
        with open(stream, "a") as handle:
            handle.write(jsonlib.dumps(clone) + "\n")
        with pytest.raises(ValueError, match="superseded"):
            campaign_result_from_stream(stream)

    def test_spec_hash_sensitive_to_spec_and_format(self, v2_spec):
        assert campaign_spec_hash(v2_spec) == campaign_spec_hash(v2_spec)
        bumped = dataclasses.replace(v2_spec, replicates=3)
        assert campaign_spec_hash(bumped) != campaign_spec_hash(v2_spec)

    def test_spec_survives_header_round_trip(self, v2_spec, tmp_path):
        run_campaign(
            v2_spec,
            stream_path=tmp_path / "s.jsonl",
            shard_index=0,
            shard_count=4,
        )
        rebuilt = campaign_result_from_stream(tmp_path / "s.jsonl")
        assert rebuilt.spec == v2_spec
        assert campaign_spec_hash(rebuilt.spec) == campaign_spec_hash(v2_spec)


class TestStreamBackedResume:
    """Streams are the primary resume medium: no cache dir required."""

    def test_killed_after_k_tasks_resumes_stream_only(
        self, v2_spec, tmp_path
    ):
        total = v2_spec.total_tasks()
        kill_after = 5
        assert 0 < kill_after < total

        # The uninterrupted reference run (serial, streamed).
        full = tmp_path / "full.jsonl"
        run_campaign(v2_spec, stream_path=full)

        # Simulate a campaign killed after K tasks: its stream is the
        # header plus the first K records (append_record fsyncs line by
        # line, so this is exactly what a SIGKILL leaves behind).
        interrupted = tmp_path / "interrupted.jsonl"
        lines = full.read_text().splitlines(keepends=True)
        interrupted.write_text("".join(lines[: 1 + kill_after]))

        # Resume with *no cache dir*: only the remaining tasks run.
        sources = []
        resumed = run_campaign(
            v2_spec,
            stream_path=interrupted,
            progress=lambda event: sources.append(event.source),
        )
        assert sources.count("stream") == kill_after
        assert sources.count("ran") == total - kill_after
        assert len(sources) == total
        assert resumed.stream_hits == kill_after
        assert resumed.cache_enabled is False

        # The resumed stream converges to the uninterrupted one:
        # identical lines in identical order, up to per-run provenance
        # (wall_time_s/cached), and a bit-identical aggregate.
        assert stream_essence(interrupted) == stream_essence(full)
        assert cell_fingerprints(resumed) == cell_fingerprints(
            campaign_result_from_stream(full)
        )
        assert resumed.render() == campaign_result_from_stream(full).render()

    def test_resume_handles_torn_tail_from_a_real_kill(
        self, v2_spec, tmp_path
    ):
        # A SIGKILL mid-append can also tear the final line; the
        # *writer's* resume path quarantines it and recomputes that
        # task (plus the never-run remainder).
        full = tmp_path / "full.jsonl"
        run_campaign(v2_spec, stream_path=full)
        interrupted = tmp_path / "interrupted.jsonl"
        lines = full.read_text().splitlines(keepends=True)
        torn = lines[3][: len(lines[3]) // 2]
        interrupted.write_text("".join(lines[:3]) + torn)

        resumed = run_campaign(v2_spec, stream_path=interrupted)
        assert resumed.stream_hits == 2  # the two intact records
        assert interrupted.with_name(
            interrupted.name + ".quarantined"
        ).exists()
        assert stream_essence(interrupted) == stream_essence(full)


class TestCacheFormatMigration:
    def _task(self):
        return ReplicateSpec(
            scenario=TINY, protocol="glr", runs=1
        ).tasks()[0]

    def test_v2_entry_migrates_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._task()
        [metrics] = execute_tasks([task], cache=cache)

        # Rewrite the entry as a v2-era cache would have stored it:
        # format 2, no protocol_config field, at the legacy key path.
        v3_path = cache.path_for(task_key(task))
        payload = json.loads(v3_path.read_text())
        payload["format"] = 2
        payload["key"].pop("protocol_config")
        payload["key"]["format"] = 2
        legacy_path = cache.path_for(legacy_task_key(task))
        legacy_path.parent.mkdir(parents=True, exist_ok=True)
        legacy_path.write_text(json.dumps(payload))
        v3_path.unlink()

        fresh = ResultCache(tmp_path)
        loaded = fresh.load(task)
        assert loaded == metrics
        assert fresh.hits == 1 and fresh.misses == 0
        # ... and the entry was re-stored under the v3 key.
        assert v3_path.exists()
        assert json.loads(v3_path.read_text())["format"] == CACHE_FORMAT

    def test_legacy_key_differs_from_v3_key(self):
        task = self._task()
        assert legacy_task_key(task) is not None
        assert legacy_task_key(task) != task_key(task)

    def test_no_legacy_identity_for_v3_only_features(self, tmp_path):
        with_config = ReplicateTask(
            TINY, "glr", 0,
            protocol_config=ProtocolConfig.of("glr", custody=False),
        )
        assert legacy_task_key(with_config) is None

        trace_path = tmp_path / "trace.ns2"
        trace_path.write_text(
            "$node_(0) set X_ 10.0\n$node_(0) set Y_ 10.0\n"
        )
        traced = ReplicateTask(
            TINY.but(
                mobility=MobilityConfig.of("trace", path=str(trace_path))
            ),
            "glr",
            0,
        )
        assert legacy_task_key(traced) is None

    def test_corrupt_legacy_entry_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        task = self._task()
        legacy_path = cache.path_for(legacy_task_key(task))
        legacy_path.parent.mkdir(parents=True, exist_ok=True)
        legacy_path.write_text("{ not json !!!")
        assert cache.load(task) is None
        assert cache.misses == 1


class TestTraceContentHashKeys:
    def _write_trace(self, path, x=10.0):
        path.write_text(
            f"$node_(0) set X_ {x}\n$node_(0) set Y_ 10.0\n"
            "$node_(1) set X_ 20.0\n$node_(1) set Y_ 20.0\n"
        )

    def _task(self, trace_path):
        scenario = Scenario(
            name="traced",
            n_nodes=2,
            active_nodes=2,
            region=Region(100.0, 100.0),
            message_count=1,
            sim_time=10.0,
            mobility=MobilityConfig.of("trace", path=str(trace_path)),
        )
        return ReplicateTask(scenario, "glr", 0)

    def test_editing_trace_invalidates_key(self, tmp_path):
        trace = tmp_path / "a.ns2"
        self._write_trace(trace)
        before = task_key(self._task(trace))
        self._write_trace(trace, x=11.0)
        after = task_key(self._task(trace))
        assert before != after

    def test_same_content_rename_hits_same_key(self, tmp_path):
        original = tmp_path / "a.ns2"
        self._write_trace(original)
        key = task_key(self._task(original))
        renamed = tmp_path / "subdir" / "b.ns2"
        renamed.parent.mkdir()
        renamed.write_bytes(original.read_bytes())
        assert task_key(self._task(renamed)) == key

    def test_edited_trace_misses_cache_and_recomputes(self, tmp_path):
        trace = tmp_path / "a.ns2"
        self._write_trace(trace)
        cache = ResultCache(tmp_path / "cache")
        task = self._task(trace)
        execute_tasks([task], cache=cache)
        assert cache.load(task) is not None

        self._write_trace(trace, x=11.0)
        edited = self._task(trace)
        assert cache.load(edited) is None

    def test_renamed_trace_resumes_from_cache(self, tmp_path):
        trace = tmp_path / "a.ns2"
        self._write_trace(trace)
        cache = ResultCache(tmp_path / "cache")
        [metrics] = execute_tasks([self._task(trace)], cache=cache)

        copy = tmp_path / "copy.ns2"
        copy.write_bytes(trace.read_bytes())
        assert cache.load(self._task(copy)) == metrics

    def test_missing_trace_file_fails_key_computation(self, tmp_path):
        task = self._task(tmp_path / "gone.ns2")
        with pytest.raises(OSError):
            task_key(task)


class TestHostedEquivalence:
    """Distribution must not change results: a campaign spread over
    simulated remote hosts (ObjectStoreTransport roots) merges to the
    same streams and aggregates as serial — even through a host that
    vanishes mid-campaign."""

    def _serial(self, v2_spec, tmp_path):
        serial = run_campaign(
            v2_spec, workers=1, stream_path=tmp_path / "serial.jsonl"
        )
        # Canonical-merge reference: what any sharded run's merged
        # stream must match, independent of where each task executed.
        for index in range(2):
            run_campaign(
                v2_spec,
                workers=2,
                stream_path=tmp_path / f"hand{index}.jsonl",
                shard_index=index,
                shard_count=2,
            )
        merge_streams(
            tmp_path / "hand.jsonl",
            [tmp_path / "hand0.jsonl", tmp_path / "hand1.jsonl"],
        )
        return serial

    def test_two_simulated_hosts_equal_serial(self, v2_spec, tmp_path):
        serial = self._serial(v2_spec, tmp_path)
        hosted = orchestrate_campaign(
            v2_spec,
            run_dir=tmp_path / "hosted",
            hosts=[f"store:{tmp_path}/h0", f"store:{tmp_path}/h1"],
            workers_per_shard=2,
            poll_interval=0.05,
        )
        assert hosted.scheduler == "stealing"
        assert len(hosted.hosts) == 2
        assert cell_fingerprints(hosted.result) == cell_fingerprints(serial)
        assert hosted.result.render() == serial.render()
        # The supervisor-side mirrors merge to the same records as a
        # local sharded run would, up to per-run provenance.
        assert stream_essence(hosted.merged_stream) == stream_essence(
            tmp_path / "hand.jsonl"
        )

    def test_host_vanishing_mid_run_changes_nothing(
        self, v2_spec, tmp_path
    ):
        serial = self._serial(v2_spec, tmp_path)
        events: list[str] = []
        hosted = orchestrate_campaign(
            v2_spec,
            run_dir=tmp_path / "chaos",
            hosts=[f"store:{tmp_path}/c0", f"store:{tmp_path}/c1"],
            poll_interval=0.05,
            steal_threshold=1,
            lease_batch=1,
            chaos_kill_host=0,
            chaos_kill_after=0,  # at launch: deterministic
            on_event=events.append,
        )
        assert hosted.shards[0].state == "lost"
        assert hosted.requeues >= 1
        assert any(event.startswith("reclaim: moved") for event in events)
        assert cell_fingerprints(hosted.result) == cell_fingerprints(serial)
        assert hosted.result.render() == serial.render()
        assert stream_essence(hosted.merged_stream) == stream_essence(
            tmp_path / "hand.jsonl"
        )

    def test_profiled_hosted_run_bit_identical_modulo_profile(
        self, v2_spec, tmp_path, monkeypatch
    ):
        """Profiling composes with distribution: hosted workers inherit
        ``REPRO_PROFILE_PHASES`` and their merged stream still matches
        the unprofiled reference up to the phase_profile blocks."""
        serial = self._serial(v2_spec, tmp_path)
        monkeypatch.setenv("REPRO_PROFILE_PHASES", "1")
        hosted = orchestrate_campaign(
            v2_spec,
            run_dir=tmp_path / "profhost",
            hosts=[f"store:{tmp_path}/p0", f"store:{tmp_path}/p1"],
            workers_per_shard=2,
            poll_interval=0.05,
        )
        assert cell_fingerprints(hosted.result) == cell_fingerprints(serial)
        assert stream_essence(hosted.merged_stream) == stream_essence(
            tmp_path / "hand.jsonl"
        )
        records = [
            json.loads(line)
            for line in hosted.merged_stream.read_text().splitlines()[1:]
        ]
        assert records and all(
            "phase_profile" in record for record in records
        )


class TestVectorizedEquivalence:
    """Engine choice must be invisible in results.

    The vectorized numpy core and the pure-Python reference core are
    two implementations of the same simulation: every probe scenario,
    every execution surface (serial, campaign grid, stealing
    orchestration), profiled or not, must produce **bit-identical**
    metrics.  These tests compose the engine switch with the other
    equivalence surfaces above."""

    @pytest.mark.parametrize(
        "scenario,protocol", PROBES,
        ids=[s.name for s, _ in PROBES],
    )
    def test_probes_bit_identical_across_engines(self, scenario, protocol):
        reference = run_single(scenario.but(engine="reference"), protocol)
        vectorized = run_single(scenario.but(engine="vectorized"), protocol)
        assert fingerprint(vectorized) == fingerprint(reference)

    def test_large_population_probe_bit_identical(self):
        """A population above the kernel's dense-path cutoff (64): the
        cell-binning path must also be bit-identical end to end."""
        scenario = TINY.but(
            name="probe-binned", n_nodes=80, active_nodes=10, radius=120.0
        )
        reference = run_single(scenario.but(engine="reference"), "glr")
        vectorized = run_single(scenario.but(engine="vectorized"), "glr")
        assert fingerprint(vectorized) == fingerprint(reference)

    def test_env_variable_selection_is_equivalent(self, monkeypatch):
        scenario, protocol = PROBES[0]
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        reference = run_single(scenario, protocol)
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        flipped = run_single(scenario, protocol)
        assert fingerprint(flipped) == fingerprint(reference)

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_profiler_composes_with_engines(self, engine):
        """Profiling must neither change metrics nor lose phases on
        either engine: the vectorized mobility/UDG phases are timed by
        the same hooks the reference engine uses."""
        from repro.telemetry.profile import (
            PHASE_MOBILITY,
            PHASE_UDG,
            PhaseProfiler,
        )

        scenario, protocol = PROBES[0]
        bare = run_single(scenario.but(engine=engine), protocol)
        profiler = PhaseProfiler()
        profiled = run_single(
            scenario.but(engine=engine), protocol, profiler=profiler
        )
        assert fingerprint(profiled) == fingerprint(bare)
        snapshot = profiler.snapshot()
        assert snapshot[PHASE_MOBILITY] > 0.0
        assert snapshot[PHASE_UDG] > 0.0

    def test_engine_grid_axis_produces_identical_cells(self, tmp_path):
        """The ``--engines`` sweep axis: both cells of an engine grid
        hold the same metrics, proving the axis is a cross-check knob
        rather than a modelling one."""
        spec = CampaignSpec(
            name="engine-sweep",
            base=TINY,
            grid=(("engine", ("reference", "vectorized")),),
            protocols=("glr",),
            replicates=2,
        )
        result = run_campaign(spec, stream_path=tmp_path / "s.jsonl")
        cells = cell_fingerprints(result)
        assert len(cells) == 2
        first, second = cells.values()
        assert first == second

    def test_stealing_orchestrated_vectorized_run_equals_reference(
        self, v2_spec, tmp_path, monkeypatch
    ):
        """The full composition: a REPRO_ENGINE=vectorized, profiled,
        work-stealing orchestrated campaign (worker subprocesses
        inherit both env vars) merges to the reference-engine serial
        aggregate bit for bit."""
        monkeypatch.delenv("REPRO_ENGINE", raising=False)
        serial = run_campaign(
            v2_spec, workers=1, stream_path=tmp_path / "serial.jsonl"
        )
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        monkeypatch.setenv("REPRO_PROFILE_PHASES", "1")
        stolen = orchestrate_campaign(
            v2_spec,
            shards=2,
            workers_per_shard=2,
            run_dir=tmp_path / "vectorized",
            poll_interval=0.05,
            scheduler="stealing",
            steal_threshold=1,
            lease_batch=1,
        )
        assert cell_fingerprints(stolen.result) == cell_fingerprints(serial)
        assert stolen.result.render() == serial.render()

    def test_explicit_engine_changes_cache_key_default_does_not(
        self, tmp_path
    ):
        """Engine=None tasks keep their pre-engine cache identity (the
        field is popped from canonical payloads), while pinned engines
        key separately — a vectorized result can never shadow a
        reference-keyed entry or vice versa."""
        default = ReplicateTask(TINY, "glr", 0)
        pinned_ref = ReplicateTask(TINY.but(engine="reference"), "glr", 0)
        pinned_vec = ReplicateTask(TINY.but(engine="vectorized"), "glr", 0)
        assert task_key(default) != task_key(pinned_ref)
        assert task_key(pinned_ref) != task_key(pinned_vec)
        # Engines are bit-identical, so a cache primed by a vectorized
        # run serves the same metrics a reference run would compute.
        cache = ResultCache(tmp_path / "cache")
        [vec_metrics] = execute_tasks([pinned_vec], cache=cache)
        [ref_metrics] = execute_tasks([pinned_ref], cache=cache)
        assert fingerprint(vec_metrics) == fingerprint(ref_metrics)
