"""Tests for the campaign file transports.

The multi-host supervisor only works if every transport means the same
thing by ``atomic_write``/``touch``/``mtime``/``exists``/``push``/
``pull``, so the core here is a *property* suite run against both
concrete local transports — LocalTransport and ObjectStoreTransport —
asserting they agree observable-behaviour-for-observable-behaviour,
including that a torn atomic write never surfaces.  SSH is exercised
at the argv-builder level (the commands are pure functions of the
spec), since CI has no remote host to talk to.
"""

from __future__ import annotations

import os
import subprocess

import pytest

from repro.experiments.transport import (
    LocalTransport,
    ObjectStoreTransport,
    SSHTransport,
    Transport,
    TransportError,
    parse_host,
    parse_hosts,
)

#: The two directory-backed transports that must be interchangeable.
BACKENDS = ("local", "store")


@pytest.fixture
def make_transport(tmp_path):
    def build(kind: str) -> Transport:
        root = tmp_path / f"{kind}-root"
        if kind == "local":
            return LocalTransport(root)
        return ObjectStoreTransport(root)

    return build


@pytest.mark.parametrize("kind", BACKENDS)
class TestTransportProperties:
    """Behaviours LocalTransport and ObjectStoreTransport must share."""

    def test_exists_starts_false_then_tracks_writes(self, make_transport, kind):
        transport = make_transport(kind)
        assert not transport.exists("a.txt")
        transport.atomic_write("a.txt", b"payload")
        assert transport.exists("a.txt")

    def test_atomic_write_round_trips_bytes(
        self, make_transport, kind, tmp_path
    ):
        transport = make_transport(kind)
        transport.atomic_write("data.bin", b"\x00\xff binary \n lines \n")
        target = tmp_path / "out.bin"
        assert transport.pull("data.bin", target)
        assert target.read_bytes() == b"\x00\xff binary \n lines \n"

    def test_atomic_write_replaces_whole_content(self, make_transport, kind):
        transport = make_transport(kind)
        transport.atomic_write("f", b"first version, quite long")
        transport.atomic_write("f", b"second")
        root = transport.root
        assert (root / "f").read_bytes() == b"second"

    def test_torn_write_leaves_target_untouched(
        self, make_transport, kind, monkeypatch
    ):
        """An atomic_write that dies mid-flight must not damage the file.

        The replace step is forced to fail, simulating a crash between
        writing the temp file and renaming it over the target: the old
        content must survive byte-for-byte and no temp litter may be
        mistaken for the file.
        """
        transport = make_transport(kind)
        transport.atomic_write("f", b"survives")
        real_replace = os.replace

        def torn(src, dst, *args, **kwargs):
            raise OSError("simulated crash mid-replace")

        monkeypatch.setattr(os, "replace", torn)
        with pytest.raises(TransportError):
            transport.atomic_write("f", b"never lands")
        monkeypatch.setattr(os, "replace", real_replace)
        assert (transport.root / "f").read_bytes() == b"survives"

    def test_mtime_none_until_exists_then_fresh(self, make_transport, kind):
        transport = make_transport(kind)
        assert transport.mtime("f") is None
        transport.atomic_write("f", b"x")
        mtime = transport.mtime("f")
        assert mtime is not None
        assert mtime == pytest.approx((transport.root / "f").stat().st_mtime)

    def test_touch_creates_then_freshens(self, make_transport, kind):
        transport = make_transport(kind)
        transport.touch("beacon")
        assert transport.exists("beacon")
        first = transport.mtime("beacon")
        os.utime(transport.root / "beacon", (first - 100, first - 100))
        transport.touch("beacon")
        assert transport.mtime("beacon") >= first - 1

    def test_touch_does_not_clobber_content(self, make_transport, kind):
        transport = make_transport(kind)
        transport.atomic_write("f", b"content")
        transport.touch("f")
        assert (transport.root / "f").read_bytes() == b"content"

    def test_push_then_pull_round_trip(self, make_transport, kind, tmp_path):
        transport = make_transport(kind)
        source = tmp_path / "src.txt"
        source.write_bytes(b"shipped")
        transport.push(source, "dest.txt")
        assert transport.exists("dest.txt")
        back = tmp_path / "back.txt"
        assert transport.pull("dest.txt", back)
        assert back.read_bytes() == b"shipped"

    def test_pull_missing_returns_false_touches_nothing(
        self, make_transport, kind, tmp_path
    ):
        transport = make_transport(kind)
        target = tmp_path / "mirror.txt"
        assert not transport.pull("absent.txt", target)
        assert not target.exists()
        # An existing mirror survives a failed pull untouched.
        target.write_bytes(b"stale but intact")
        assert not transport.pull("absent.txt", target)
        assert target.read_bytes() == b"stale but intact"

    def test_pull_preserves_mtime(self, make_transport, kind, tmp_path):
        """Mirrors must keep the remote timestamp: the supervisor's
        stall detector reads heartbeat ages off the pulled copy."""
        transport = make_transport(kind)
        transport.atomic_write("hb", b"")
        stamp = transport.mtime("hb") - 1234
        os.utime(transport.root / "hb", (stamp, stamp))
        target = tmp_path / "hb-mirror"
        assert transport.pull("hb", target)
        assert target.stat().st_mtime == pytest.approx(stamp, abs=2)

    def test_push_missing_source_raises(self, make_transport, kind, tmp_path):
        transport = make_transport(kind)
        with pytest.raises(TransportError):
            transport.push(tmp_path / "nope.txt", "dest.txt")

    def test_open_append_appends(self, make_transport, kind):
        transport = make_transport(kind)
        with transport.open_append("s.jsonl") as handle:
            handle.write(b"line1\n")
        with transport.open_append("s.jsonl") as handle:
            handle.write(b"line2\n")
        assert (transport.root / "s.jsonl").read_bytes() == b"line1\nline2\n"

    @pytest.mark.parametrize("bad", ["/etc/passwd", "../escape", "a/../../b"])
    def test_rejects_escaping_paths(self, make_transport, kind, bad, tmp_path):
        transport = make_transport(kind)
        for operation in (
            lambda: transport.exists(bad),
            lambda: transport.atomic_write(bad, b"x"),
            lambda: transport.touch(bad),
            lambda: transport.pull(bad, tmp_path / "out"),
        ):
            with pytest.raises(TransportError):
                operation()

    def test_launch_runs_in_its_own_session(self, make_transport, kind, tmp_path):
        transport = make_transport(kind)
        log = open(tmp_path / "w.log", "a", encoding="utf-8")
        try:
            process = transport.launch(
                ["/bin/sh", "-c", "sleep 30"], stdout=log, env=None
            )
            try:
                # Session leader of its own group — the orchestrator's
                # process-group SIGKILL contract depends on it.
                assert os.getpgid(process.pid) == process.pid
            finally:
                process.kill()
                process.wait(timeout=30)
        finally:
            log.close()

    def test_launch_captures_worker_output(self, make_transport, kind, tmp_path):
        transport = make_transport(kind)
        with open(tmp_path / "w.log", "a", encoding="utf-8") as log:
            process = transport.launch(
                ["/bin/sh", "-c", "echo started"], stdout=log, env=None
            )
            assert process.wait(timeout=30) == 0
        assert "started" in (tmp_path / "w.log").read_text(encoding="utf-8")


class TestLocalTransportZeroCopy:
    def test_same_root_push_pull_are_noops(self, tmp_path):
        """root == run dir is the single-machine degenerate case: the
        'remote' file IS the local file, so syncs must not copy."""
        transport = LocalTransport(tmp_path)
        target = tmp_path / "shard0.jsonl"
        target.write_bytes(b"records\n")
        before = target.stat()
        transport.push(target, "shard0.jsonl")
        assert transport.pull("shard0.jsonl", target)
        after = target.stat()
        assert after.st_mtime == before.st_mtime
        assert target.read_bytes() == b"records\n"

    def test_pull_of_missing_same_file_is_false(self, tmp_path):
        transport = LocalTransport(tmp_path)
        assert not transport.pull("absent.jsonl", tmp_path / "absent.jsonl")

    def test_describe(self, tmp_path):
        assert LocalTransport(tmp_path).describe() == f"local:{tmp_path}"


class TestObjectStore:
    def test_put_get_list(self, tmp_path):
        store = ObjectStoreTransport(tmp_path / "bucket")
        store.put("a/1.txt", b"one")
        store.put("a/2.txt", b"two")
        store.put("b.txt", b"bee")
        assert store.get("a/1.txt") == b"one"
        assert store.list() == ["a/1.txt", "a/2.txt", "b.txt"]
        assert store.list("a/") == ["a/1.txt", "a/2.txt"]
        assert store.list("nope") == []

    def test_get_missing_raises(self, tmp_path):
        store = ObjectStoreTransport(tmp_path / "bucket")
        with pytest.raises(TransportError):
            store.get("ghost")

    def test_list_of_missing_root_is_empty(self, tmp_path):
        assert ObjectStoreTransport(tmp_path / "never").list() == []

    def test_describe(self, tmp_path):
        store = ObjectStoreTransport(tmp_path / "bucket")
        assert store.describe() == f"store:{tmp_path / 'bucket'}"


class TestSSHArgv:
    """SSH is exercised as pure argv construction — no network in CI."""

    def test_defaults(self):
        transport = SSHTransport("h1", user="alice")
        assert transport.describe() == "ssh:alice@h1"
        assert transport.command_head() == ["python3", "-m", "repro.cli"]
        assert not transport.runs_locally

    def test_ssh_argv_forces_batch_mode(self):
        argv = SSHTransport("h1").ssh_argv("true")
        assert argv[0] == "ssh"
        assert "BatchMode=yes" in argv
        assert argv[-2:] == ["h1", "true"]

    def test_pull_argv_preserves_mtime_and_targets_root(self):
        argv = SSHTransport("h1", root="runs/x", user="bob").scp_pull_argv(
            "shard0.heartbeat", "/tmp/mirror"
        )
        assert argv[0] == "scp"
        assert "-p" in argv
        assert "bob@h1:runs/x/shard0.heartbeat" in argv
        assert argv[-1] == "/tmp/mirror"

    def test_push_argv_is_atomic_on_the_remote_side(self):
        argv = SSHTransport("h1").scp_push_argv("/tmp/spec.json", "spec.json")
        remote = argv[-1]
        # Temp name + mv: a remote reader never sees a torn file.
        assert "spec.json.tmp" in remote
        assert "mv" in remote

    def test_worker_argv_quotes_command(self):
        argv = SSHTransport("h1").worker_argv(
            ["python3", "-m", "repro.cli", "campaign", "--spec", "a b.json"]
        )
        assert argv[-1].endswith("'a b.json'")

    def test_open_append_is_refused(self):
        with pytest.raises(TransportError):
            SSHTransport("h1").open_append("shard0.jsonl")

    def test_exists_and_mtime_map_failures_to_absent(self, monkeypatch):
        transport = SSHTransport("h1")

        def fail(argv, **kwargs):
            raise TransportError("unreachable")

        monkeypatch.setattr(transport, "_run", fail)
        assert not transport.exists("f")
        assert transport.mtime("f") is None

    def test_operations_raise_on_nonzero_exit(self, monkeypatch):
        transport = SSHTransport("h1")

        def boom(argv, **kwargs):
            return subprocess.CompletedProcess(
                argv, returncode=255, stdout=b"", stderr=b"refused"
            )

        monkeypatch.setattr(subprocess, "run", boom)
        with pytest.raises(TransportError, match="refused"):
            transport.touch("f")


class TestParseHost:
    def test_store_spec(self, tmp_path):
        transport = parse_host(f"store:{tmp_path}/h1")
        assert isinstance(transport, ObjectStoreTransport)
        assert str(transport.root) == f"{tmp_path}/h1"

    def test_local_spec(self, tmp_path):
        transport = parse_host(f"local:{tmp_path}/h1")
        assert isinstance(transport, LocalTransport)

    def test_ssh_specs(self):
        plain = parse_host("h1")
        assert isinstance(plain, SSHTransport)
        assert plain.target == "h1"
        assert plain.root == "repro-run"
        full = parse_host("alice@h2:/data/run")
        assert full.target == "alice@h2"
        assert full.root == "/data/run"

    @pytest.mark.parametrize(
        "bad", ["", "   ", "store:", "local:", "@h1", "alice@", "h 1"]
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_host(bad)

    def test_parse_hosts_refuses_duplicates(self):
        with pytest.raises(ValueError, match="twice"):
            parse_hosts(["h1", "h1"])

    def test_parse_hosts_order_preserved(self, tmp_path):
        transports = parse_hosts([f"store:{tmp_path}/a", "bob@h9"])
        assert isinstance(transports[0], ObjectStoreTransport)
        assert isinstance(transports[1], SSHTransport)
