"""Property-style tests for the protocol-config sweep axis.

The campaign protocol axis hinges on two properties: bad configs fail
at *spec load* (never inside a worker mid-campaign), and equal configs
produce equal cache keys regardless of construction order, value
spelling (int vs integral float), or process.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.baselines.epidemic import EpidemicConfig
from repro.baselines.spray_and_wait import SprayAndWaitConfig
from repro.core.protocol import GLRConfig
from repro.experiments.campaign import ReplicateTask, task_key, task_payload
from repro.experiments.protocols import (
    ProtocolConfig,
    as_protocol_config,
    sweepable_params,
    sweepable_protocols,
)
from repro.experiments.runner import available_protocols, run_single
from repro.experiments.scenarios import Scenario

TINY = Scenario(
    name="tiny",
    n_nodes=10,
    active_nodes=5,
    radius=150.0,
    message_count=2,
    sim_time=15.0,
    seed=3,
)


class TestRegistry:
    def test_axis_covers_every_runner_protocol(self):
        assert sweepable_protocols() == sorted(available_protocols())

    def test_sweepable_params_match_config_dataclasses(self):
        assert "check_interval" in sweepable_params("glr")
        assert "custody" in sweepable_params("glr")
        assert "anti_entropy_interval" in sweepable_params("epidemic")
        assert "initial_copies" in sweepable_params("spray_and_wait")
        assert sweepable_params("direct") == []
        assert sweepable_params("first_contact") == []

    def test_non_sweepable_fields_not_advertised(self):
        assert "location_mode" not in sweepable_params("glr")
        assert "receipt_mode" not in sweepable_params("epidemic_receipts")


class TestCoercion:
    def test_from_string_and_mapping_and_config_agree(self):
        a = as_protocol_config("glr")
        b = as_protocol_config({"protocol": "glr"})
        c = as_protocol_config(ProtocolConfig.of("glr"))
        assert a == b == c

    def test_params_inline_or_nested(self):
        inline = as_protocol_config({"protocol": "glr", "custody": False})
        nested = as_protocol_config(
            {"protocol": "glr", "params": {"custody": False}}
        )
        assert inline == nested

    def test_name_normalisation(self):
        assert ProtocolConfig.of("  GLR ").protocol == "glr"
        assert (
            ProtocolConfig.of("Spray-And-Wait").protocol == "spray_and_wait"
        )

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            ProtocolConfig.of("warp_drive")

    def test_rejects_mapping_without_protocol_key(self):
        with pytest.raises(ValueError, match="'protocol' key"):
            as_protocol_config({"params": {}})

    def test_rejects_extra_keys_next_to_params(self):
        with pytest.raises(ValueError, match="unexpected protocol keys"):
            as_protocol_config(
                {"protocol": "glr", "params": {}, "custody": False}
            )

    def test_rejects_non_mapping_input(self):
        with pytest.raises(ValueError, match="cannot interpret"):
            as_protocol_config(42)


class TestValidationAtSpecLoad:
    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="does not accept"):
            ProtocolConfig.of("glr", chek_interval=0.9)

    def test_bad_value_rejected_by_config_validation(self):
        with pytest.raises(ValueError, match="check interval"):
            ProtocolConfig.of("glr", check_interval=-1.0)
        with pytest.raises(ValueError, match="initial_copies"):
            ProtocolConfig.of("spray_and_wait", initial_copies=0)

    def test_wrongly_typed_value_reported_as_bad_value(self):
        # A string where the config compares numbers must read as a
        # bad *value*, not as an unknown parameter name.
        with pytest.raises(ValueError, match="bad parameter value"):
            ProtocolConfig.of("glr", check_interval="0.9s")
        with pytest.raises(ValueError, match="bad parameter value"):
            ProtocolConfig.of("epidemic", anti_entropy_interval="fast")

    def test_non_sweepable_param_rejected(self):
        with pytest.raises(ValueError, match="not\\s+sweepable"):
            ProtocolConfig.of("glr", location_mode="source")

    def test_configless_protocols_take_no_params(self):
        with pytest.raises(ValueError, match="takes no config"):
            ProtocolConfig.of("direct", buffer_limit=5)
        with pytest.raises(ValueError, match="takes no config"):
            ProtocolConfig.of("first_contact", anything=1)

    def test_non_scalar_value_rejected(self):
        with pytest.raises(ValueError, match="must be a scalar"):
            ProtocolConfig.of("glr", custody=[True])

    def test_non_string_param_name_rejected(self):
        with pytest.raises(ValueError, match="must be a string"):
            ProtocolConfig(protocol="glr", params=((1, 2),))


class TestBuild:
    def test_builds_concrete_config_objects(self):
        assert ProtocolConfig.of(
            "glr", custody=False
        ).build() == GLRConfig(custody=False)
        assert ProtocolConfig.of(
            "epidemic", request_batch=4
        ).build() == EpidemicConfig(request_batch=4)
        assert ProtocolConfig.of(
            "spray_and_wait", initial_copies=4
        ).build() == SprayAndWaitConfig(initial_copies=4)
        assert ProtocolConfig.of("direct").build() is None

    def test_builds_receipts_config(self):
        from repro.baselines.receipts import ReceiptEpidemicConfig

        built = ProtocolConfig.of(
            "epidemic_receipts", buffer_limit=7
        ).build()
        assert built == ReceiptEpidemicConfig(buffer_limit=7)

    def test_label_formats(self):
        assert str(ProtocolConfig.of("glr")) == "glr"
        assert (
            str(ProtocolConfig.of("glr", custody=False, check_interval=1.8))
            == "glr(check_interval=1.8,custody=False)"
        )

    def test_to_json_round_trip(self):
        config = ProtocolConfig.of("glr", custody=False, sparse_copies=2)
        document = json.loads(json.dumps(config.to_json()))
        assert as_protocol_config(document) == config


class TestKeyStability:
    def _key(self, config):
        return task_key(
            ReplicateTask(TINY, config.protocol, 0, protocol_config=config)
        )

    def test_param_order_insensitive(self):
        a = ProtocolConfig(
            "glr", params=(("custody", False), ("sparse_copies", 2))
        )
        b = ProtocolConfig(
            "glr", params=(("sparse_copies", 2), ("custody", False))
        )
        assert a == b
        assert hash(a) == hash(b)
        assert self._key(a) == self._key(b)

    def test_integral_float_canonicalises_to_int(self):
        a = ProtocolConfig.of("glr", custody_timeout=5.0)
        b = ProtocolConfig.of("glr", custody_timeout=5)
        assert a == b
        assert self._key(a) == self._key(b)
        # Non-integral floats survive untouched.
        c = ProtocolConfig.of("glr", custody_timeout=5.5)
        assert c.params_dict()["custody_timeout"] == 5.5
        assert self._key(a) != self._key(c)

    def test_key_differs_per_param_value(self):
        keys = {
            self._key(ProtocolConfig.of("glr")),
            self._key(ProtocolConfig.of("glr", custody=False)),
            self._key(ProtocolConfig.of("glr", check_interval=1.8)),
            self._key(
                ProtocolConfig.of("glr", check_interval=1.8, custody=False)
            ),
        }
        assert len(keys) == 4

    def test_bool_field_canonicalises_ints(self):
        # True == 1 in Python, so equal configs must not JSON-encode
        # differently (true vs 1 would split keys, labels, spec hashes).
        a = ProtocolConfig.of("glr", custody=1)
        b = ProtocolConfig.of("glr", custody=True)
        assert a == b
        assert str(a) == str(b) == "glr(custody=True)"
        assert self._key(a) == self._key(b)
        assert ProtocolConfig.of("glr", custody=0.0) == ProtocolConfig.of(
            "glr", custody=False
        )

    def test_bool_field_rejects_non_binary_values(self):
        # Strings and non-0/1 numbers would be silently truthy inside
        # GLRConfig ("custody=no" running with custody ON) — reject.
        for bad in (2, 0.5, "no", "false", "yes"):
            with pytest.raises(ValueError, match="boolean"):
                ProtocolConfig.of("glr", custody=bad)

    def test_numeric_field_canonicalises_bools(self):
        a = ProtocolConfig.of("glr", sparse_copies=True)
        b = ProtocolConfig.of("glr", sparse_copies=1)
        assert a == b
        assert str(a) == str(b) == "glr(sparse_copies=1)"
        assert self._key(a) == self._key(b)

    def test_payload_json_round_trippable(self):
        task = ReplicateTask(
            TINY,
            "glr",
            0,
            protocol_config=ProtocolConfig.of("glr", custody=False),
        )
        payload = task_payload(task)
        assert json.loads(json.dumps(payload)) == payload

    def test_key_stable_across_processes(self):
        config = ProtocolConfig.of("glr", custody=False, custody_timeout=5.0)
        expected = self._key(config)
        script = (
            "from repro.experiments.campaign import ReplicateTask, task_key\n"
            "from repro.experiments.protocols import ProtocolConfig\n"
            "from repro.experiments.scenarios import Scenario\n"
            "tiny = Scenario(name='tiny', n_nodes=10, active_nodes=5,\n"
            "                radius=150.0, message_count=2, sim_time=15.0,\n"
            "                seed=3)\n"
            "config = ProtocolConfig.of('glr', custody_timeout=5,\n"
            "                           custody=False)\n"
            "print(task_key(ReplicateTask(tiny, 'glr', 0,\n"
            "                             protocol_config=config)))\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
        )
        assert result.stdout.strip() == expected


class TestRunnerThreading:
    def test_protocol_config_matches_concrete_config_run(self):
        """The declarative axis reproduces explicit-config runs exactly."""
        via_axis = run_single(
            TINY,
            "glr",
            protocol_config=ProtocolConfig.of("glr", custody=False),
        )
        via_config = run_single(
            TINY, "glr", glr_config=GLRConfig(custody=False)
        )
        assert via_axis == via_config

    def test_mismatched_protocol_rejected(self):
        with pytest.raises(ValueError, match="requests"):
            run_single(
                TINY,
                "epidemic",
                protocol_config=ProtocolConfig.of("glr"),
            )

    def test_both_config_forms_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            run_single(
                TINY,
                "glr",
                glr_config=GLRConfig(),
                protocol_config=ProtocolConfig.of("glr"),
            )

    def test_buffer_limit_fallback_applies_to_axis_configs(self):
        limited = run_single(
            TINY,
            "spray_and_wait",
            protocol_config=ProtocolConfig.of(
                "spray_and_wait", initial_copies=4
            ),
            buffer_limit=2,
        )
        explicit = run_single(
            TINY,
            "spray_and_wait",
            spray_config=SprayAndWaitConfig(
                initial_copies=4, buffer_limit=2
            ),
        )
        assert limited == explicit
